#!/usr/bin/env python3
"""Record the symbolic-execution perf trajectory into BENCH_symex.json.

Runs the two workloads the solver benchmarks track — the Table 1 ``wc``
sweep and the branch-heavy program from
``benchmarks/test_symex_solver_bench.py`` — and appends one labelled entry
with wall-clock times and solver counters to the JSON file.  Run it after
perf-relevant changes so the trajectory stays comparable across PRs:

    PYTHONPATH=src python scripts/bench_record.py --label "my change"
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.pipelines import (  # noqa: E402
    CompileOptions, LEVEL_PIPELINES, OptLevel, build_pipeline_from_text,
    compile_source, link_sources,
)
from repro.frontend import analyze, compile_to_ir, lower, parse  # noqa: E402
from repro.ir import verify_module  # noqa: E402
from repro.symex import SymexLimits, explore, explore_parallel  # noqa: E402
from repro.workloads import WC_PROGRAM  # noqa: E402

from test_symex_solver_bench import (  # noqa: E402
    BRANCH_HEAVY_PROGRAM, INPUT_BYTES, WC_SWEEP_PATHS, WIDE_VALUE_PROGRAM,
)

WC_LEVELS = [OptLevel.O0, OptLevel.O2, OptLevel.O3, OptLevel.OVERIFY]
WC_INPUT_BYTES = 4
TIMEOUT_SECONDS = 120.0


def _solver_summary(report, seconds: float) -> dict:
    stats = report.solver_stats
    branches = max(1, report.stats.branches_encountered)
    return {
        "verify_seconds": round(seconds, 3),
        "paths": report.stats.total_paths,
        "solver_queries": stats.queries,
        "queries_per_branch": round(stats.queries / branches, 3),
        "assignments_tried": stats.assignments_tried,
        "cache_hits": stats.cache_hits,
        "model_cache_hits": stats.model_cache_hits,
        "csp_searches": stats.csp_searches,
        "ubtree_hits": stats.ubtree_hits,
        "ubtree_misses": stats.ubtree_misses,
        "equality_rewrites": stats.equality_rewrites,
        "prune_splits": stats.prune_splits,
        "unknown_results": stats.unknown_results,
    }


#: The verification-oriented scalar passes whose path contribution the
#: trajectory tracks (each is ablated from -O2 in turn).
ABLATABLE_PASSES = ("sccp", "load-elim", "algebraic-simplify")


def _explore_pipeline_text(text: str) -> tuple:
    """(paths, interpreted instructions) for wc compiled through ``text``."""
    source = link_sources(WC_PROGRAM, CompileOptions(level=OptLevel.O2))
    unit = parse(source)
    analyze(unit)
    module = lower(unit, "wc")
    pipeline = build_pipeline_from_text(text, max_iterations=2)
    pipeline.run_until_fixpoint(module)
    verify_module(module)
    report = explore(module, WC_INPUT_BYTES,
                     limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
    return report.stats.total_paths, report.stats.instructions_interpreted


def _pass_path_deltas(o2_paths: int) -> dict:
    full_text = LEVEL_PIPELINES[OptLevel.O2]
    full_paths, full_instructions = _explore_pipeline_text(full_text)
    deltas: dict = {
        "level": str(OptLevel.O2),
        "paths_full": full_paths,
        "instructions_full": full_instructions,
        "consistent_with_sweep": full_paths == o2_paths,
    }
    for name in ABLATABLE_PASSES:
        ablated_text = full_text.replace(f"{name},", "")
        assert ablated_text != full_text, f"{name} not in the -O2 pipeline"
        paths, instructions = _explore_pipeline_text(ablated_text)
        deltas[name] = {
            "paths_without": paths,
            "paths_saved": paths - full_paths,
            "instructions_without": instructions,
            "instructions_saved": instructions - full_instructions,
        }
    return deltas


def _warm_store_trajectory() -> dict:
    """The knowledge-store amortization benchmark: the wc 4-byte sweep
    cold, warm (solver caches primed from a store the cold sweep
    produced), and memoized (the store-backed backend answering from the
    verification memo).  The warm timing covers the sweep itself; the
    one-time load+prime cost — which the service pays once at startup,
    not per job — is reported separately as ``prime_seconds``.  Best of
    three rounds each; outcomes are identical by construction (the
    warm-vs-cold differential in ``tests/test_service_store.py`` holds
    that), so the wall-clock numbers are the whole story."""
    import tempfile

    from repro.service.store import SolverKnowledgeStore
    from repro.symex import SharedSolverCaches, Solver
    from repro.verification import VerificationRequest, make_backend

    modules = [compile_source(WC_PROGRAM, CompileOptions(level=level)).module
               for level in WC_LEVELS]
    limits = SymexLimits(timeout_seconds=TIMEOUT_SECONDS)
    section: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "knowledge.jsonl"

        cold_times = []
        for round_index in range(3):
            per_round_caches = []
            total = 0.0
            for module in modules:
                caches = SharedSolverCaches(num_stripes=1)
                start = time.perf_counter()
                explore(module, WC_INPUT_BYTES, limits=limits,
                        solver=Solver(shared=caches))
                total += time.perf_counter() - start
                per_round_caches.append(caches)
            cold_times.append(total)
            if round_index == 0:
                store = SolverKnowledgeStore(store_path)
                for caches in per_round_caches:
                    store.absorb(caches)
                store.save()
                section["store_records"] = len(store)

        warm_times = []
        prime_times = []
        store_hits = 0
        for _ in range(3):
            total = 0.0
            prime_total = 0.0
            store_hits = 0
            for module in modules:
                prime_start = time.perf_counter()
                store = SolverKnowledgeStore(store_path)
                store.load()
                caches = SharedSolverCaches(num_stripes=1)
                store.prime(caches)
                prime_total += time.perf_counter() - prime_start
                start = time.perf_counter()
                report = explore(module, WC_INPUT_BYTES, limits=limits,
                                 solver=Solver(shared=caches))
                total += time.perf_counter() - start
                store_hits += report.solver_stats.store_hits
            warm_times.append(total)
            prime_times.append(prime_total)

        request = VerificationRequest(symbolic_input_bytes=WC_INPUT_BYTES,
                                      timeout_seconds=TIMEOUT_SECONDS)
        for module in modules:  # populate the memos (untimed)
            make_backend("symex", store=str(store_path)) \
                .verify(module, request)
        memo_times = []
        for _ in range(3):
            total = 0.0
            for module in modules:
                backend = make_backend("symex", store=str(store_path))
                start = time.perf_counter()
                outcome = backend.verify(module, request)
                total += time.perf_counter() - start
                assert outcome.provenance == "memo-hit"
            memo_times.append(total)

    section.update({
        "cold_sweep_seconds": round(min(cold_times), 3),
        "warm_sweep_seconds": round(min(warm_times), 3),
        "prime_seconds": round(min(prime_times), 3),
        "memo_sweep_seconds": round(min(memo_times), 3),
        "warm_store_hits": store_hits,
        "warm_speedup": round(min(cold_times) / max(min(warm_times), 1e-9),
                              2),
    })
    return section


def _relcheck_trajectory() -> dict:
    """The translation-validation trajectory: relchecking wc's
    (-O0, -OVERIFY) pair cold, warm (solver caches primed from the cold
    run's store), and memoized (the whole-run memo answering without any
    exploration).  Verdicts are identical across the three by contract
    (``tests/test_relcheck.py`` and ``benchmarks/test_relcheck_bench.py``
    hold that); the wall-clock triple records how much of a re-check the
    store amortizes away.  Best of three rounds each."""
    import tempfile

    from repro.relcheck import RelcheckConfig, relcheck_modules
    from repro.service.store import SolverKnowledgeStore
    from repro.symex import SharedSolverCaches

    config = RelcheckConfig(input_bytes=WC_INPUT_BYTES,
                            timeout_seconds=TIMEOUT_SECONDS)
    module_a = compile_source(WC_PROGRAM,
                              CompileOptions(level=OptLevel.O0)).module
    module_b = compile_source(WC_PROGRAM,
                              CompileOptions(level=OptLevel.OVERIFY)).module
    section: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "knowledge.jsonl"

        cold_times = []
        for round_index in range(3):
            store = SolverKnowledgeStore(store_path) if round_index == 0 \
                else None
            start = time.perf_counter()
            report = relcheck_modules(module_a, module_b, config=config,
                                      pair=("-O0", "-OVERIFY"), store=store)
            cold_times.append(time.perf_counter() - start)
            assert report.clean and not report.truncated
            if round_index == 0:
                section["paths_proved"] = report.stats.paths_proved
                section["equivalence_folded"] = \
                    report.stats.equivalence_folded

        # Warm: solver caches primed from the cold run's store, but no
        # store handed to the run itself — so the whole-run memo cannot
        # short-circuit and the primed-cache speedup is what's measured.
        warm_times = []
        for _ in range(3):
            store = SolverKnowledgeStore(store_path)
            store.load()
            caches = SharedSolverCaches(num_stripes=1)
            store.prime(caches)
            start = time.perf_counter()
            report = relcheck_modules(module_a, module_b, config=config,
                                      pair=("-O0", "-OVERIFY"),
                                      shared_caches=caches)
            warm_times.append(time.perf_counter() - start)
            assert report.clean and not report.truncated

        memo_times = []
        for _ in range(3):
            store = SolverKnowledgeStore(store_path)
            store.load()
            start = time.perf_counter()
            report = relcheck_modules(module_a, module_b, config=config,
                                      pair=("-O0", "-OVERIFY"), store=store)
            memo_times.append(time.perf_counter() - start)
            assert report.provenance == "memo-hit"

    section.update({
        "cold_seconds": round(min(cold_times), 3),
        "warm_seconds": round(min(warm_times), 3),
        "memo_seconds": round(min(memo_times), 3),
    })
    return section


def _fault_overhead() -> dict:
    """The unarmed-injector guard: with no fault plan installed, the
    fault sites threaded through the solver/executor/pool hot paths must
    be free — the wc sweep reproduces the benchmark's exact per-level
    path counts with zero engine errors, and the sweep's wall clock is
    recorded so the trajectory would expose a guard that grew teeth."""
    import repro.service.server  # noqa: F401 - registers the service sites
    from repro.faults import INJECTOR

    armed = INJECTOR.armed()
    assert armed == [], f"fault injector armed during benchmarking: {armed}"
    section: dict = {"registered_sites": len(INJECTOR.registered()),
                     "armed_sites": 0}
    total = 0.0
    for level in WC_LEVELS:
        compiled = compile_source(WC_PROGRAM, CompileOptions(level=level))
        start = time.perf_counter()
        report = explore(compiled.module, WC_INPUT_BYTES,
                         limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
        seconds = time.perf_counter() - start
        total += seconds
        paths = report.stats.total_paths
        assert paths == WC_SWEEP_PATHS[level], (
            f"{level}: {paths} paths with the injector disarmed, expected "
            f"{WC_SWEEP_PATHS[level]} — the fault guards changed behaviour")
        assert report.stats.engine_errors == 0, \
            f"{level}: engine errors with no fault plan installed"
        section[str(level)] = {"paths": paths,
                               "verify_seconds": round(seconds, 3)}
    section["sweep_seconds"] = round(total, 3)
    return section


def measure(label: str) -> dict:
    entry: dict = {"label": label,
                   "recorded_at": datetime.now(timezone.utc)
                   .strftime("%Y-%m-%dT%H:%M:%SZ")}
    try:
        entry["commit"] = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        pass

    sweep = {}
    total = 0.0
    for level in WC_LEVELS:
        compiled = compile_source(WC_PROGRAM, CompileOptions(level=level))
        start = time.perf_counter()
        report = explore(compiled.module, WC_INPUT_BYTES,
                         limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
        seconds = time.perf_counter() - start
        total += seconds
        sweep[str(level)] = _solver_summary(report, seconds)
    entry["wc_sweep"] = sweep
    entry["wc_sweep_total_verify_seconds"] = round(total, 3)

    # Per-pass path attribution: rerun the -O2 pipeline with each of the
    # path-oriented passes ablated and record how many paths (and
    # interpreted instructions) the full pipeline saves over each ablation.
    # A zero paths_saved entry is information, not a bug: on all-scalar wc
    # the pass may only shrink instruction counts, with its path wins
    # reserved for flag-through-memory workloads.
    entry["pass_path_deltas"] = _pass_path_deltas(
        sweep[str(OptLevel.O2)]["paths"])

    module = compile_to_ir(BRANCH_HEAVY_PROGRAM)
    start = time.perf_counter()
    report = explore(module, INPUT_BYTES,
                     limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
    seconds = time.perf_counter() - start
    branch_heavy = _solver_summary(report, seconds)
    branch_heavy["branches"] = report.stats.branches_encountered
    entry["branch_heavy"] = branch_heavy

    module = compile_to_ir(WIDE_VALUE_PROGRAM)
    start = time.perf_counter()
    report = explore(module, 2,
                     limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
    seconds = time.perf_counter() - start
    wide = _solver_summary(report, seconds)
    wide["exact"] = report.solver_stats.unknown_results == 0
    entry["wide_value"] = wide

    # The parallel-executor trajectory: the full wc sweep through the
    # worker pool at 1 and 4 thread workers (best of two rounds each).
    # Outcomes are identical by construction; the wall-clock pair records
    # how pool overhead compares with the sequential engine on this
    # machine (on a single-core GIL build the pool cannot win — the
    # interesting number is how little it loses, and whether it still
    # beats the previous entry's sequential baseline).
    modules = [compile_source(WC_PROGRAM, CompileOptions(level=level)).module
               for level in WC_LEVELS]
    parallel: dict = {"cpu_count": os.cpu_count()}
    for workers in (1, 4):
        timings = []
        for _ in range(2):
            total = 0.0
            for module in modules:
                start = time.perf_counter()
                explore_parallel(
                    module, WC_INPUT_BYTES, workers=workers,
                    limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
                total += time.perf_counter() - start
            timings.append(total)
        parallel[f"workers{workers}_sweep_seconds"] = round(min(timings), 3)
    entry["parallel_wc_sweep"] = parallel

    # The cross-run amortization trajectory: cold vs store-warmed vs
    # memoized wc sweeps (see docs/service.md).
    entry["warm_store"] = _warm_store_trajectory()

    # The translation-validation trajectory: relchecking the paper's
    # (-O0, -OVERIFY) pair cold vs store-warmed vs memoized
    # (see docs/relcheck.md).
    entry["relcheck"] = _relcheck_trajectory()

    # The robustness guard: fault sites cost nothing while disarmed
    # (see docs/robustness.md).
    entry["fault_overhead"] = _fault_overhead()
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="unlabelled run",
                        help="human-readable tag for this measurement")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_symex.json",
                        help="JSON file to append the entry to")
    parser.add_argument("--fault-overhead", action="store_true",
                        help="run only the unarmed-injector guard (assert "
                             "the disarmed wc sweep hits the benchmark path "
                             "counts), print it, append nothing")
    args = parser.parse_args()

    if args.fault_overhead:
        print(json.dumps({"fault_overhead": _fault_overhead()}, indent=2))
        return

    history = []
    if args.output.exists():
        history = json.loads(args.output.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"{args.output} is not a JSON list")

    entry = measure(args.label)
    history.append(entry)
    args.output.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))
    print(f"\nappended entry {len(history)} to {args.output}")


if __name__ == "__main__":
    main()
