#!/usr/bin/env python3
"""Record the symbolic-execution perf trajectory into BENCH_symex.json.

Runs the two workloads the solver benchmarks track — the Table 1 ``wc``
sweep and the branch-heavy program from
``benchmarks/test_symex_solver_bench.py`` — and appends one labelled entry
with wall-clock times and solver counters to the JSON file.  Run it after
perf-relevant changes so the trajectory stays comparable across PRs:

    PYTHONPATH=src python scripts/bench_record.py --label "my change"
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.pipelines import CompileOptions, OptLevel, compile_source  # noqa: E402
from repro.frontend import compile_to_ir  # noqa: E402
from repro.symex import SymexLimits, explore, explore_parallel  # noqa: E402
from repro.workloads import WC_PROGRAM  # noqa: E402

from test_symex_solver_bench import (  # noqa: E402
    BRANCH_HEAVY_PROGRAM, INPUT_BYTES, WIDE_VALUE_PROGRAM,
)

WC_LEVELS = [OptLevel.O0, OptLevel.O2, OptLevel.O3, OptLevel.OVERIFY]
WC_INPUT_BYTES = 4
TIMEOUT_SECONDS = 120.0


def _solver_summary(report, seconds: float) -> dict:
    stats = report.solver_stats
    branches = max(1, report.stats.branches_encountered)
    return {
        "verify_seconds": round(seconds, 3),
        "paths": report.stats.total_paths,
        "solver_queries": stats.queries,
        "queries_per_branch": round(stats.queries / branches, 3),
        "assignments_tried": stats.assignments_tried,
        "cache_hits": stats.cache_hits,
        "model_cache_hits": stats.model_cache_hits,
        "csp_searches": stats.csp_searches,
        "ubtree_hits": stats.ubtree_hits,
        "ubtree_misses": stats.ubtree_misses,
        "equality_rewrites": stats.equality_rewrites,
        "prune_splits": stats.prune_splits,
        "unknown_results": stats.unknown_results,
    }


def measure(label: str) -> dict:
    entry: dict = {"label": label,
                   "recorded_at": datetime.now(timezone.utc)
                   .strftime("%Y-%m-%dT%H:%M:%SZ")}
    try:
        entry["commit"] = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        pass

    sweep = {}
    total = 0.0
    for level in WC_LEVELS:
        compiled = compile_source(WC_PROGRAM, CompileOptions(level=level))
        start = time.perf_counter()
        report = explore(compiled.module, WC_INPUT_BYTES,
                         limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
        seconds = time.perf_counter() - start
        total += seconds
        sweep[str(level)] = _solver_summary(report, seconds)
    entry["wc_sweep"] = sweep
    entry["wc_sweep_total_verify_seconds"] = round(total, 3)

    module = compile_to_ir(BRANCH_HEAVY_PROGRAM)
    start = time.perf_counter()
    report = explore(module, INPUT_BYTES,
                     limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
    seconds = time.perf_counter() - start
    branch_heavy = _solver_summary(report, seconds)
    branch_heavy["branches"] = report.stats.branches_encountered
    entry["branch_heavy"] = branch_heavy

    module = compile_to_ir(WIDE_VALUE_PROGRAM)
    start = time.perf_counter()
    report = explore(module, 2,
                     limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
    seconds = time.perf_counter() - start
    wide = _solver_summary(report, seconds)
    wide["exact"] = report.solver_stats.unknown_results == 0
    entry["wide_value"] = wide

    # The parallel-executor trajectory: the full wc sweep through the
    # worker pool at 1 and 4 thread workers (best of two rounds each).
    # Outcomes are identical by construction; the wall-clock pair records
    # how pool overhead compares with the sequential engine on this
    # machine (on a single-core GIL build the pool cannot win — the
    # interesting number is how little it loses, and whether it still
    # beats the previous entry's sequential baseline).
    modules = [compile_source(WC_PROGRAM, CompileOptions(level=level)).module
               for level in WC_LEVELS]
    parallel: dict = {"cpu_count": os.cpu_count()}
    for workers in (1, 4):
        timings = []
        for _ in range(2):
            total = 0.0
            for module in modules:
                start = time.perf_counter()
                explore_parallel(
                    module, WC_INPUT_BYTES, workers=workers,
                    limits=SymexLimits(timeout_seconds=TIMEOUT_SECONDS))
                total += time.perf_counter() - start
            timings.append(total)
        parallel[f"workers{workers}_sweep_seconds"] = round(min(timings), 3)
    entry["parallel_wc_sweep"] = parallel
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="unlabelled run",
                        help="human-readable tag for this measurement")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_symex.json",
                        help="JSON file to append the entry to")
    args = parser.parse_args()

    history = []
    if args.output.exists():
        history = json.loads(args.output.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"{args.output} is not a JSON list")

    entry = measure(args.label)
    history.append(entry)
    args.output.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))
    print(f"\nappended entry {len(history)} to {args.output}")


if __name__ == "__main__":
    main()
