#!/usr/bin/env bash
# CI-style gate: tier-1 tests, an IR-verified compile of every workload at
# every level (PassManager verify_after_each=True, so the IR verifier runs
# after each individual pass), and a fast benchmark smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="$PWD/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (differential suite runs separately below, reduced) =="
python -m pytest -x -q --ignore tests/test_solver_differential.py

echo
echo "== IR invariants: verify-after-each-pass compile of every workload =="
python - <<'PY'
from repro.pipelines import CompilerSession, CompileOptions, OptLevel
from repro.workloads import all_workloads

levels = [OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3,
          OptLevel.OVERIFY]
hits = misses = transfers = 0
for workload in all_workloads():
    # One session per workload: exercises the cross-level analysis
    # transfer with the IR verifier running after every pass.
    session = CompilerSession()
    for level in levels:
        session.compile(
            workload.source,
            CompileOptions(level=level, verify_after_each_pass=True))
    stats = session.analysis_stats
    hits += stats.hits
    misses += stats.misses
    transfers += stats.transfers
total = hits + misses
rate = hits / total if total else 0.0
print(f"verified {len(all_workloads())} workloads x {len(levels)} levels; "
      f"analysis cache: {hits} hits / {misses} misses ({rate:.0%}), "
      f"{transfers} transferred across levels")
PY

echo
echo "== docs gate: every docs/*.md referenced from README, no dead links =="
python scripts/check_docs.py

echo
echo "== registry lint: pipeline round-trips + docs/passes.md catalogue =="
python - <<'PY'
from pathlib import Path

from repro.passes import format_pipeline, parse_pipeline, pass_names
from repro.pipelines import LEVEL_PIPELINES, OptLevel

# Every level string is canonical: it renders back to itself.
for level, text in LEVEL_PIPELINES.items():
    rendered = format_pipeline(parse_pipeline(text))
    assert rendered == text, f"{level} pipeline is not canonical:\n{rendered}"

# Every registered pass round-trips standalone through parse/format.
for name in pass_names():
    assert format_pipeline(parse_pipeline(name)) == name, name

# The path-count passes must stay registered and in the -O2 pipeline.
required = {"sccp", "load-elim", "algebraic-simplify"}
assert required <= set(pass_names()), required - set(pass_names())
for name in required:
    assert name in LEVEL_PIPELINES[OptLevel.O2], f"{name} missing from -O2"

# docs/passes.md is the complete catalogue: every registered pass appears.
catalogue = Path("docs/passes.md").read_text(encoding="utf-8")
missing = [name for name in pass_names() if f"`{name}`" not in catalogue]
assert not missing, f"docs/passes.md is missing: {missing}"
print(f"{len(pass_names())} passes: canonical round-trips, "
      f"all catalogued in docs/passes.md")
PY

echo
echo "== differential fuzz smoke: fixed seed range + committed findings =="
# A fixed, small seed range with the full oracle (solver matrix on): fast
# enough for every push, real enough to catch an oracle or pass
# regression.  The nightly CI leg runs a much larger budget with
# --minimize (see .github/workflows/ci.yml and docs/fuzzing.md).
fuzz_out="$(mktemp -d)"
python -m repro fuzz --seeds 10 --out "$fuzz_out"
python -m repro fuzz --check-workloads --out "$fuzz_out"
rm -rf "$fuzz_out"

echo
echo "== relcheck smoke: translation validation at both level pairs =="
# The product driver must prove the smoke pair equivalent (wc: pure
# return-value paths; buggy_div: trap-agreement paths) with zero
# divergences at the paper's pair and at (O2, O3).  docs/relcheck.md.
for pair in O0,OVERIFY O2,O3; do
    python -m repro relcheck wc --levels "$pair" --workers 2 --input-bytes 3
    python -m repro relcheck buggy_div --levels "$pair" --workers 2 \
        --input-bytes 3
done

echo
echo "== parallel exploration smoke: workers=4 must match workers=1 =="
python - <<'PY'
from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.verification import VerificationRequest, make_backend
from repro.workloads import get_workload

request = VerificationRequest(symbolic_input_bytes=3, timeout_seconds=120.0)
for name in ("wc", "buggy_div"):
    compiled = compile_source(get_workload(name).source,
                              CompileOptions(level=OptLevel.O1))
    single = make_backend("symex").verify(compiled.module, request)
    pooled = make_backend("symex<workers=4>").verify(compiled.module, request)
    for field in ("paths", "errors", "instructions", "bug_signatures"):
        assert getattr(single, field) == getattr(pooled, field), \
            f"{name}: workers=4 diverged on {field}"
    print(f"{name}: workers=4 == workers=1 "
          f"({single.paths} paths, {single.errors} errors)")
PY

echo
echo "== solver differential-matrix smoke (reduced query counts) =="
# Full counts (1200 queries + 8x500 matrix + 300 wide) stay the default
# for a plain `python -m pytest`; the gate runs the same matrix reduced.
SOLVER_DIFFERENTIAL_QUERIES=120 \
SOLVER_DIFFERENTIAL_MATRIX_QUERIES=60 \
SOLVER_DIFFERENTIAL_WIDE_QUERIES=60 \
    python -m pytest tests/test_solver_differential.py -q

echo
echo "== verification service smoke: serve, two identical jobs, memo hit =="
python - <<'PY'
import tempfile
import threading
from pathlib import Path

from repro.service import ServiceClient, VerificationServer

with tempfile.TemporaryDirectory() as tmp:
    socket_path = Path(tmp) / "verify.sock"
    store_path = Path(tmp) / "knowledge.jsonl"
    server = VerificationServer(socket_path, store_path=store_path,
                                pool_size=2)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    client = ServiceClient(socket_path, timeout=120.0)
    client.wait_until_ready()
    first = client.verify(workload="wc", level="-OVERIFY", job_id="smoke-1")
    second = client.verify(workload="wc", level="-OVERIFY", job_id="smoke-2")
    assert first["ok"] and first["provenance"] == "cold", first
    assert second["ok"] and second["provenance"] == "memo-hit", second
    assert second["paths"] == first["paths"]
    stats = client.stats()
    assert stats["jobs_completed"] == 2 and stats["memo_hits"] == 1, stats
    client.shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive(), "server did not shut down cleanly"
    assert store_path.exists(), "store was not persisted"
    print(f"service: cold -> memo-hit on identical resubmission, "
          f"{stats['store_records']} store records persisted, "
          f"clean shutdown")
PY

echo
echo "== chaos smoke: every fault site degrades as contracted =="
python scripts/chaos_smoke.py

echo
echo "== fault overhead: disarmed injector reproduces benchmark path counts =="
python scripts/bench_record.py --fault-overhead

echo
echo "== benchmark smoke (compile pipeline + session sweep + solver hot path, no timing rounds) =="
# Timing assertions are skipped under --benchmark-disable, but the wc
# sweep's exact per-level path counts (WC_SWEEP_PATHS) are always asserted.
python -m pytest benchmarks/test_pipeline_compile_bench.py \
    benchmarks/test_session_bench.py \
    benchmarks/test_symex_solver_bench.py -q --benchmark-disable

echo
echo "check.sh: all gates passed"
