#!/usr/bin/env bash
# CI-style gate: tier-1 tests, an IR-verified compile of every workload at
# every level (PassManager verify_after_each=True, so the IR verifier runs
# after each individual pass), and a fast benchmark smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="$PWD/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== IR invariants: verify-after-each-pass compile of every workload =="
python - <<'PY'
from repro.pipelines import CompilerSession, CompileOptions, OptLevel
from repro.workloads import all_workloads

levels = [OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3,
          OptLevel.OVERIFY]
hits = misses = transfers = 0
for workload in all_workloads():
    # One session per workload: exercises the cross-level analysis
    # transfer with the IR verifier running after every pass.
    session = CompilerSession()
    for level in levels:
        session.compile(
            workload.source,
            CompileOptions(level=level, verify_after_each_pass=True))
    stats = session.analysis_stats
    hits += stats.hits
    misses += stats.misses
    transfers += stats.transfers
total = hits + misses
rate = hits / total if total else 0.0
print(f"verified {len(all_workloads())} workloads x {len(levels)} levels; "
      f"analysis cache: {hits} hits / {misses} misses ({rate:.0%}), "
      f"{transfers} transferred across levels")
PY

echo
echo "== benchmark smoke (compile pipeline + session sweep + solver hot path, no timing rounds) =="
python -m pytest benchmarks/test_pipeline_compile_bench.py \
    benchmarks/test_session_bench.py \
    benchmarks/test_symex_solver_bench.py -q --benchmark-disable

echo
echo "check.sh: all gates passed"
