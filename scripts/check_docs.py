#!/usr/bin/env python3
"""Documentation gate: the docs tree must stay reachable and link-clean.

Two checks, run by ``scripts/check.sh`` and CI:

1. **Reachability** — every ``docs/*.md`` file is referenced (linked) from
   ``README.md``, so no deep dive can silently fall off the front page.
2. **No dead intra-repo links** — every relative markdown link in
   ``README.md`` and ``docs/*.md`` resolves to an existing file or
   directory (external ``http(s)://`` links and pure ``#fragment`` links
   are out of scope).

Exits non-zero with one line per violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target).  Reference-style links are not
#: used in this repo; images share the same syntax and are checked too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _links(path: Path) -> list:
    return _LINK.findall(path.read_text(encoding="utf-8"))


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


def main() -> int:
    readme = REPO_ROOT / "README.md"
    docs_dir = REPO_ROOT / "docs"
    problems: list = []

    doc_files = sorted(docs_dir.glob("*.md")) if docs_dir.is_dir() else []
    if not doc_files:
        problems.append("docs/: no markdown files found")

    # 1. Every docs/*.md is referenced from the README.
    readme_targets = {target.split("#", 1)[0]
                      for target in _links(readme)
                      if not _is_external(target)}
    for doc in doc_files:
        relative = doc.relative_to(REPO_ROOT).as_posix()
        if relative not in readme_targets:
            problems.append(f"README.md: docs file '{relative}' is never "
                            f"referenced")

    # 2. No dead intra-repo links in README + docs.
    for source in [readme] + doc_files:
        for target in _links(source):
            if _is_external(target):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (source.parent / path_part).resolve()
            if not resolved.exists():
                name = source.relative_to(REPO_ROOT).as_posix()
                problems.append(f"{name}: dead link '{target}'")

    for problem in problems:
        print(f"check_docs: {problem}", file=sys.stderr)
    if problems:
        return 1
    checked = len(doc_files) + 1
    print(f"check_docs: {checked} files checked, all docs referenced from "
          f"README, no dead intra-repo links")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
