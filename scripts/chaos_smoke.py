#!/usr/bin/env python3
"""Reduced chaos matrix: one injected fault per registered site.

A fast CI leg (see ``scripts/check.sh``) that drives every fault site in
``repro.faults``' registry through its host layer once and asserts the
layer's degradation contract (``docs/robustness.md``): contained
engine-error paths, a recovered worker, an intact store file, a
structured service error — never a hang, never an unhandled exception.
The full matrix lives in ``tests/test_fault_injection.py``; this script
is the smoke-sized cut of it.

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults import INJECTOR, StoreError, injected  # noqa: E402
from repro.pipelines import (  # noqa: E402
    CompileOptions, OptLevel, compile_source,
)
from repro.service import (  # noqa: E402
    ServiceClient, ServiceError, SolverKnowledgeStore, VerificationServer,
)
from repro.symex import (  # noqa: E402
    StateStatus, SymexLimits, explore, explore_parallel,
)
from repro.workloads import get_workload  # noqa: E402

LIMITS = SymexLimits(timeout_seconds=120.0)
INPUT_BYTES = 3


def _wc_module():
    return compile_source(get_workload("wc").source,
                          CompileOptions(level=OptLevel.O1)).module


def check_solver_check(module) -> str:
    with injected("solver.check:every=4"):
        report = explore(module, INPUT_BYTES, limits=LIMITS)
    assert report.stats.engine_errors > 0, "no path was abandoned"
    assert any("solver.check" in line for line in report.diagnostics)
    errored = sum(1 for record in report.paths
                  if record.status is StateStatus.ENGINE_ERROR)
    assert errored == report.stats.engine_errors
    return f"{errored} paths contained, rest of the frontier explored"


def check_engine_step(module) -> str:
    with injected("engine.step:every=2"):
        report = explore(module, INPUT_BYTES, limits=LIMITS)
    assert report.stats.engine_errors > 0, "no path was abandoned"
    assert any("engine.step" in line for line in report.diagnostics)
    return (f"{report.stats.engine_errors} paths contained, "
            f"{report.stats.total_paths} still explored")


def check_worker_run(module) -> str:
    clean = explore_parallel(module, INPUT_BYTES, workers=4, limits=LIMITS)
    with injected("worker.run:once"):
        crashed = explore_parallel(module, INPUT_BYTES, workers=4,
                                   limits=LIMITS)
    for field in ("total_paths", "paths_completed", "paths_errored",
                  "engine_errors"):
        assert getattr(crashed.stats, field) == getattr(clean.stats, field), \
            f"crash-with-retry diverged on {field}"
    assert crashed.bug_signatures() == clean.bug_signatures()
    return (f"crashed worker retried; {crashed.stats.total_paths} paths "
            f"match the clean run")


def check_store_write(tmp: Path) -> str:
    path = tmp / "knowledge.jsonl"
    store = SolverKnowledgeStore(path)
    store.memo_record("k" * 64, {"paths": 1})
    store.save()
    before = path.read_bytes()
    store.memo_record("m" * 64, {"paths": 2})
    with injected("store.write:once"):
        try:
            store.save()
        except StoreError as exc:
            assert exc.retryable and exc.site == "store.write"
        else:
            raise AssertionError("torn write did not surface")
        assert path.read_bytes() == before, "atomicity violated"
        assert not list(tmp.glob("*.tmp")), "temp-file debris left behind"
        store.save()
    assert SolverKnowledgeStore(path).load() is True
    return "previous file byte-identical through the torn write; retry won"


def check_store_load(tmp: Path) -> str:
    path = tmp / "knowledge2.jsonl"
    store = SolverKnowledgeStore(path)
    store.memo_record("k" * 64, {"paths": 1})
    store.save()
    reader = SolverKnowledgeStore(path)
    with injected("store.load:once"):
        assert reader.load() is False, "load fault was swallowed"
        assert reader.load_error.startswith("fault")
        assert reader.load() is True, "store did not recover"
    return "read fault degraded to a cold start, file untouched"


def check_server_handle(tmp: Path) -> str:
    socket_path = tmp / "chaos.sock"
    server = VerificationServer(socket_path, pool_size=1)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    client = ServiceClient(socket_path, timeout=30.0)
    try:
        client.wait_until_ready()
        with injected("server.handle:once"):
            try:
                client.ping()
            except ServiceError as exc:
                assert exc.kind == "engine", exc.kind
            else:
                raise AssertionError("handler fault was swallowed")
            assert client.ping() is True, "server did not stay up"
    finally:
        try:
            client.shutdown()
        except ServiceError:
            pass
        thread.join(timeout=30)
    assert not thread.is_alive(), "server did not shut down"
    return "one structured error response, then back to serving"


def main() -> int:
    import tempfile

    import repro.service.server  # noqa: F401 - registers server.handle

    module = _wc_module()
    failures = 0
    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        checks = [
            ("solver.check", lambda: check_solver_check(module)),
            ("engine.step", lambda: check_engine_step(module)),
            ("worker.run", lambda: check_worker_run(module)),
            ("store.write", lambda: check_store_write(tmp)),
            ("store.load", lambda: check_store_load(tmp)),
            ("server.handle", lambda: check_server_handle(tmp)),
        ]
        covered = {name for name, _ in checks}
        missing = set(INJECTOR.registered()) - covered
        assert not missing, \
            f"fault sites with no chaos-smoke check: {sorted(missing)}"

        for name, check in checks:
            start = time.monotonic()
            try:
                detail = check()
            except Exception:
                failures += 1
                print(f"FAIL {name}")
                traceback.print_exc()
            else:
                seconds = time.monotonic() - start
                print(f"ok   {name:<14} ({seconds:5.1f}s)  {detail}")
            finally:
                INJECTOR.clear()

    if failures:
        print(f"chaos smoke: {failures} of {len(checks)} sites FAILED")
        return 1
    print(f"chaos smoke: all {len(checks)} fault sites degrade as "
          f"contracted")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
