"""Tests for the analysis package: CFG, dominators, loops, call graph,
aliasing, value ranges, and static metrics."""

import pytest

from repro.analysis import (
    AliasResult, CallGraph, DominatorTree, LoopInfo, ValueRangeAnalysis,
    alias, alloca_address_escapes, compute_trip_count, function_metrics,
    module_metrics, reachable_blocks, remove_unreachable_blocks,
    reverse_postorder, underlying_object, verification_cost_estimate,
)
from repro.frontend import compile_to_ir
from repro.ir import AllocaInst, ConstantInt, GEPInst, LoadInst, I64
from repro.passes import PromoteMemoryToRegisters, SimplifyCFG


def _prepared(source: str, name: str):
    """Compile, clean up the CFG and promote to SSA (the state most analyses
    are used in)."""
    module = compile_to_ir(source)
    SimplifyCFG().run_on_module(module)
    PromoteMemoryToRegisters().run_on_module(module)
    return module.get_function(name)


LOOP_SOURCE = """
int sum_to(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        total += i;
    }
    return total;
}
"""

NESTED_LOOP_SOURCE = """
int grid(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            total += i * j;
        }
    }
    return total;
}
"""

DIAMOND_SOURCE = """
int pick(int flag, int a, int b) {
    int result;
    if (flag) { result = a; } else { result = b; }
    return result;
}
"""


class TestCFG:
    def test_reachable_blocks_cover_function(self):
        function = _prepared(DIAMOND_SOURCE, "pick")
        reachable = reachable_blocks(function)
        assert reachable[0] is function.entry_block
        assert set(id(b) for b in reachable) == set(id(b) for b in function.blocks)

    def test_reverse_postorder_starts_at_entry(self):
        function = _prepared(LOOP_SOURCE, "sum_to")
        order = reverse_postorder(function)
        assert order[0] is function.entry_block
        assert len(order) == len(function.blocks)

    def test_remove_unreachable_blocks(self):
        source = """
        int f(int a) {
            return a;
            a = a + 1;
            return a;
        }
        """
        module = compile_to_ir(source)
        function = module.get_function("f")
        removed = remove_unreachable_blocks(function)
        assert removed >= 1
        assert len(reachable_blocks(function)) == len(function.blocks)


class TestDominators:
    def test_entry_dominates_everything(self):
        function = _prepared(LOOP_SOURCE, "sum_to")
        domtree = DominatorTree(function)
        for block in function.blocks:
            assert domtree.dominates(function.entry_block, block)

    def test_branch_arms_do_not_dominate_join(self):
        function = _prepared(DIAMOND_SOURCE, "pick")
        domtree = DominatorTree(function)
        entry = function.entry_block
        then_block, else_block = entry.successors()
        join = then_block.successors()[0]
        assert not domtree.dominates(then_block, join)
        assert not domtree.dominates(else_block, join)
        assert domtree.dominates(entry, join)

    def test_dominance_frontier_of_arms_is_join(self):
        function = _prepared(DIAMOND_SOURCE, "pick")
        domtree = DominatorTree(function)
        frontier = domtree.dominance_frontier()
        entry = function.entry_block
        then_block, else_block = entry.successors()
        join = then_block.successors()[0]
        assert join in frontier[then_block]
        assert join in frontier[else_block]

    def test_idom_of_entry_is_none(self):
        function = _prepared(LOOP_SOURCE, "sum_to")
        domtree = DominatorTree(function)
        assert domtree.immediate_dominator(function.entry_block) is None


class TestLoops:
    def test_single_loop_detected(self):
        function = _prepared(LOOP_SOURCE, "sum_to")
        loops = LoopInfo(function)
        assert len(loops.loops) == 1
        loop = loops.loops[0]
        assert loop.depth == 1
        assert loop.header in loop.blocks
        assert loop.latches

    def test_nested_loops_detected_with_depth(self):
        function = _prepared(NESTED_LOOP_SOURCE, "grid")
        loops = LoopInfo(function)
        assert len(loops.loops) == 2
        assert max(loop.depth for loop in loops.loops) == 2
        inner = [l for l in loops.loops if l.depth == 2][0]
        outer = [l for l in loops.loops if l.depth == 1][0]
        assert inner.parent is outer
        assert inner in outer.subloops

    def test_loop_exit_blocks_outside_loop(self):
        function = _prepared(LOOP_SOURCE, "sum_to")
        loop = LoopInfo(function).loops[0]
        for exit_block in loop.exit_blocks():
            assert not loop.contains(exit_block)

    def test_preheader_found(self):
        function = _prepared(LOOP_SOURCE, "sum_to")
        loop = LoopInfo(function).loops[0]
        preheader = loop.preheader()
        assert preheader is not None
        assert preheader.successors() == [loop.header]

    def test_trip_count_of_constant_loop(self):
        source = """
        int f() {
            int total = 0;
            for (int i = 0; i < 7; i++) { total += i; }
            return total;
        }
        """
        function = _prepared(source, "f")
        loop = LoopInfo(function).loops[0]
        trip = compute_trip_count(loop)
        assert trip is not None
        assert trip.count == 7

    def test_trip_count_unknown_for_symbolic_bound(self):
        function = _prepared(LOOP_SOURCE, "sum_to")
        loop = LoopInfo(function).loops[0]
        assert compute_trip_count(loop, max_count=64) is None


class TestCallGraph:
    SOURCE = """
    int leaf(int a) { return a + 1; }
    int middle(int a) { return leaf(a) * 2; }
    int top(int a) { return middle(a) + leaf(a); }
    int looper(int a) { if (a > 0) { return looper(a - 1); } return 0; }
    """

    def test_callees_and_callers(self):
        module = compile_to_ir(self.SOURCE)
        graph = CallGraph(module)
        assert set(graph.callees_of("top")) == {"middle", "leaf"}
        assert set(graph.callers_of("leaf")) == {"middle", "top"}

    def test_recursion_detected(self):
        module = compile_to_ir(self.SOURCE)
        graph = CallGraph(module)
        assert graph.is_recursive("looper")
        assert not graph.is_recursive("leaf")

    def test_bottom_up_order_places_callees_first(self):
        module = compile_to_ir(self.SOURCE)
        order = [f.name for f in CallGraph(module).bottom_up_order()]
        assert order.index("leaf") < order.index("middle") < order.index("top")

    def test_reachable_from(self):
        module = compile_to_ir(self.SOURCE)
        graph = CallGraph(module)
        assert graph.reachable_from(["middle"]) == {"middle", "leaf"}


class TestAlias:
    def test_distinct_allocas_do_not_alias(self):
        from repro.ir import I32
        a = AllocaInst(I32, "a")
        b = AllocaInst(I32, "b")
        assert alias(a, 4, b, 4) is AliasResult.NO_ALIAS

    def test_same_alloca_same_offset_must_alias(self):
        from repro.ir import I32
        a = AllocaInst(I32, "a")
        assert alias(a, 4, a, 4) is AliasResult.MUST_ALIAS

    def test_disjoint_offsets_do_not_alias(self):
        from repro.ir import ArrayType, I8
        a = AllocaInst(ArrayType(I8, 16), "buf")
        gep_low = GEPInst(a, [ConstantInt(I64, 0)], I8)
        gep_high = GEPInst(a, [ConstantInt(I64, 8)], I8)
        assert alias(gep_low, 4, gep_high, 4) is AliasResult.NO_ALIAS
        assert alias(gep_low, 9, gep_high, 4) is AliasResult.MAY_ALIAS

    def test_underlying_object_strips_geps(self):
        from repro.ir import ArrayType, I8
        a = AllocaInst(ArrayType(I8, 16), "buf")
        gep = GEPInst(a, [ConstantInt(I64, 3)], I8)
        gep2 = GEPInst(gep, [ConstantInt(I64, 2)], I8)
        info = underlying_object(gep2)
        assert info.base is a
        assert info.offset == 5

    def test_escape_analysis(self):
        source = """
        int touch(int *p) { return *p; }
        int local_only() { int x = 1; x = x + 1; return x; }
        int escaping() { int x = 1; return touch(&x); }
        """
        module = compile_to_ir(source)
        local = module.get_function("local_only")
        escaping = module.get_function("escaping")
        local_alloca = [i for i in local.instructions()
                        if isinstance(i, AllocaInst)][0]
        escaping_alloca = [i for i in escaping.instructions()
                           if isinstance(i, AllocaInst)][0]
        assert not alloca_address_escapes(local_alloca)
        assert alloca_address_escapes(escaping_alloca)


class TestMetricsAndRanges:
    def test_function_metrics_counts(self):
        module = compile_to_ir(DIAMOND_SOURCE)
        metrics = function_metrics(module.get_function("pick"))
        assert metrics.conditional_branches == 1
        assert metrics.allocas >= 3
        assert metrics.instructions > 0
        assert metrics.blocks >= 4

    def test_module_metrics_aggregate(self):
        module = compile_to_ir(LOOP_SOURCE + DIAMOND_SOURCE)
        metrics = module_metrics(module)
        assert metrics.functions == 2
        assert metrics.loops == 1
        assert "pick" in metrics.per_function

    def test_verification_cost_prefers_fewer_branches(self):
        branchy = compile_to_ir(DIAMOND_SOURCE).get_function("pick")
        straight = compile_to_ir("int f(int a) { return a + 1; }") \
            .get_function("f")
        assert verification_cost_estimate(branchy) > \
            verification_cost_estimate(straight)

    def test_value_ranges_of_bools_and_bytes(self):
        source = "int f(unsigned char c) { int is_x = c == 120; return is_x; }"
        function = _prepared(source, "f")
        analysis = ValueRangeAnalysis(function)
        from repro.ir import CastInst, ICmpInst
        for inst in function.instructions():
            if isinstance(inst, ICmpInst):
                assert analysis.range_of(inst).high <= 1
            if isinstance(inst, CastInst) and inst.opcode.value == "zext" and \
                    inst.value.type.width == 1:
                interval = analysis.range_of(inst)
                assert interval.low == 0 and interval.high == 1
