"""Tests for :class:`repro.pipelines.CompilerSession`: front-end caching,
cross-module analysis transfer, and the module-keyed manager pool."""

import pytest

from repro.analysis import CFG, DominatorTree, LoopInfo
from repro.frontend import analyze, lower, parse
from repro.ir.printer import print_module
from repro.pipelines import (
    CompileOptions, CompilerSession, OptLevel, compile_at_all_levels,
    compile_source, link_sources,
)
from repro.workloads import get_workload

SWEEP_LEVELS = [OptLevel.O0, OptLevel.O2, OptLevel.O3, OptLevel.OVERIFY]


@pytest.fixture(scope="module")
def wc_source():
    return get_workload("wc").source


class TestOptionsAreNotMutated:
    def test_level_shortcut_does_not_alias(self, wc_source):
        options = CompileOptions()
        result = compile_source(wc_source, options, level=OptLevel.O2)
        assert result.level is OptLevel.O2
        assert options.level is OptLevel.O0

    def test_session_compile_does_not_mutate(self, wc_source):
        options = CompileOptions(level=OptLevel.O1)
        session = CompilerSession()
        session.compile(wc_source, options, level=OptLevel.O3)
        assert options.level is OptLevel.O1


class TestSessionCorrectness:
    def test_session_ir_identical_to_cold_compiles(self, wc_source):
        session = CompilerSession()
        for level in SWEEP_LEVELS:
            warm = session.compile(wc_source, level=level)
            cold = compile_source(wc_source, level=level)
            assert print_module(warm.module) == print_module(cold.module), \
                f"session compile diverged at {level}"

    def test_repeated_compile_is_deterministic(self, wc_source):
        session = CompilerSession()
        first = session.compile(wc_source, level=OptLevel.OVERIFY)
        second = session.compile(wc_source, level=OptLevel.OVERIFY)
        assert print_module(first.module) == print_module(second.module)
        # the second compile benefited from the exchange
        assert second.analysis_stats.transfers > 0


class TestSessionSharing:
    def test_hit_rate_beats_independent_compiles(self, wc_source):
        # The acceptance criterion: a four-level session sweep has a
        # strictly higher aggregate analysis-cache hit rate than four
        # independent cold compiles of the same workload.
        session = CompilerSession()
        for level in SWEEP_LEVELS:
            session.compile(wc_source, level=level)
        aggregate = session.analysis_stats

        cold_hits = cold_misses = 0
        for level in SWEEP_LEVELS:
            stats = compile_source(wc_source, level=level).analysis_stats
            cold_hits += stats.hits
            cold_misses += stats.misses
        cold_rate = cold_hits / (cold_hits + cold_misses)

        assert aggregate.transfers > 0
        assert aggregate.hit_rate > cold_rate

    def test_frontend_is_reused_across_levels(self, wc_source):
        session = CompilerSession()
        for level in SWEEP_LEVELS:
            session.compile(wc_source, level=level)
        # Two linked sources exist (execution libc vs verification libc);
        # four compiles must not parse more than twice.
        assert session.stats.frontend_parses == 2
        assert session.stats.frontend_reuses == 2
        assert session.stats.compiles == 4

    def test_compile_at_all_levels_uses_one_session(self, wc_source):
        session = CompilerSession()
        results = compile_at_all_levels(wc_source, levels=SWEEP_LEVELS,
                                        session=session)
        assert set(results) == set(SWEEP_LEVELS)
        assert session.stats.compiles == 4
        assert session.analysis_stats.transfers > 0

    def test_manager_pool_is_module_keyed(self, wc_source):
        session = CompilerSession()
        result = session.compile(wc_source, level=OptLevel.O1)
        manager = session.manager_for(result.module)
        assert manager is session.manager_for(result.module)
        other = session.compile(wc_source, level=OptLevel.O1)
        assert session.manager_for(other.module) is not manager

    def test_pipeline_text_is_reported(self, wc_source):
        session = CompilerSession()
        result = session.compile(wc_source, level=OptLevel.O0)
        assert result.pipeline_text == "simplifycfg"


class TestAnalysisTransfer:
    """The remap constructors must produce exactly what a fresh computation
    over the sibling function would."""

    @pytest.fixture(scope="class")
    def twin_functions(self, wc_source):
        full = link_sources(wc_source, CompileOptions())
        unit = parse(full)
        analyze(unit)
        reference = lower(unit, "reference")
        working = lower(unit, "working")
        ref_fn = reference.get_function("main")
        work_fn = working.get_function("main")
        block_map = {id(rb): wb
                     for rb, wb in zip(ref_fn.blocks, work_fn.blocks)}
        return ref_fn, work_fn, block_map

    def test_remapped_cfg_matches_fresh(self, twin_functions):
        ref_fn, work_fn, block_map = twin_functions
        remapped = CFG.remapped(CFG(ref_fn), block_map, work_fn)
        fresh = CFG(work_fn)
        assert [b.name for b in remapped.postorder] == \
            [b.name for b in fresh.postorder]
        assert all(b.parent is work_fn for b in remapped.postorder)
        for block in fresh.postorder:
            assert sorted(p.name for p in remapped.predecessors(block)) == \
                sorted(p.name for p in fresh.predecessors(block))
            assert remapped.is_reachable(block)

    def test_remapped_domtree_matches_fresh(self, twin_functions):
        ref_fn, work_fn, block_map = twin_functions
        cfg = CFG(work_fn)
        remapped = DominatorTree.remapped(DominatorTree(ref_fn), block_map,
                                          work_fn, cfg=cfg)
        fresh = DominatorTree(work_fn)
        for block in fresh.rpo:
            fresh_idom = fresh.immediate_dominator(block)
            remap_idom = remapped.immediate_dominator(block)
            assert (fresh_idom.name if fresh_idom else None) == \
                (remap_idom.name if remap_idom else None)

    def test_remapped_loops_match_fresh(self, twin_functions):
        ref_fn, work_fn, block_map = twin_functions
        cfg = CFG(work_fn)
        domtree = DominatorTree(work_fn, cfg=cfg)
        remapped = LoopInfo.remapped(LoopInfo(ref_fn), block_map, work_fn,
                                     domtree=domtree, cfg=cfg)
        fresh = LoopInfo(work_fn, domtree=domtree, cfg=cfg)
        assert len(remapped.loops) == len(fresh.loops)
        fresh_headers = sorted(l.header.name for l in fresh.loops)
        remap_headers = sorted(l.header.name for l in remapped.loops)
        assert fresh_headers == remap_headers
        for block in work_fn.blocks:
            fresh_loop = fresh.loop_for(block)
            remap_loop = remapped.loop_for(block)
            assert (fresh_loop is None) == (remap_loop is None)
            if fresh_loop is not None:
                assert fresh_loop.header.name == remap_loop.header.name
                assert fresh_loop.depth == remap_loop.depth

    def test_transfer_window_closes_on_mutation(self, wc_source):
        session = CompilerSession()
        session.compile(wc_source, level=OptLevel.O1)
        result = session.compile(wc_source, level=OptLevel.O1)
        # Transfers happened, but only while functions were at their birth
        # epoch — never more transfers than total hits.
        stats = result.analysis_stats
        assert 0 < stats.transfers <= stats.hits
