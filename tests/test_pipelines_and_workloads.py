"""Integration tests: the libc variants, the workload suite, the optimization
pipelines, and the paper's headline claims."""

import pytest

from repro.analysis import module_metrics
from repro.interp import Interpreter, run_module
from repro.pipelines import (
    CompileOptions, OptLevel, build_pipeline, compile_source, link_sources,
    pipeline_description,
)
from repro.symex import SymexLimits, explore
from repro.vlibc import EXECUTION_LIBC, LIBC_FUNCTIONS, VERIFICATION_LIBC, libc_source
from repro.workloads import (
    WC_PROGRAM, all_workloads, get_workload, reference_word_count,
    workload_names,
)


# ---------------------------------------------------------------------------
# C library variants
# ---------------------------------------------------------------------------
def _call_libc(variant_source: str, function: str, args, buffers=None):
    """Compile one libc variant standalone and call a function in it."""
    from repro.frontend import compile_to_ir

    module = compile_to_ir(variant_source)
    interp = Interpreter(module)
    concrete_args = []
    for arg in args:
        if isinstance(arg, bytes):
            concrete_args.append(interp.allocate_buffer(arg + b"\x00"))
        else:
            concrete_args.append(arg)
    result = interp.run_function(function, concrete_args)
    assert not result.crashed, result.error
    return result.return_value


class TestVlibc:
    def test_both_variants_define_the_same_api(self):
        from repro.frontend import compile_to_ir
        for source in (EXECUTION_LIBC, VERIFICATION_LIBC):
            module = compile_to_ir(source)
            for name in LIBC_FUNCTIONS:
                function = module.get_function(name)
                assert not function.is_declaration

    @pytest.mark.parametrize("char", [0, ord(" "), ord("\t"), ord("\n"),
                                      ord("a"), ord("Z"), ord("5"), ord("!"),
                                      127, 200])
    def test_ctype_variants_agree_with_python(self, char):
        import string
        expectations = {
            "isspace": chr(char) in " \t\n\r\x0b\x0c",
            "isdigit": chr(char).isdigit() if char < 128 else False,
            "isalpha": chr(char) in string.ascii_letters,
            "isupper": chr(char) in string.ascii_uppercase,
            "islower": chr(char) in string.ascii_lowercase,
        }
        for function, expected in expectations.items():
            for source in (EXECUTION_LIBC, VERIFICATION_LIBC):
                got = _call_libc(source, function, [char])
                assert bool(got) == expected, (function, char, source[:20])

    @pytest.mark.parametrize("a,b,expected_sign", [
        (b"abc", b"abc", 0), (b"abc", b"abd", -1), (b"abd", b"abc", 1),
        (b"ab", b"abc", -1), (b"abc", b"ab", 1), (b"", b"", 0),
    ])
    def test_strcmp_variants_agree(self, a, b, expected_sign):
        for source in (EXECUTION_LIBC, VERIFICATION_LIBC):
            value = _call_libc(source, "strcmp", [a, b])
            signed = value - (1 << 32) if value >= (1 << 31) else value
            if expected_sign == 0:
                assert signed == 0
            else:
                assert (signed > 0) == (expected_sign > 0)

    @pytest.mark.parametrize("text", [b"", b"a", b"hello world"])
    def test_strlen_variants(self, text):
        for source in (EXECUTION_LIBC, VERIFICATION_LIBC):
            assert _call_libc(source, "strlen", [text]) == len(text)

    @pytest.mark.parametrize("text,expected", [
        (b"42", 42), (b"-7", -7 & 0xFFFFFFFF), (b"  19x", 19), (b"x", 0),
    ])
    def test_atoi_variants(self, text, expected):
        for source in (EXECUTION_LIBC, VERIFICATION_LIBC):
            assert _call_libc(source, "atoi", [text]) == expected

    def test_toupper_tolower_variants(self):
        for source in (EXECUTION_LIBC, VERIFICATION_LIBC):
            assert _call_libc(source, "toupper", [ord("a")]) == ord("A")
            assert _call_libc(source, "toupper", [ord("A")]) == ord("A")
            assert _call_libc(source, "tolower", [ord("Z")]) == ord("z")
            assert _call_libc(source, "tolower", [ord("5")]) == ord("5")

    def test_verification_variant_has_fewer_branches(self):
        from repro.frontend import compile_to_ir
        exec_metrics = module_metrics(compile_to_ir(EXECUTION_LIBC))
        verify_metrics = module_metrics(compile_to_ir(VERIFICATION_LIBC))
        exec_ctype = sum(exec_metrics.per_function[n].conditional_branches
                         for n in ("isspace", "isalpha", "isalnum"))
        verify_ctype = sum(verify_metrics.per_function[n].conditional_branches
                           for n in ("isspace", "isalpha", "isalnum"))
        assert verify_ctype < exec_ctype

    def test_libc_source_selector(self):
        assert libc_source(True) is VERIFICATION_LIBC
        assert libc_source(False) is EXECUTION_LIBC


# ---------------------------------------------------------------------------
# Pipelines
# ---------------------------------------------------------------------------
class TestPipelines:
    def test_pipeline_descriptions(self):
        assert pipeline_description(OptLevel.O0) == ["simplifycfg"]
        overify = pipeline_description(OptLevel.OVERIFY)
        assert "inline" in overify and "ifconvert" in overify
        assert "annotate" in overify and "runtime-checks" in overify

    def test_levels_are_ordered_by_aggressiveness(self):
        assert len(pipeline_description(OptLevel.O1)) < \
            len(pipeline_description(OptLevel.O2)) < \
            len(pipeline_description(OptLevel.OVERIFY))

    def test_link_sources_selects_libc_variant(self):
        overify = link_sources("int main(unsigned char *i, int l) { return 0; }",
                               CompileOptions(level=OptLevel.OVERIFY))
        o3 = link_sources("int main(unsigned char *i, int l) { return 0; }",
                          CompileOptions(level=OptLevel.O3))
        assert "__overify_check_fail" in overify
        # The branch-free isspace only exists in the verification variant.
        assert "(c == ' ') | ((c >= '\\t') & (c <= '\\r'))" in overify
        assert "(c == ' ') | ((c >= '\\t') & (c <= '\\r'))" not in o3

    def test_compilation_result_metadata(self):
        result = compile_source(WC_PROGRAM,
                                CompileOptions(level=OptLevel.O2))
        assert result.level is OptLevel.O2
        assert result.module.metadata["opt_level"] == "-O2"
        assert result.compile_seconds > 0
        assert result.instruction_count > 0

    @pytest.mark.parametrize("level", list(OptLevel))
    def test_every_level_produces_verified_ir(self, level):
        result = compile_source(WC_PROGRAM, CompileOptions(
            level=level, verify_after_each_pass=True))
        assert result.instruction_count > 0

    def test_overify_reduces_branches_vs_o3(self):
        # Since -O3 also runs ifconvert (with a CPU-sized budget) the two
        # levels can tie on raw conditional-branch count; -OVERIFY must
        # never have *more*, and its bigger speculation budget must convert
        # at least as many diamonds into selects.
        o3 = compile_source(WC_PROGRAM, CompileOptions(level=OptLevel.O3))
        overify = compile_source(WC_PROGRAM,
                                 CompileOptions(level=OptLevel.OVERIFY))
        assert module_metrics(overify.module).conditional_branches <= \
            module_metrics(o3.module).conditional_branches
        assert module_metrics(overify.module).selects >= \
            module_metrics(o3.module).selects
        assert module_metrics(overify.module).selects > 0


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------
SAMPLE_INPUTS = [b"", b"a", b"hello world\n", b"n1:2\n3:4\n", b"/usr/bin/env",
                 b"7*6", b"  42  ", bytes(range(1, 11))]


class TestWorkloads:
    def test_registry_is_populated(self):
        names = workload_names()
        assert len(names) >= 30
        assert "wc" in names and "cat" in names and "expr" in names

    def test_workload_lookup_errors(self):
        with pytest.raises(KeyError):
            get_workload("not-a-real-utility")

    def test_buggy_category_separate(self):
        buggy = workload_names("buggy")
        assert set(buggy) == {"buggy_index", "buggy_div"}
        assert "buggy_index" not in workload_names("coreutils")

    @pytest.mark.parametrize("name", workload_names("coreutils"))
    def test_every_workload_compiles_at_o0_and_overify(self, name):
        workload = get_workload(name)
        o0 = compile_source(workload.source, CompileOptions(level=OptLevel.O0))
        overify = compile_source(workload.source,
                                 CompileOptions(level=OptLevel.OVERIFY))
        assert o0.instruction_count > 0
        assert overify.instruction_count > 0

    @pytest.mark.parametrize("name", workload_names("coreutils"))
    def test_optimization_levels_agree_on_concrete_inputs(self, name):
        """Differential test: -O0, -O3 and -OVERIFY must behave identically
        (same return value, same crash/no-crash) on concrete inputs."""
        workload = get_workload(name)
        modules = {
            level: compile_source(workload.source,
                                  CompileOptions(level=level)).module
            for level in (OptLevel.O0, OptLevel.O3, OptLevel.OVERIFY)
        }
        for sample in SAMPLE_INPUTS[:5]:
            outcomes = {}
            for level, module in modules.items():
                result = run_module(module, sample)
                outcomes[level] = (result.return_value, result.crashed)
            assert outcomes[OptLevel.O0] == outcomes[OptLevel.O3] == \
                outcomes[OptLevel.OVERIFY], (name, sample, outcomes)

    def test_wc_reference_matches_compiled_kernel(self):
        module = compile_source(WC_PROGRAM,
                                CompileOptions(level=OptLevel.O2)).module
        for text in (b"one two  three", b"", b"words,with;separators!"):
            for any_flag in (0, 1):
                result = run_module(module, bytes([any_flag]) + text)
                assert result.return_value == \
                    reference_word_count(text, bool(any_flag))


# ---------------------------------------------------------------------------
# The paper's headline claims (scaled-down)
# ---------------------------------------------------------------------------
class TestPaperClaims:
    INPUT_BYTES = 3

    def _paths(self, level):
        module = compile_source(WC_PROGRAM, CompileOptions(level=level)).module
        report = explore(module, self.INPUT_BYTES,
                         limits=SymexLimits(timeout_seconds=120))
        return report

    def test_overify_explores_dramatically_fewer_paths(self):
        # The margin narrowed when branch-free short-circuit lowering made
        # every level cheap (-O0 dropped from 1605 paths to double digits
        # on 4 bytes), but -OVERIFY must still win clearly on both axes.
        o0 = self._paths(OptLevel.O0)
        overify = self._paths(OptLevel.OVERIFY)
        assert overify.stats.total_paths * 5 <= o0.stats.total_paths
        assert overify.stats.instructions_interpreted * 5 <= \
            o0.stats.instructions_interpreted

    def test_o2_now_explores_fewer_paths_than_o0(self):
        # Table 1 of the paper has -O0 == -O2 (30537 paths) because a
        # CPU-oriented -O2 does not change branch structure.  Our -O2
        # deliberately deviates: SCCP deletes provably-untaken edges and
        # the modest ifconvert budget flattens cheap diamonds (as clang
        # and gcc do), so -O2 must now explore strictly fewer paths than
        # -O0, while -O0/-O1 remain branch-structure-preserving peers.
        o0 = self._paths(OptLevel.O0)
        o1 = self._paths(OptLevel.O1)
        o2 = self._paths(OptLevel.O2)
        assert o0.stats.total_paths == o1.stats.total_paths
        assert o2.stats.total_paths < o0.stats.total_paths

    def test_all_levels_return_consistent_path_results(self):
        # Each completed path's generated test input must reproduce the same
        # return value on the -O0 build (cross-build consistency).
        overify_module = compile_source(
            WC_PROGRAM, CompileOptions(level=OptLevel.OVERIFY)).module
        o0_module = compile_source(
            WC_PROGRAM, CompileOptions(level=OptLevel.O0)).module
        report = explore(overify_module, self.INPUT_BYTES,
                         limits=SymexLimits(timeout_seconds=60))
        for path in report.paths:
            if path.test_input is None or path.return_value is None:
                continue
            concrete = run_module(o0_module, path.test_input)
            assert concrete.return_value == path.return_value

    @pytest.mark.parametrize("name", ["buggy_index", "buggy_div"])
    def test_bug_parity_across_levels(self, name):
        """§4: all bugs found at -O0 and -O3 are also found at -OSYMBEX."""
        workload = get_workload(name)
        kinds = {}
        for level in (OptLevel.O0, OptLevel.O3, OptLevel.OVERIFY):
            module = compile_source(workload.source,
                                    CompileOptions(level=level)).module
            report = explore(module, 2,
                             limits=SymexLimits(timeout_seconds=60))
            kinds[level] = {bug.kind for bug in report.bugs}
        assert kinds[OptLevel.O0], "the planted bug must be found at -O0"
        assert kinds[OptLevel.O0] <= kinds[OptLevel.OVERIFY]
        assert kinds[OptLevel.O3] <= kinds[OptLevel.OVERIFY]

    def test_verification_time_conflicts_with_execution_time(self):
        """The paper's core observation: the branch-free build verifies much
        faster even though it is not the fastest build to execute."""
        o3 = compile_source(WC_PROGRAM, CompileOptions(level=OptLevel.O3))
        overify = compile_source(WC_PROGRAM,
                                 CompileOptions(level=OptLevel.OVERIFY))
        o3_report = explore(o3.module, self.INPUT_BYTES,
                            limits=SymexLimits(timeout_seconds=120))
        overify_report = explore(overify.module, self.INPUT_BYTES,
                                 limits=SymexLimits(timeout_seconds=120))
        assert overify_report.stats.total_paths < o3_report.stats.total_paths
        # Execution: the -OVERIFY build executes at least as many dynamic
        # instructions per concrete run as -O3 executes (the cost of
        # speculation) — "this illustrates the conflicting requirements".
        text = bytes([1]) + b"several words for counting here today"
        o3_run = run_module(o3.module, text)
        overify_run = run_module(overify.module, text)
        assert overify_run.return_value == o3_run.return_value
