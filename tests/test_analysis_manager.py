"""Tests for the analysis manager: epoch tracking, lazy caching, and
preservation-driven invalidation across the pass pipeline."""

import pytest

from repro.analysis import (
    CFG_DERIVED, DOMTREE_ANALYSIS, LOOPS_ANALYSIS, RANGES_ANALYSIS,
    AnalysisManager, CallGraph, DominatorTree, LoopInfo, PreservedAnalyses,
)
from repro.frontend import compile_to_ir
from repro.ir import BasicBlock, ConstantInt, I32, ReturnInst
from repro.passes import (
    AnnotateForVerification, ConstantPropagation, DeadCodeElimination,
    JumpThreading, PassManager, PromoteMemoryToRegisters, SimplifyCFG,
)

TWO_FUNCTION_SOURCE = """
int stable(int a, int b) {
    int total = 0;
    for (int i = 0; i < a; i++) { total += b; }
    return total;
}
int shrinks(int a) {
    if (1) { return a + 1; } else { return a - 1; }
}
"""


def _module():
    return compile_to_ir(TWO_FUNCTION_SOURCE)


# ---------------------------------------------------------------------------
# Epoch bookkeeping
# ---------------------------------------------------------------------------
class TestModificationEpochs:
    def test_instruction_mutation_bumps_function_and_module_epoch(self):
        module = _module()
        function = module.get_function("stable")
        before_fn, before_mod = function.ir_epoch, module.ir_epoch
        ret = BasicBlock("extra")
        function.append_block(ret)
        ret.append_instruction(ReturnInst(ConstantInt(I32, 0)))
        assert function.ir_epoch > before_fn
        assert module.ir_epoch > before_mod

    def test_operand_rewrite_bumps_epoch(self):
        module = _module()
        function = module.get_function("shrinks")
        before = function.ir_epoch
        inst = next(i for i in function.instructions() if i.operands)
        inst.set_operand(0, inst.operands[0])
        assert function.ir_epoch > before


# ---------------------------------------------------------------------------
# Lazy caching
# ---------------------------------------------------------------------------
class TestCaching:
    def test_repeated_request_is_identity_preserving_hit(self):
        module = _module()
        function = module.get_function("stable")
        manager = AnalysisManager()
        first = manager.dominator_tree(function)
        again = manager.dominator_tree(function)
        assert first is again
        assert manager.stats.hits == 1
        assert manager.stats.misses >= 1  # domtree (+ cfg dependency)

    def test_loop_info_shares_cached_dominator_tree(self):
        module = _module()
        function = module.get_function("stable")
        manager = AnalysisManager()
        domtree = manager.dominator_tree(function)
        loops = manager.loop_info(function)
        assert loops.domtree is domtree

    def test_mutation_triggers_recompute(self):
        module = _module()
        function = module.get_function("stable")
        manager = AnalysisManager()
        first = manager.dominator_tree(function)
        function.bump_ir_epoch()
        assert manager.dominator_tree(function) is not first

    def test_call_graph_cached_per_module_epoch(self):
        module = _module()
        manager = AnalysisManager()
        first = manager.call_graph(module)
        assert manager.call_graph(module) is first
        # Mutating any function invalidates the module-level analysis too.
        module.get_function("stable").bump_ir_epoch()
        assert manager.call_graph(module) is not first


# ---------------------------------------------------------------------------
# Preservation-driven invalidation
# ---------------------------------------------------------------------------
class TestPreservedAnalyses:
    def test_unchanged_preserves_everything(self):
        pa = PreservedAnalyses.unchanged()
        assert not pa.changed
        assert pa.preserves(DOMTREE_ANALYSIS)

    def test_none_preserves_nothing(self):
        pa = PreservedAnalyses.none()
        assert pa.changed
        assert not pa.preserves(DOMTREE_ANALYSIS)

    def test_cfg_preserving_keeps_shape_analyses_only(self):
        pa = PreservedAnalyses.cfg_preserving()
        for name in CFG_DERIVED:
            assert pa.preserves(name)
        assert not pa.preserves(RANGES_ANALYSIS)

    def test_legacy_bool_coercion(self):
        assert PreservedAnalyses.from_legacy(True).changed
        assert not PreservedAnalyses.from_legacy(False).changed
        pa = PreservedAnalyses.none()
        assert PreservedAnalyses.from_legacy(pa) is pa

    def test_declared_preservation_survives_epoch_bump(self):
        """A pass that changed the IR but preserved the dominator tree gets
        its cache entry re-stamped instead of dropped."""
        module = _module()
        function = module.get_function("stable")
        manager = AnalysisManager()
        domtree = manager.dominator_tree(function)
        epoch_before = function.ir_epoch
        function.bump_ir_epoch()  # the "pass" mutated values only
        manager.after_function_pass(
            function, PreservedAnalyses.cfg_preserving(), epoch_before)
        assert manager.dominator_tree(function) is domtree

    def test_stale_entry_is_never_restamped(self):
        """An entry that was already stale when the pass started must not be
        promoted to current by the pass's preservation declaration."""
        module = _module()
        function = module.get_function("stable")
        manager = AnalysisManager()
        stale = manager.dominator_tree(function)
        function.bump_ir_epoch()        # mutation BEFORE the pass ran
        epoch_before = function.ir_epoch
        function.bump_ir_epoch()        # mutation made BY the pass
        manager.after_function_pass(
            function, PreservedAnalyses.cfg_preserving(), epoch_before)
        assert manager.dominator_tree(function) is not stale


# ---------------------------------------------------------------------------
# Whole-pipeline behaviour
# ---------------------------------------------------------------------------
class TestPipelineIntegration:
    def test_all_preserving_pass_twice_yields_cache_hits(self):
        """The acceptance criterion: running an all-preserving pass twice
        reports at least one analysis cache hit, with identical analysis
        objects served both times."""
        module = _module()
        manager = PassManager()
        manager.extend([AnnotateForVerification(), AnnotateForVerification()])
        manager.run(module)
        assert manager.stats.analysis_cache_hits >= 1
        second = manager.history[1]
        assert second.analysis_cache_hits >= 1
        assert second.analysis_cache_misses == 0

    def test_cfg_mutating_pass_invalidates_only_changed_functions(self):
        """SimplifyCFG folds the (propagated) constant branch in `shrinks`
        but leaves the single-block `stable` alone: `stable`'s analyses must
        survive, `shrinks`'s must be dropped."""
        source = """
        int stable(int a, int b) { return a + b; }
        int shrinks(int a) {
            int flag = 1;
            if (flag) { return a + 1; }
            return a - 1;
        }
        """
        module = compile_to_ir(source)
        prep = PassManager()
        prep.extend([SimplifyCFG(), PromoteMemoryToRegisters(),
                     ConstantPropagation()])
        prep.run(module)

        stable = module.get_function("stable")
        shrinks = module.get_function("shrinks")
        manager = PassManager(analyses=prep.analyses)
        analyses = manager.analyses
        stable_domtree = analyses.dominator_tree(stable)
        shrinks_domtree = analyses.dominator_tree(shrinks)

        manager.add(SimplifyCFG())
        assert manager.run(module)  # shrinks' constant branch folds

        assert analyses.is_cached(DOMTREE_ANALYSIS, stable)
        assert analyses.dominator_tree(stable) is stable_domtree
        assert not analyses.is_cached(DOMTREE_ANALYSIS, shrinks)
        assert analyses.dominator_tree(shrinks) is not shrinks_domtree

    def test_jump_threading_invalidates_changed_function(self):
        source = """
        int thread(int a) {
            int x;
            if (a > 0) { x = 1; } else { x = 0; }
            if (x) { return 10; }
            return 20;
        }
        int untouched(int a) { return a; }
        """
        module = compile_to_ir(source)
        prep = PassManager()
        prep.extend([SimplifyCFG(), PromoteMemoryToRegisters(),
                     ConstantPropagation()])
        prep.run(module)

        thread_fn = module.get_function("thread")
        untouched_fn = module.get_function("untouched")
        manager = PassManager(analyses=prep.analyses)
        analyses = manager.analyses
        analyses.loop_info(thread_fn)
        untouched_loops = analyses.loop_info(untouched_fn)

        manager.add(JumpThreading())
        assert manager.run(module)
        assert manager.stats.jumps_threaded >= 1
        assert not analyses.is_cached(LOOPS_ANALYSIS, thread_fn)
        assert analyses.is_cached(LOOPS_ANALYSIS, untouched_fn)
        assert analyses.loop_info(untouched_fn) is untouched_loops

    def test_counters_flow_into_transform_stats_and_history(self):
        module = _module()
        manager = PassManager()
        manager.extend([SimplifyCFG(), PromoteMemoryToRegisters(),
                        DeadCodeElimination(), AnnotateForVerification()])
        manager.run(module)
        stats = manager.stats.as_dict()
        assert stats["analysis_cache_misses"] > 0
        assert len(manager.history) == 4
        recorded_hits = sum(r.analysis_cache_hits for r in manager.history)
        assert recorded_hits == manager.stats.analysis_cache_hits

    def test_no_pass_constructs_core_analyses_directly(self):
        """Guard for the refactor's invariant: passes obtain LoopInfo,
        DominatorTree, and CallGraph through the analysis manager only."""
        import pathlib
        import re
        passes_dir = pathlib.Path(__file__).resolve().parent.parent \
            / "src" / "repro" / "passes"
        pattern = re.compile(
            r"\b(?:LoopInfo|DominatorTree|CallGraph)\s*\(")
        offenders = []
        for path in passes_dir.glob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if pattern.search(line):
                    offenders.append(f"{path.name}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)
