"""Chaos suite: the deterministic fault-injection matrix.

Every registered fault site is driven through its host layer and must
produce a *structured* failure — a contained engine-error path, a retried
worker, a degraded cold store, a protocol error response — in bounded
wall time, never a hang, never a corrupt store, never an unhandled
exception.  The worker-recovery differential is the strongest leg: a
``workers=4`` run with an injected crash (and a successful retry) must
reproduce the clean run's path and bug fingerprint exactly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import pytest

from repro import faults
from repro.faults import (
    EngineError, FaultPlanError, INJECTOR, ProtocolError, ReproError,
    SolverError, StoreError, WorkerCrash, injected,
)
from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.service import ServiceClient, ServiceError, SolverKnowledgeStore
from repro.service.server import VerificationServer
from repro.service.store import outcome_to_memo, memo_to_outcome
from repro.symex import (
    SharedSolverCaches, Solver, SolverConfig, StateStatus, SymexLimits,
    explore, explore_parallel,
)
from repro.verification import VerificationRequest, make_backend
from repro.workloads import get_workload

LIMITS = SymexLimits(timeout_seconds=120.0)


@pytest.fixture(autouse=True)
def _disarm_after():
    """No test leaks an installed plan into the rest of the suite."""
    yield
    INJECTOR.clear()


@pytest.fixture(scope="module")
def wc_module():
    return compile_source(get_workload("wc").source,
                          CompileOptions(level=OptLevel.O1)).module


def _fingerprint(report):
    """The schedule-independent outcome of a run (mirrors the parallel
    determinism suite)."""
    stats = report.stats
    return {
        "paths_completed": stats.paths_completed,
        "paths_errored": stats.paths_errored,
        "total_paths": stats.total_paths,
        "engine_errors": stats.engine_errors,
        "instructions": stats.instructions_interpreted
        - stats.instructions_replayed,
        "bug_signatures": frozenset(report.bug_signatures()),
    }


# ------------------------------------------------------------ plan grammar


class TestPlanGrammar:
    def test_every_fires_deterministically(self):
        site = faults.site("test.alpha")
        with injected("test.alpha:every=3"):
            raised = []
            for hit in range(1, 10):
                try:
                    site.fire()
                except EngineError:
                    raised.append(hit)
            assert raised == [3, 6, 9]
            assert site.fired == 3

    def test_once_fires_exactly_once(self):
        site = faults.site("test.beta")
        with injected("test.beta:once"):
            with pytest.raises(EngineError) as excinfo:
                site.fire()
            assert excinfo.value.site == "test.beta"
            for _ in range(20):
                site.fire()  # budget spent: silent forever after
            assert site.fired == 1

    def test_times_caps_firings(self):
        site = faults.site("test.gamma")
        with injected("test.gamma:every=2,times=2"):
            fired = 0
            for _ in range(20):
                try:
                    site.fire()
                except EngineError:
                    fired += 1
            assert fired == 2

    def test_prob_is_deterministic_across_installs(self):
        site = faults.site("test.delta")

        def pattern(plan):
            with injected(plan):
                hits = []
                for hit in range(1, 201):
                    try:
                        site.fire()
                    except EngineError:
                        hits.append(hit)
                return hits

        first = pattern("test.delta:prob=0.1;seed=7")
        assert first == pattern("test.delta:prob=0.1;seed=7")
        assert first != pattern("test.delta:prob=0.1;seed=8")
        assert 0 < len(first) < 60  # ~20 expected of 200

    def test_error_class_follows_registration(self):
        site = faults.site("test.epsilon", StoreError)
        with injected("test.epsilon"):
            with pytest.raises(StoreError):
                site.fire()

    def test_plan_arms_sites_registered_later(self):
        with injected("test.zeta-late:once"):
            site = faults.site("test.zeta-late")
            assert site.armed
            with pytest.raises(EngineError):
                site.fire()

    def test_injected_restores_previous_plan(self):
        site = faults.site("test.eta")
        with injected("test.eta"):
            with injected("test.theta"):
                assert not site.armed
            assert site.armed
        assert not site.armed

    @pytest.mark.parametrize("plan", [
        "site:every=0", "site:prob=1.5", "site:prob=nope",
        "site:every=2,prob=0.5", "site:times=-2", "site:frequency=3",
        "seed=abc", "bad name:once",
    ])
    def test_malformed_plans_are_rejected(self, plan):
        with pytest.raises(FaultPlanError):
            INJECTOR.install(plan)

    def test_env_plan_arms_at_import(self):
        code = ("import repro.symex.solver as s, repro.faults as f;"
                "print(','.join(f.INJECTOR.armed()))")
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "REPRO_FAULTS": "solver.check:prob=0.5",
                 "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "solver.check"

    def test_registry_covers_every_layer(self):
        import repro.service.server  # noqa: F401 - registers server.handle
        registered = INJECTOR.registered()
        for name in ("solver.check", "engine.step", "worker.run",
                     "store.write", "store.load", "server.handle"):
            assert name in registered


# ----------------------------------------------------- path-level containment


class TestEngineContainment:
    def test_solver_fault_is_contained_per_path(self, wc_module):
        clean = explore(wc_module, 3, limits=LIMITS)
        with injected("solver.check:every=4"):
            report = explore(wc_module, 3, limits=LIMITS)
        stats = report.stats
        assert stats.engine_errors > 0
        # Failed paths are diagnosed, not counted as explored.
        assert stats.total_paths < clean.stats.total_paths
        assert any("solver.check" in line for line in report.diagnostics)
        errored = [record for record in report.paths
                   if record.status is StateStatus.ENGINE_ERROR]
        assert len(errored) == stats.engine_errors

    def test_engine_step_fault_is_contained(self, wc_module):
        with injected("engine.step:every=2"):
            report = explore(wc_module, 3, limits=LIMITS)
        assert report.stats.engine_errors > 0
        assert any("engine.step" in line for line in report.diagnostics)

    def test_every_path_failing_still_terminates(self, wc_module):
        with injected("engine.step:every=1"):
            report = explore(wc_module, 3, limits=LIMITS)
        # Only paths shorter than the budget-check stride can still
        # finish; everything that reaches the site is abandoned, and the
        # run terminates instead of looping on the failing frontier.
        assert report.stats.engine_errors > 0
        assert report.stats.paths_completed <= 1

    def test_engine_error_paths_spend_path_budget(self):
        # Abandoned paths count toward max_paths: a fully failing run
        # cannot grind through an unbounded frontier.
        from repro.symex import ExplorationBudget, SymexStats
        stats = SymexStats(paths_completed=1, engine_errors=3)
        budget = ExplorationBudget(SymexLimits(max_paths=4), [stats])
        assert budget.exhausted() == "paths"
        stats.engine_errors = 2
        assert budget.exhausted() is None

    def test_diagnostics_survive_the_memo_round_trip(self, wc_module):
        with injected("solver.check:every=4"):
            outcome = make_backend("symex").verify(
                wc_module, VerificationRequest(symbolic_input_bytes=3))
        assert outcome.engine_errors > 0
        decoded = memo_to_outcome(outcome_to_memo(outcome), backend="symex")
        assert decoded.engine_errors == outcome.engine_errors
        assert decoded.detail.diagnostics == outcome.detail.diagnostics


# ----------------------------------------------------------- worker recovery


class TestWorkerRecovery:
    def test_crash_with_retry_matches_clean_run(self, wc_module):
        clean = explore_parallel(wc_module, 3, workers=4, limits=LIMITS)
        with injected("worker.run:once"):
            crashed = explore_parallel(wc_module, 3, workers=4,
                                       limits=LIMITS)
        assert _fingerprint(crashed) == _fingerprint(clean)
        assert crashed.stats.termination_reason == ""

    def test_crash_retry_is_deterministic_across_searchers(self, wc_module):
        for searcher in ("dfs", "bfs"):
            clean = explore_parallel(wc_module, 3, searcher=searcher,
                                     workers=4, limits=LIMITS)
            # every=3 delays the (single) crash past the root state, so
            # the retried snapshot replays mid-exploration work.
            with injected("worker.run:every=3,times=1"):
                crashed = explore_parallel(wc_module, 3, searcher=searcher,
                                           workers=4, limits=LIMITS)
            assert _fingerprint(crashed) == _fingerprint(clean)

    def test_unbounded_crashes_degrade_without_hanging(self, wc_module):
        start = time.monotonic()
        with injected("worker.run"):
            report = explore_parallel(wc_module, 3, workers=4, limits=LIMITS)
        assert time.monotonic() - start < 60.0
        assert report.stats.paths_completed == 0
        assert report.stats.paths_terminated >= 1
        assert any("not retried" in line for line in report.diagnostics)

    def test_single_worker_crash_degrades(self, wc_module):
        with injected("worker.run:once"):
            report = explore_parallel(wc_module, 3, workers=1, limits=LIMITS)
        # No sibling to retry on: the run ends, accounted, not hung.
        assert report.stats.total_paths + report.stats.paths_terminated >= 1


# -------------------------------------------------------------- store faults


def _populated_store(path):
    store = SolverKnowledgeStore(path)
    store.memo_record("k" * 64, {"paths": 1})
    return store


class TestStoreFaults:
    def test_torn_write_leaves_previous_file_intact(self, tmp_path):
        path = tmp_path / "knowledge.jsonl"
        _populated_store(path).save()
        before = path.read_bytes()
        store = _populated_store(path)
        store.memo_record("m" * 64, {"paths": 2})
        with injected("store.write:once"):
            with pytest.raises(StoreError) as excinfo:
                store.save()
            assert excinfo.value.site == "store.write"
            assert excinfo.value.retryable
            assert path.read_bytes() == before  # atomicity held
            assert list(tmp_path.glob("*.tmp")) == []  # no debris
            store.save()  # budget spent: the retry succeeds
        assert path.read_bytes() != before
        assert SolverKnowledgeStore(path).load() is True

    def test_load_fault_degrades_to_cold_without_touching_file(
            self, tmp_path):
        path = tmp_path / "knowledge.jsonl"
        _populated_store(path).save()
        before = path.read_bytes()
        store = SolverKnowledgeStore(path)
        with injected("store.load:once"):
            assert store.load() is False
            assert store.load_error.startswith("fault")
            assert path.read_bytes() == before
            assert store.load() is True  # budget spent: warm again

    def test_corrupt_store_is_quarantined_not_relooped(self, tmp_path):
        path = tmp_path / "knowledge.jsonl"
        path.write_text("garbage that is definitely not a store\n")
        store = SolverKnowledgeStore(path)
        assert store.load() is False
        assert store.load_error.startswith("corrupt")
        quarantined = tmp_path / "knowledge.jsonl.corrupt-1"
        assert store.quarantined == str(quarantined)
        assert quarantined.exists()
        assert not path.exists()
        # The next write starts clean; a second corruption lands in -2.
        _populated_store(path).save()
        assert SolverKnowledgeStore(path).load() is True
        path.write_text("garbage again\n")
        store2 = SolverKnowledgeStore(path)
        assert store2.load() is False
        assert store2.quarantined.endswith(".corrupt-2")

    def test_backend_survives_save_fault_end_to_end(self, tmp_path,
                                                    wc_module):
        store_path = tmp_path / "knowledge.jsonl"
        backend = make_backend("symex", store=str(store_path))
        request = VerificationRequest(symbolic_input_bytes=3)
        with injected("store.write:once"):
            outcome = backend.verify(wc_module, request)
        assert outcome.paths > 0  # the verification stood
        assert not store_path.exists()  # ...but nothing persisted
        second = make_backend("symex", store=str(store_path)) \
            .verify(wc_module, request)
        assert second.provenance == "cold"
        assert store_path.exists()


# ------------------------------------------------------------ query deadline


class TestQueryDeadline:
    def test_expired_queries_answer_conservatively(self, wc_module):
        config = SolverConfig(query_deadline_seconds=1e-9)
        start = time.monotonic()
        report = explore(wc_module, 2, limits=LIMITS,
                         solver=Solver(config=config))
        assert time.monotonic() - start < 60.0
        assert report.solver_stats.query_deadlines > 0
        assert report.stats.total_paths > 0  # degraded, not dead

    def test_generous_deadline_changes_nothing(self, wc_module):
        clean = explore(wc_module, 3, limits=LIMITS)
        timed = explore(wc_module, 3, limits=LIMITS,
                        solver=Solver(config=SolverConfig(
                            query_deadline_seconds=300.0)))
        assert timed.solver_stats.query_deadlines == 0
        assert _fingerprint(timed) == _fingerprint(clean)

    def test_deadline_spec_round_trips(self):
        backend = make_backend("symex<query-deadline-ms=250>")
        assert backend.solver_config.query_deadline_seconds == 0.25
        assert "query-deadline-ms=250" in backend.describe()
        assert make_backend(backend.describe()) \
            .solver_config.query_deadline_seconds == 0.25


# ------------------------------------------------------------ service faults


class _RunningServer:
    def __init__(self, tmp_path, name, **kwargs):
        self.socket_path = str(tmp_path / f"{name}.sock")
        self.server = VerificationServer(self.socket_path, **kwargs)
        self.thread = threading.Thread(target=self.server.run, daemon=True)

    def __enter__(self):
        self.thread.start()
        self.client = ServiceClient(self.socket_path, timeout=120.0)
        self.client.wait_until_ready()
        return self

    def __exit__(self, *exc_info):
        try:
            self.client.shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "server did not shut down"


class TestServiceFaults:
    def test_handler_fault_is_one_structured_error(self, tmp_path):
        with _RunningServer(tmp_path, "chaos") as running:
            with injected("server.handle:once"):
                with pytest.raises(ServiceError) as excinfo:
                    running.client.ping()
                assert excinfo.value.kind == "engine"
                assert running.client.ping() is True  # still serving

    def test_protocol_errors_are_structured(self, tmp_path):
        with _RunningServer(tmp_path, "proto") as running:
            client = running.client
            cases = [
                {"op": "verify", "workload": "wc", "timeout": "abc"},
                {"op": "verify", "workload": "wc", "timeout": float("inf")},
                {"op": "verify", "workload": "wc", "timeout": -1},
                {"op": "verify", "workload": "wc", "input_bytes": 0},
                {"op": "verify", "workload": "wc", "input_bytes": True},
                {"op": "verify", "workload": "wc", "max_instructions": -5},
                {"op": "verify", "workload": "wc", "deadline": -2.0},
                {"op": "frobnicate"},
            ]
            for payload in cases:
                with pytest.raises(ServiceError) as excinfo:
                    client.request(payload)
                assert excinfo.value.kind == "protocol", payload
                assert excinfo.value.retryable is False
            # Raw garbage on the wire gets the same structured answer.
            import json
            import socket as socket_module
            with socket_module.socket(socket_module.AF_UNIX,
                                      socket_module.SOCK_STREAM) as sock:
                sock.settimeout(10.0)
                sock.connect(running.socket_path)
                sock.sendall(b"this is not json\n")
                reply = json.loads(sock.recv(65536))
            assert reply["ok"] is False
            assert reply["error_kind"] == "protocol"
            assert client.ping() is True
            assert client.stats()["jobs_failed"] >= len(cases) + 1

    def test_job_deadline_caps_the_engine_budget(self, tmp_path):
        with _RunningServer(tmp_path, "deadline") as running:
            result = running.client.verify(workload="wc", level="-O0",
                                           input_bytes=3, timeout=600.0,
                                           deadline=0.05)
            # Cooperative leg: the engine stopped itself at the deadline
            # (or finished under it); either way the response is bounded
            # and structured.
            assert result["ok"] is True
            if result["timed_out"]:
                assert result["termination_reason"] == "timeout"

    def test_store_save_fault_is_counted_not_fatal(self, tmp_path):
        store_path = tmp_path / "knowledge.jsonl"
        with _RunningServer(tmp_path, "saves",
                            store_path=store_path) as running:
            with injected("store.write:once"):
                result = running.client.verify(workload="wc", level="-O2",
                                               input_bytes=3)
                assert result["ok"] is True
            stats = running.client.stats()
            assert stats["saves_failed"] == 1
            assert stats["jobs_completed"] == 1
        # The shutdown save (fault budget spent) still persisted.
        assert store_path.exists()


# --------------------------------------------------------------- client retry


class TestClientRetry:
    def test_unavailable_is_retried_then_raised(self, tmp_path):
        client = ServiceClient(tmp_path / "nobody.sock", timeout=1.0,
                               retries=2, backoff=0.01)
        start = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.kind == "unavailable"
        assert time.monotonic() - start >= 0.01  # it did back off

    def test_protocol_errors_are_never_retried(self, tmp_path):
        with _RunningServer(tmp_path, "noretry") as running:
            client = ServiceClient(running.socket_path, timeout=30.0,
                                   retries=3, backoff=0.01)
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.request({"op": "frobnicate"})
            assert excinfo.value.kind == "protocol"
            assert time.monotonic() - start < 5.0


# ------------------------------------------------------------------ taxonomy


class TestTaxonomy:
    def test_kinds_are_stable_wire_identifiers(self):
        assert SolverError("x").kind == "solver"
        assert EngineError("x").kind == "engine"
        assert StoreError("x").kind == "store"
        assert WorkerCrash("x").kind == "worker-crash"
        assert ProtocolError("x").kind == "protocol"
        assert issubclass(SolverError, ReproError)

    def test_retryable_hints(self):
        assert StoreError("x").retryable
        assert WorkerCrash("x").retryable
        assert not ProtocolError("x").retryable
        assert not SolverError("x").retryable

    def test_site_travels_with_the_error(self):
        exc = StoreError("boom", site="store.write")
        assert exc.site == "store.write"
        assert StoreError("boom").site is None
