"""The parallel executor's contract: worker count must not change results.

Exhaustive exploration visits a schedule-independent path set whenever the
solver's answers are deterministic, so ``workers=4`` has to reproduce the
``workers=1`` run exactly — same bug signatures, same path counts, same
interpreted instructions, same Table 1 verification outcomes — across the
workloads and both frontier disciplines.  The remaining tests pin down the
machinery the differential relies on: the work-stealing frontier's
discipline and termination, the lock-striped shared solver caches, the COW
ownership invariants under forking, and the process-pool escape hatch's
trace replay.
"""

import threading

import pytest

from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.symex import (
    ExecutionState, ParallelExecutor, SharedSolverCaches, Solver,
    SolverConfig, SymexLimits, WorkStealingFrontier, binary, const, explore,
    explore_parallel, var,
)
from repro.symex.expr import ExprOp
from repro.verification import VerificationRequest, make_backend
from repro.workloads import get_workload

from conftest import compile_workload_module

LIMITS_KW = dict(timeout_seconds=120.0)

#: Workloads for the differential: the headline kernel, a branchier text
#: filter, and the two seeded-bug programs (several error paths each, so
#: signature dedup is exercised, not just path counting).
DIFFERENTIAL_WORKLOADS = ["wc", "uniq", "buggy_div", "buggy_index"]
DIFFERENTIAL_BYTES = 3


def _outcome_fingerprint(report):
    """Everything about a run that must be identical whatever the worker
    count: path counts by status, fresh instructions (replay overhead
    excluded), and the bug-signature set.  Timings, state ids, cache-hit
    counters and model-dependent test inputs are legitimately
    schedule-dependent and deliberately excluded."""
    stats = report.stats
    return {
        "paths_completed": stats.paths_completed,
        "paths_errored": stats.paths_errored,
        "paths_terminated": stats.paths_terminated,
        "total_paths": stats.total_paths,
        "instructions": stats.instructions_interpreted
        - stats.instructions_replayed,
        "branches": stats.branches_encountered,
        "forks": stats.forks,
        "states_created": stats.states_created,
        "bug_signatures": frozenset(report.bug_signatures()),
        "queries": report.solver_stats.queries,
        "timed_out": stats.timed_out,
    }


class TestWorkerCountDeterminism:
    @pytest.mark.parametrize("name", DIFFERENTIAL_WORKLOADS)
    @pytest.mark.parametrize("searcher", ["dfs", "bfs"])
    def test_workers_4_matches_workers_1(self, name, searcher):
        module = compile_workload_module(name)
        runs = {
            workers: explore_parallel(
                module, DIFFERENTIAL_BYTES, searcher=searcher,
                workers=workers, limits=SymexLimits(**LIMITS_KW))
            for workers in (1, 4)
        }
        assert _outcome_fingerprint(runs[1]) == _outcome_fingerprint(runs[4])

    def test_workers_1_matches_sequential_executor(self):
        module = compile_workload_module("wc")
        sequential = explore(module, DIFFERENTIAL_BYTES,
                             limits=SymexLimits(**LIMITS_KW))
        parallel = explore_parallel(module, DIFFERENTIAL_BYTES, workers=1,
                                    limits=SymexLimits(**LIMITS_KW))
        assert _outcome_fingerprint(sequential) == \
            _outcome_fingerprint(parallel)

    def test_merged_report_is_content_ordered(self):
        """Path records come back sorted by content and bug reports deduped
        by signature, so the report is reproducible across schedules."""
        module = compile_workload_module("buggy_div")
        report = explore_parallel(module, DIFFERENTIAL_BYTES, workers=4,
                                  limits=SymexLimits(**LIMITS_KW))
        keys = [(p.status.value, p.instructions, p.constraint_count)
                for p in report.paths]
        assert keys == sorted(keys)
        signatures = [bug.signature() for bug in report.bugs]
        assert len(signatures) == len(set(signatures))
        assert signatures == sorted(signatures)
        # Dedup may not lose any signature found on the error paths.
        assert set(signatures) == report.bug_signatures()

    def test_random_searcher_same_path_set(self):
        """The random discipline shapes order only: exhaustive exploration
        still visits exactly the same paths."""
        module = compile_workload_module("wc")
        baseline = explore_parallel(module, DIFFERENTIAL_BYTES, workers=1,
                                    limits=SymexLimits(**LIMITS_KW))
        randomized = explore_parallel(module, DIFFERENTIAL_BYTES,
                                      searcher="random", workers=4,
                                      limits=SymexLimits(**LIMITS_KW))
        assert _outcome_fingerprint(baseline) == \
            _outcome_fingerprint(randomized)


class TestRelcheckDeterminism:
    """Relcheck inherits the executor's contract: ``workers`` parallelizes
    the A exploration and the per-path replays but may not change a single
    verdict, counterexample, or counter."""

    @staticmethod
    def _fingerprint(report):
        return {
            "stats": report.stats.as_dict(),
            "verdicts": [(v.index, v.kind, v.status, v.detail,
                          v.counterexample) for v in report.verdicts],
            "divergences": [(d.kind, d.detail, d.counterexample)
                            for d in report.divergences],
            "truncated": report.truncated,
        }

    @pytest.mark.parametrize("name", ["wc", "buggy_div"])
    def test_workers_4_matches_workers_1(self, name):
        from repro.relcheck import RelcheckConfig, relcheck_workload

        runs = {
            workers: relcheck_workload(
                name, config=RelcheckConfig(input_bytes=DIFFERENTIAL_BYTES,
                                            workers=workers))
            for workers in (1, 4)
        }
        assert runs[1].clean and runs[4].clean
        assert self._fingerprint(runs[1]) == self._fingerprint(runs[4])

    def test_divergence_counterexamples_are_worker_independent(self):
        """The divergent case too: a planted miscompile must yield the
        same divergence kinds *and the same concrete counterexamples*
        whatever the worker count."""
        from repro.frontend import compile_to_ir
        from repro.pipelines import build_pipeline_from_text
        from repro.relcheck import RelcheckConfig, relcheck_modules

        source = """
        int main(unsigned char *input, int len) {
            int t = 100 / input[0];
            return 7;
        }
        """
        module_a = compile_to_ir(source)
        module_b = compile_to_ir(source)
        build_pipeline_from_text("mem2reg,dce<unsafe-traps>").run(module_b)
        runs = {
            workers: relcheck_modules(
                module_a, module_b, pair=("-O0", "-Obroken"),
                config=RelcheckConfig(input_bytes=1, workers=workers))
            for workers in (1, 4)
        }
        assert not runs[1].clean
        assert self._fingerprint(runs[1]) == self._fingerprint(runs[4])


class TestTable1Outcomes:
    def test_backend_outcomes_match_across_worker_counts(self):
        """The Table 1 ingredients (paths, instructions, errors, bug
        signatures) agree between ``symex`` and ``symex<workers=4>`` on an
        optimized and an unoptimized build."""
        for level in (OptLevel.O0, OptLevel.OVERIFY):
            compiled = compile_source(
                get_workload("buggy_index").source,
                CompileOptions(level=level))
            request = VerificationRequest(
                symbolic_input_bytes=DIFFERENTIAL_BYTES,
                timeout_seconds=120.0)
            single = make_backend("symex").verify(compiled.module, request)
            pooled = make_backend("symex<workers=4>").verify(
                compiled.module, request)
            assert pooled.paths == single.paths
            assert pooled.errors == single.errors
            assert pooled.bug_signatures == single.bug_signatures
            assert pooled.timed_out == single.timed_out
            # Thread workers replay nothing, so even the raw interpreted
            # instruction counts must agree.
            assert pooled.instructions == single.instructions


class TestWorkStealingFrontier:
    def _states(self, count):
        return [ExecutionState() for _ in range(count)]

    def test_dfs_pops_own_newest(self):
        frontier = WorkStealingFrontier(2, mode="dfs")
        a, b = self._states(2)
        frontier.add(a, 0)
        frontier.add(b, 0)
        assert frontier.pop(0) is b
        frontier.task_done(0)

    def test_bfs_pops_own_oldest(self):
        frontier = WorkStealingFrontier(2, mode="bfs")
        a, b = self._states(2)
        frontier.add(a, 0)
        frontier.add(b, 0)
        assert frontier.pop(0) is a
        frontier.task_done(0)

    def test_steal_takes_victims_oldest(self):
        frontier = WorkStealingFrontier(2, mode="dfs")
        a, b = self._states(2)
        frontier.add(a, 0)
        frontier.add(b, 0)
        # Worker 1 has nothing: it steals worker 0's oldest (the
        # shallowest fork, i.e. the largest unexplored subtree).
        assert frontier.pop(1) is a
        frontier.task_done(1)

    def test_pop_returns_none_when_empty_and_idle(self):
        frontier = WorkStealingFrontier(2)
        assert frontier.pop(0) is None

    def test_pop_blocks_until_active_worker_forks_or_finishes(self):
        frontier = WorkStealingFrontier(2)
        seed, child = self._states(2)
        frontier.add(seed, 0)
        assert frontier.pop(0) is seed
        results = []

        def second_worker():
            results.append(frontier.pop(1))
            if results[0] is not None:
                frontier.task_done(1)

        thread = threading.Thread(target=second_worker)
        thread.start()
        # Worker 0 is mid-state: worker 1 must wait, not terminate.
        thread.join(timeout=0.2)
        assert thread.is_alive()
        frontier.add(child, 0)  # worker 0 forks
        frontier.task_done(0)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [child]
        assert frontier.pop(0) is None

    def test_drain_empties_every_deque(self):
        frontier = WorkStealingFrontier(3)
        states = self._states(5)
        for index, state in enumerate(states):
            frontier.add(state, index % 3)
        assert set(frontier.drain()) == set(states)
        assert len(frontier) == 0
        assert frontier.pop(0) is None

    def test_high_water_tracks_peak_live_states(self):
        frontier = WorkStealingFrontier(1)
        states = self._states(3)
        for state in states:
            frontier.add(state, 0)
        assert frontier.high_water == 3


class TestSharedSolverCaches:
    def _query(self):
        # Not satisfied by the all-zeros assignment, so answering it
        # really takes a search (or a cache crossing), never the implicit
        # zero-model trial.
        x = var(8, "shared_x")
        return [binary(ExprOp.ULT, const(8, 5), x),
                binary(ExprOp.NE, x, const(8, 9))]

    def test_group_result_crosses_workers(self):
        shared = SharedSolverCaches(num_stripes=4)
        first = Solver(config=SolverConfig(), shared=shared)
        second = Solver(config=SolverConfig(), shared=shared)
        assert first.check(self._query()).satisfiable
        searches_before = second.stats.csp_searches
        assert second.check(self._query()).satisfiable
        # The second worker answered from the shared stripe: no search.
        assert second.stats.csp_searches == searches_before
        assert second.stats.cache_hits >= 1

    def test_same_group_same_stripe(self):
        shared = SharedSolverCaches(num_stripes=4)
        key = frozenset(self._query())
        assert shared.stripe_for(key) is shared.stripe_for(frozenset(
            self._query()))

    def test_concretization_model_is_cache_independent(self):
        """Address concretization feeds a model back into path structure,
        so its model must not depend on what other queries cached first
        — a differently warmed cache must hand back the same values."""
        x = var(8, "concrete_x")
        group = (binary(ExprOp.ULT, const(8, 3), x),)
        cold = Solver()
        baseline = cold.concretization_model((), [group])
        warm = Solver()
        # Warm the caches with a superset whose model (x=200) also
        # satisfies the group: the reuse layers would return it.
        superset = [binary(ExprOp.ULT, const(8, 3), x),
                    binary(ExprOp.ULT, const(8, 100), x)]
        assert warm.check(superset).satisfiable
        reused = warm.model_for_partition((), [tuple(superset)])
        assert reused is not None and reused["concrete_x"] > 100
        assert warm.concretization_model((), [group]) == baseline
        # And the memoized second call returns the same object's values.
        assert warm.concretization_model((), [group]) == baseline

    def test_private_solver_unaffected_by_shared(self):
        shared = SharedSolverCaches(num_stripes=2)
        warm = Solver(shared=shared)
        assert warm.check(self._query()).satisfiable
        cold = Solver()
        before = cold.stats.csp_searches
        assert cold.check(self._query()).satisfiable
        assert cold.stats.csp_searches == before + 1


class TestCowOwnershipInvariants:
    def test_fork_shares_until_first_write(self):
        parent = ExecutionState()
        frame_owner = compile_workload_module("wc")
        function = frame_owner.get_function("main")
        from repro.symex import StackFrame
        frame = StackFrame(function)
        frame.block = function.entry_block
        parent.push_frame(frame)
        parent.frame.bind(1, const(8, 1))
        parent.add_constraint(binary(ExprOp.ULT, var(8, "c"), const(8, 9)))
        child = parent.fork()
        # Shared structure, by reference.
        assert child.frame.values is parent.frame.values
        assert child.memory.bytes is parent.memory.bytes
        assert child._groups == parent._groups
        shared_values = parent.frame.values
        # A write on either side copies first and never mutates the shared
        # dict in place — the invariant that makes cross-thread stealing
        # safe without locks.
        parent.frame.bind(2, const(8, 2))
        assert parent.frame.values is not shared_values
        assert child.frame.values is shared_values
        assert 2 not in child.frame.values
        child.add_constraint(binary(ExprOp.ULT, var(8, "c"), const(8, 5)))
        assert len(parent.constraints) == 1

    def test_state_ids_unique_under_concurrent_forks(self):
        parent = ExecutionState()
        ids = []
        lock = threading.Lock()

        def fork_many():
            local = [ExecutionState().state_id for _ in range(200)]
            with lock:
                ids.extend(local)

        threads = [threading.Thread(target=fork_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ids) == len(set(ids))
        assert parent.state_id not in ids


class TestProcessEscapeHatch:
    @pytest.mark.parametrize("name,expect_farming", [
        ("wc", True),          # deep frontier: subtrees are farmed out
        ("buggy_div", False),  # bootstrap finishes it all by itself
    ])
    def test_process_pool_matches_sequential(self, name, expect_farming):
        module = compile_workload_module(name)
        sequential = explore(module, DIFFERENTIAL_BYTES,
                             limits=SymexLimits(**LIMITS_KW))
        pooled = explore_parallel(module, DIFFERENTIAL_BYTES, workers=2,
                                  use_processes=True,
                                  limits=SymexLimits(**LIMITS_KW))
        # The *path set* contract is exact.  Work counters (instructions,
        # branch encounters, solver queries) legitimately include the
        # replayed prefixes' overhead in process mode — the strict
        # work-equality claim belongs to the thread pool, which shares
        # states instead of reconstructing them.
        for key in ("paths_completed", "paths_errored", "paths_terminated",
                    "total_paths", "forks", "states_created",
                    "bug_signatures", "timed_out"):
            assert _outcome_fingerprint(sequential)[key] == \
                _outcome_fingerprint(pooled)[key], key
        assert (pooled.stats.instructions_replayed > 0) == expect_farming

    def test_trace_replay_reconstructs_subtrees(self):
        """Replaying every frontier trace sequentially covers exactly the
        unexplored paths (no duplicates, nothing lost)."""
        from repro.symex import SymbolicExecutor, SymexStats

        module = compile_workload_module("wc")
        full = explore(module, DIFFERENTIAL_BYTES,
                       limits=SymexLimits(**LIMITS_KW))
        boot = SymbolicExecutor(module, searcher="bfs",
                                limits=SymexLimits(**LIMITS_KW),
                                record_traces=True)
        from repro.symex import ExplorationBudget
        boot._budget = ExplorationBudget(boot.limits, [boot.stats])
        boot.searcher.add(boot.make_initial_state(DIFFERENTIAL_BYTES))
        while not boot.searcher.empty() and len(boot.searcher) < 6:
            boot._run_state(boot.searcher.pop())
        traces = []
        while not boot.searcher.empty():
            traces.append(boot.searcher.pop().trace)
        assert traces, "bootstrap should leave a frontier to farm out"
        worker = SymbolicExecutor(module, limits=SymexLimits(**LIMITS_KW),
                                  stats=SymexStats(states_created=0))
        subtree_report = worker.replay_run(DIFFERENTIAL_BYTES, traces)
        total_paths = boot.stats.total_paths + \
            subtree_report.stats.total_paths
        assert total_paths == full.stats.total_paths


class TestBackendWorkersSpec:
    def test_workers_spec_round_trip(self):
        backend = make_backend("symex<workers=4>")
        assert backend.describe() == "symex<workers=4>"
        assert make_backend("symex<workers=1>").describe() == "symex"

    def test_invalid_workers_rejected(self):
        from repro.verification import BackendSpecError
        with pytest.raises(BackendSpecError):
            make_backend("symex<workers=0>")
        with pytest.raises(BackendSpecError):
            make_backend("symex<workers=nope>")

    def test_parallel_flags_compose(self):
        backend = make_backend(
            "symex<workers=4,searcher=bfs,ubtree-capacity=128>")
        assert backend.workers == 4
        assert backend.searcher == "bfs"
        assert backend.solver_config.ubtree_capacity == 128
