"""Cross-level translation validation (``src/repro/relcheck/``).

Three layers of coverage:

1. **Positive sweep** — registry workloads at the paper's pair
   (-O0, -OVERIFY) and at (-O2, -O3) must relcheck with zero
   divergences.  The tier-1 default is a fast, trap-exercising subset;
   set ``RELCHECK_WORKLOADS=all`` (nightly CI) for the full registry, or
   ``RELCHECK_WORKLOADS=wc,cat`` for a specific list.
2. **Negative tests** — re-open the two fuzzer-found PR 9 miscompiles
   behind their test-only pass knobs (``dce<unsafe-traps>``,
   ``jump-threading<unsafe-phi>``) and assert relcheck catches each with
   a *replayable* counterexample: the concrete input must make the two
   modules visibly disagree under the concrete interpreter.
3. **Plumbing** — trap-deletion whitelist semantics, the
   ``SolverKnowledgeStore`` whole-run memo, and the
   ``CompilerSession.compile_and_validate`` surface.
"""

from __future__ import annotations

import os

import pytest

from repro.frontend import compile_to_ir
from repro.interp import run_module
from repro.pipelines import (
    CompileOptions, CompilerSession, OptLevel, build_pipeline_from_text,
    compile_source,
)
from repro.relcheck import (
    RelcheckConfig, relcheck_modules, relcheck_workload,
)
from repro.service.store import SolverKnowledgeStore
from repro.workloads import workload_names

# ------------------------------------------------------- positive sweep

PAIRS = [("O0", "OVERIFY"), ("O2", "O3")]

#: Fast subset exercising both verdict kinds: return-value paths (wc,
#: echo, yes, rev, cut) and trap-agreement paths (buggy_div,
#: buggy_index) at both pairs, each under a second.
_DEFAULT_SWEEP = ["wc", "buggy_div", "buggy_index", "echo", "true", "yes",
                  "rev", "cut"]

_SWEEP_CONFIG = RelcheckConfig(input_bytes=2, max_paths=64,
                               timeout_seconds=30.0,
                               query_deadline_seconds=1.0)


def _sweep_workloads():
    names = os.environ.get("RELCHECK_WORKLOADS", "")
    if names == "all":
        return workload_names()
    if names:
        return [name for name in names.split(",") if name]
    return _DEFAULT_SWEEP


@pytest.mark.parametrize("pair", PAIRS, ids=["O0vOVERIFY", "O2vO3"])
@pytest.mark.parametrize("name", _sweep_workloads())
def test_registry_workloads_equivalent(name, pair):
    """Every checked path of every swept workload must agree: no
    divergence verdicts at either level pair."""
    report = relcheck_workload(name, levels=pair, config=_SWEEP_CONFIG)
    assert report.clean, [d.describe() for d in report.divergences]
    assert report.stats.divergences == 0
    if os.environ.get("RELCHECK_WORKLOADS", "") == "":
        # The default subset is chosen to be exhaustively decidable: no
        # truncation, no unknowns, and at least one path positively
        # discharged (an all-unknown run would be a vacuous pass).
        # Expanded sweeps (nightly ``RELCHECK_WORKLOADS=all``) include
        # workloads whose heavier paths legitimately time out to
        # unknown; there only "zero divergences" is asserted.
        assert not report.truncated
        assert report.stats.unknown_paths == 0
        assert report.stats.phantom_paths == 0
        assert report.stats.paths_proved + report.stats.trap_agreements >= 1


# -------------------------------------------- negative: planted miscompiles

_TRAPPING_DIV = """
int main(unsigned char *input, int len) {
    int t = 100 / input[0];
    return 7;
}
"""


def _plant(source: str, pipeline_text: str):
    """Reference module (straight lowering) vs the module a broken
    pipeline produces."""
    module_a = compile_to_ir(source)
    module_b = compile_to_ir(source)
    build_pipeline_from_text(pipeline_text).run(module_b)
    return module_a, module_b


def test_unsafe_dce_trap_deletion_is_caught():
    """``dce<unsafe-traps>`` deletes the (otherwise-dead) trapping
    division — the PR 9 DCE miscompile.  Relcheck must report a
    trap-deleted divergence whose counterexample concretely traps the
    reference module but not the optimized one."""
    module_a, module_b = _plant(_TRAPPING_DIV, "mem2reg,dce<unsafe-traps>")
    report = relcheck_modules(module_a, module_b,
                              config=RelcheckConfig(input_bytes=1),
                              pair=("-O0", "-Obroken"))
    assert not report.clean
    kinds = {d.kind for d in report.divergences}
    assert "trap-deleted" in kinds
    witness = next(d.counterexample for d in report.divergences
                   if d.kind == "trap-deleted")
    assert witness is not None
    # The counterexample must *replay*: concrete semantics disagree.
    result_a = run_module(module_a, witness)
    result_b = run_module(module_b, witness)
    assert result_a.crashed
    assert "division by zero" in str(result_a.error)
    assert not result_b.crashed
    assert result_b.return_value == 7


def test_whitelisted_trap_deletion_is_counted_clean():
    """The same plant with ``division by zero`` whitelisted is licensed:
    no divergence, but the deletion is still counted, never silent."""
    module_a, module_b = _plant(_TRAPPING_DIV, "mem2reg,dce<unsafe-traps>")
    config = RelcheckConfig(input_bytes=1,
                            trap_whitelist=frozenset({"division by zero"}))
    report = relcheck_modules(module_a, module_b, config=config,
                              pair=("-O0", "-Obroken"))
    assert report.clean
    assert report.stats.whitelisted_trap_deletions == 1


_LOOP_SUM = """
int main(unsigned char *input, int len) {
    int total = 0;
    for (int i = 0; i < 2; i = i + 1) {
        total = total + input[i];
    }
    return total;
}
"""


def test_unsafe_jump_threading_is_caught():
    """``jump-threading<unsafe-phi>`` threads the loop entry past the
    header, orphaning the induction phi — the PR 9 jump-threading
    miscompile.  The optimized module is broken badly enough that its
    replay may die inside the engine rather than produce a comparable
    return value, so the assertion is on the contract the ISSUE cares
    about: a divergence verdict with a counterexample input on which the
    two modules *visibly* disagree when concretely executed."""
    module_a, module_b = _plant(
        _LOOP_SUM, "mem2reg,instcombine,dce,jump-threading<unsafe-phi>,"
        "simplifycfg")
    report = relcheck_modules(module_a, module_b,
                              config=RelcheckConfig(input_bytes=2),
                              pair=("-O0", "-Obroken"))
    assert not report.clean
    witnesses = [d.counterexample for d in report.divergences
                 if d.counterexample is not None]
    assert witnesses, [d.describe() for d in report.divergences]
    witness = witnesses[0]
    result_a = run_module(module_a, witness)
    result_b = run_module(module_b, witness)
    # Reference semantics: the byte sum.  The threaded module crashes.
    assert not result_a.crashed
    assert result_a.return_value == sum(witness) & 0xFFFFFFFF
    assert result_b.crashed


# ------------------------------------------------------------- plumbing

def test_store_memo_round_trip(tmp_path):
    """A second run over an unchanged pair must be answered from the
    store's whole-run memo — same verdicts, same counters, no solving."""
    path = tmp_path / "store.jsonl"
    config = RelcheckConfig(input_bytes=2)

    store = SolverKnowledgeStore(path)
    store.load()
    cold = relcheck_workload("wc", config=config, store=store)
    assert cold.provenance == "cold"
    assert cold.clean and not cold.truncated

    warm_store = SolverKnowledgeStore(path)
    assert warm_store.load()
    warm = relcheck_workload("wc", config=config, store=warm_store)
    assert warm.provenance == "memo-hit"
    assert warm.clean
    assert warm.stats.as_dict() == cold.stats.as_dict()
    assert ([(v.index, v.kind, v.status, v.counterexample)
             for v in warm.verdicts]
            == [(v.index, v.kind, v.status, v.counterexample)
                for v in cold.verdicts])


def test_compile_and_validate_surface():
    """The session-level surface compiles both levels (shared front end)
    and returns the per-level results plus the relcheck report."""
    from repro.workloads import get_workload

    session = CompilerSession()
    results, report = session.compile_and_validate(
        get_workload("buggy_div").source,
        relcheck_config=RelcheckConfig(input_bytes=2))
    assert set(results) == {OptLevel.O0, OptLevel.OVERIFY}
    assert report.clean
    assert report.pair == (str(OptLevel.O0), str(OptLevel.OVERIFY))
    assert report.stats.paths_proved + report.stats.trap_agreements >= 1
