"""Property tests for the UBTree (set-trie) counterexample index.

The solver's soundness rests on three containment properties:

* **subset soundness** — ``find_subset`` only ever reports sets that really
  are subsets of the query (an UNSAT subset proves the query UNSAT);
* **superset soundness** — ``find_superset`` only ever reports sets that
  contain every queried element, so a SAT superset's model can never
  violate a queried constraint;
* **lookup completeness** — after inserting a set, every subset query must
  find it via ``find_superset``, every superset query via ``find_subset``,
  and ``contains`` must round-trip under arbitrary element orderings.

The properties are checked on randomized constraint sets drawn from the
same expression shapes the symbolic executor produces.
"""

import random

import pytest

from repro.symex import ExprOp, UBTree, binary, const, not_expr, var

_COMPARISONS = [ExprOp.EQ, ExprOp.NE, ExprOp.ULT, ExprOp.ULE]


def _constraint_pool(rng, size=40):
    """Distinct comparison constraints over a handful of byte variables."""
    pool = set()
    names = ["a", "b", "c", "d"]
    while len(pool) < size:
        op = rng.choice(_COMPARISONS)
        lhs = var(8, rng.choice(names))
        if rng.random() < 0.4:
            lhs = binary(ExprOp.AND, lhs, const(8, rng.randrange(1, 256)))
        constraint = binary(op, lhs, const(8, rng.randrange(256)))
        if rng.random() < 0.2:
            constraint = not_expr(constraint)
        if constraint.is_constant:
            continue
        pool.add(constraint)
    return sorted(pool, key=lambda c: c.render())


def _random_subsets(rng, pool, count):
    return [frozenset(rng.sample(pool, rng.randrange(1, min(8, len(pool)))))
            for _ in range(count)]


class TestInsertLookupRoundTrip:
    def test_contains_is_order_independent(self):
        rng = random.Random(1)
        pool = _constraint_pool(rng)
        tree = UBTree()
        stored = _random_subsets(rng, pool, 60)
        for index, elements in enumerate(stored):
            shuffled = list(elements)
            rng.shuffle(shuffled)
            tree.insert(shuffled, index)
        for elements in stored:
            shuffled = list(elements)
            rng.shuffle(shuffled)
            assert tree.contains(shuffled)
        assert len(tree) == len(set(stored))

    def test_absent_sets_are_not_contained(self):
        rng = random.Random(2)
        pool = _constraint_pool(rng)
        tree = UBTree()
        stored = set(_random_subsets(rng, pool, 40))
        for index, elements in enumerate(stored):
            tree.insert(elements, index)
        for candidate in _random_subsets(rng, pool, 200):
            assert tree.contains(candidate) == (candidate in stored)

    def test_reinsert_replaces_payload(self):
        rng = random.Random(3)
        pool = _constraint_pool(rng)
        tree = UBTree()
        elements = pool[:3]
        tree.insert(elements, "first")
        tree.insert(list(reversed(elements)), "second")
        assert len(tree) == 1
        assert tree.find_superset(elements) == "second"


class TestSupersetLookup:
    def test_inserted_model_found_for_every_subset_of_its_constraints(self):
        """Inserting a model keyed by the constraint set it satisfies must
        make every subset query hit."""
        rng = random.Random(4)
        pool = _constraint_pool(rng)
        tree = UBTree()
        stored = frozenset(rng.sample(pool, 7))
        tree.insert(stored, {"a": 1})
        for _ in range(100):
            subset = frozenset(rng.sample(
                sorted(stored, key=lambda c: c.render()),
                rng.randrange(1, len(stored) + 1)))
            assert tree.find_superset(subset) == {"a": 1}

    def test_superset_lookup_never_violates_a_queried_constraint(self):
        """Whatever ``find_superset`` returns was stored with a set
        containing every queried constraint, so the attached model — which
        satisfies the stored set by construction — satisfies the query."""
        rng = random.Random(5)
        pool = _constraint_pool(rng)
        tree = UBTree()
        payloads = {}
        for index, elements in enumerate(_random_subsets(rng, pool, 80)):
            model = {name: rng.randrange(256) for name in "abcd"}
            if all(c.evaluate(model) == 1 for c in elements):
                tree.insert(elements, dict(model))
                payloads[index] = (elements, model)
        assert payloads, "generator never produced a satisfied set"
        hits = 0
        for query in _random_subsets(rng, pool, 400):
            model = tree.find_superset(query)
            if model is None:
                continue
            hits += 1
            assert all(c.evaluate(model) == 1 for c in query), \
                ([c.render() for c in query], model)
        assert hits > 0, "no superset lookup ever hit"

    def test_no_false_negatives_against_linear_scan(self):
        rng = random.Random(6)
        pool = _constraint_pool(rng)
        tree = UBTree()
        stored = _random_subsets(rng, pool, 60)
        for index, elements in enumerate(stored):
            tree.insert(elements, index)
        for query in _random_subsets(rng, pool, 300):
            expected = any(query <= candidate for candidate in stored)
            assert (tree.find_superset(query) is not None) == expected


class TestSubsetLookup:
    def test_found_payload_is_a_real_subset(self):
        rng = random.Random(7)
        pool = _constraint_pool(rng)
        tree = UBTree()
        stored = _random_subsets(rng, pool, 60)
        for elements in stored:
            tree.insert(elements, elements)
        for query in _random_subsets(rng, pool, 300):
            found = tree.find_subset(query)
            if found is not None:
                assert found <= query
            else:
                assert not any(candidate <= query for candidate in stored)

    def test_iter_subsets_enumerates_exactly_the_stored_subsets(self):
        rng = random.Random(8)
        pool = _constraint_pool(rng)
        tree = UBTree()
        stored = set(_random_subsets(rng, pool, 50))
        for elements in stored:
            tree.insert(elements, elements)
        for query in _random_subsets(rng, pool, 120):
            found = set(map(frozenset, tree.iter_subsets(query)))
            expected = {candidate for candidate in stored
                        if candidate <= query}
            assert found == expected

    def test_unknown_elements_do_not_block_subset_search(self):
        rng = random.Random(9)
        pool = _constraint_pool(rng, size=12)
        tree = UBTree()
        tree.insert(pool[:2], "hit")
        never_inserted = binary(ExprOp.ULT, var(8, "zz"), const(8, 7))
        assert tree.find_subset(pool[:2] + [never_inserted]) == "hit"
        # ...but a superset lookup over an unknown element must miss.
        assert tree.find_superset([never_inserted]) is None


class TestBoundedCapacity:
    """The size cap (ROADMAP follow-on): long runs must not grow the
    set-tries without bound, and eviction may only ever cost a future
    re-solve, never an answer."""

    def _sets(self, count, size=3):
        rng = random.Random(31)
        pool = _constraint_pool(rng, size=count * size)
        return [frozenset(pool[i * size:(i + 1) * size])
                for i in range(count)]

    def test_capacity_bounds_stored_sets(self):
        tree = UBTree(capacity=8)
        for index, elements in enumerate(self._sets(50)):
            tree.insert(elements, index)
            assert len(tree) <= 8
        assert tree.evictions == 50 - 8

    def test_oldest_unhit_set_is_evicted_first(self):
        tree = UBTree(capacity=2)
        first, second, third = self._sets(3)
        tree.insert(first, "first")
        tree.insert(second, "second")
        tree.insert(third, "third")
        assert tree.contains(second) and tree.contains(third)
        assert not tree.contains(first)
        assert tree.find_subset(first) is None

    def test_containment_hit_refreshes_recency(self):
        tree = UBTree(capacity=2)
        first, second, third = self._sets(3)
        tree.insert(first, "first")
        tree.insert(second, "second")
        # A decisive hit on `first` makes `second` the eviction victim.
        assert tree.find_superset(first) == "first"
        tree.insert(third, "third")
        assert tree.contains(first) and tree.contains(third)
        assert not tree.contains(second)

    def test_evicted_sets_never_poison_lookups(self):
        rng = random.Random(33)
        pool = _constraint_pool(rng)
        tree = UBTree(capacity=6)
        live = {}
        for index, elements in enumerate(_random_subsets(rng, pool, 80)):
            tree.insert(elements, elements)
            live[elements] = index
        for query in _random_subsets(rng, pool, 200):
            found = tree.find_subset(query)
            if found is not None:
                assert found <= query
            found_super = tree.find_superset(query)
            if found_super is not None:
                assert query <= found_super

    def test_unbounded_by_default(self):
        tree = UBTree()
        for elements in self._sets(40):
            tree.insert(elements, True)
        assert len(tree) == 40
        assert tree.evictions == 0

    def test_reinsert_refreshes_instead_of_duplicating(self):
        tree = UBTree(capacity=2)
        first, second, third = self._sets(3)
        tree.insert(first, "a")
        tree.insert(second, "b")
        tree.insert(first, "a2")  # refresh: first becomes most recent
        tree.insert(third, "c")
        assert tree.contains(first)
        assert not tree.contains(second)
        assert tree.find_superset(first) == "a2"

    def test_solver_honors_capacity_flag(self):
        from repro.symex import Solver, SolverConfig, binary, const, var
        from repro.symex.expr import ExprOp as Op
        solver = Solver(config=SolverConfig(ubtree_capacity=4))
        for value in range(20):
            name = var(8, f"cap_{value}")
            assert solver.check(
                [binary(Op.ULT, const(8, 1), name),
                 binary(Op.NE, name, const(8, value))]).satisfiable
        for stripe in solver._shared.stripes:
            assert len(stripe.sat_index) <= 4
            assert len(stripe.unsat_index) <= 4
