"""Unit tests for the IR core: types, values, use lists, builder, printer,
and the structural verifier."""

import pytest

from repro.ir import (
    ArrayType, BasicBlock, BinaryInst, BranchInst, ConstantArray, ConstantInt,
    Function, FunctionType, GEPInst, ICmpPredicate, IRBuilder, IntType,
    Module, Opcode, PhiInst, PointerType, ReturnInst, StructType, UndefValue,
    VerificationError, VoidType, I1, I8, I32, I64, VOID, eval_binary,
    eval_icmp, int_type, pointer_to, print_function, print_instruction,
    print_module, verify_module,
)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------
class TestTypes:
    def test_integer_widths_and_sizes(self):
        assert I8.width == 8
        assert I8.size_in_bytes() == 1
        assert I32.size_in_bytes() == 4
        assert I64.size_in_bytes() == 8
        assert IntType(20).size_in_bytes() == 3

    def test_integer_masks_and_bounds(self):
        assert I8.mask == 0xFF
        assert I8.sign_bit == 0x80
        assert I8.min_signed == -128
        assert I8.max_signed == 127
        assert I8.max_unsigned == 255

    def test_invalid_integer_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(1000)

    def test_int_type_returns_canonical_singletons(self):
        assert int_type(8) is I8
        assert int_type(32) is I32
        assert int_type(1) is I1

    def test_structural_equality(self):
        assert IntType(32) == I32
        assert PointerType(I8) == PointerType(I8)
        assert PointerType(I8) != PointerType(I32)
        assert ArrayType(I8, 4) == ArrayType(I8, 4)

    def test_pointer_properties(self):
        ptr = pointer_to(I32)
        assert ptr.is_pointer
        assert ptr.pointee == I32
        assert ptr.size_in_bytes() == 8
        assert str(ptr) == "i32*"

    def test_array_type(self):
        array = ArrayType(I32, 10)
        assert array.size_in_bytes() == 40
        assert array.is_aggregate
        assert str(array) == "[10 x i32]"
        with pytest.raises(ValueError):
            ArrayType(I8, -1)

    def test_struct_layout(self):
        struct = StructType("pair", (I32, I8, I64), ("a", "b", "c"))
        assert struct.size_in_bytes() == 13
        assert struct.field_offset(0) == 0
        assert struct.field_offset(1) == 4
        assert struct.field_offset(2) == 5
        assert struct.field_index("c") == 2
        with pytest.raises(KeyError):
            struct.field_index("missing")
        with pytest.raises(IndexError):
            struct.field_offset(7)

    def test_function_type(self):
        fty = FunctionType(I32, (I32, PointerType(I8)))
        assert fty.is_function
        assert not fty.is_first_class
        assert "i32" in str(fty)

    def test_void_properties(self):
        assert VOID.is_void
        assert not VOID.is_first_class
        assert not I32.is_void
        assert I32.is_first_class


# ---------------------------------------------------------------------------
# Constants and use lists
# ---------------------------------------------------------------------------
class TestValues:
    def test_constant_int_wraps_to_width(self):
        c = ConstantInt(I8, 300)
        assert c.value == 44
        assert ConstantInt(I8, -1).value == 255
        assert ConstantInt(I8, -1).is_all_ones

    def test_constant_int_signed_view(self):
        assert ConstantInt(I8, 255).signed_value == -1
        assert ConstantInt(I8, 127).signed_value == 127
        assert ConstantInt(I32, 2**31).signed_value == -(2**31)

    def test_constant_flags(self):
        assert ConstantInt(I32, 0).is_zero
        assert ConstantInt(I32, 1).is_one
        assert not ConstantInt(I32, 2).is_one

    def test_constant_array_from_string(self):
        arr = ConstantArray.from_string("hi")
        assert arr.as_bytes() == b"hi\x00"
        assert arr.type == ArrayType(I8, 3)

    def test_use_lists_and_rauw(self):
        a = ConstantInt(I32, 1)
        b = ConstantInt(I32, 2)
        add = BinaryInst(Opcode.ADD, a, b)
        assert a.num_uses == 1
        assert add.operands == [a, b]
        c = ConstantInt(I32, 3)
        a.replace_all_uses_with(c)
        assert add.operands[0] is c
        assert a.num_uses == 0
        assert c.num_uses == 1

    def test_drop_all_references(self):
        a = ConstantInt(I32, 1)
        add = BinaryInst(Opcode.ADD, a, a)
        assert a.num_uses == 2
        add.drop_all_references()
        assert a.num_uses == 0

    def test_users_deduplicated(self):
        a = ConstantInt(I32, 1)
        add = BinaryInst(Opcode.ADD, a, a)
        assert add in a.users()
        assert len(a.users()) == 1


# ---------------------------------------------------------------------------
# eval helpers (shared constant-folding semantics)
# ---------------------------------------------------------------------------
class TestEvalHelpers:
    @pytest.mark.parametrize("opcode,lhs,rhs,expected", [
        (Opcode.ADD, 200, 100, 44),        # i8 wraparound
        (Opcode.SUB, 5, 10, 251),
        (Opcode.MUL, 16, 16, 0),
        (Opcode.AND, 0b1100, 0b1010, 0b1000),
        (Opcode.OR, 0b1100, 0b1010, 0b1110),
        (Opcode.XOR, 0b1100, 0b1010, 0b0110),
        (Opcode.SHL, 1, 3, 8),
        (Opcode.LSHR, 0x80, 7, 1),
        (Opcode.ASHR, 0x80, 7, 0xFF),      # sign extension
        (Opcode.UDIV, 100, 7, 14),
        (Opcode.UREM, 100, 7, 2),
    ])
    def test_eval_binary_i8(self, opcode, lhs, rhs, expected):
        assert eval_binary(opcode, I8, lhs, rhs) == expected

    def test_eval_binary_signed_division(self):
        # -7 / 2 truncates toward zero = -3.
        assert eval_binary(Opcode.SDIV, I8, 256 - 7, 2) == (256 - 3)
        # -7 % 2 = -1.
        assert eval_binary(Opcode.SREM, I8, 256 - 7, 2) == 255

    def test_eval_binary_division_by_zero_is_none(self):
        assert eval_binary(Opcode.UDIV, I32, 1, 0) is None
        assert eval_binary(Opcode.SREM, I32, 1, 0) is None

    @pytest.mark.parametrize("pred,lhs,rhs,expected", [
        (ICmpPredicate.EQ, 5, 5, True),
        (ICmpPredicate.NE, 5, 5, False),
        (ICmpPredicate.ULT, 1, 255, True),
        (ICmpPredicate.SLT, 1, 255, False),   # 255 is -1 signed
        (ICmpPredicate.SGT, 1, 255, True),
        (ICmpPredicate.UGE, 255, 255, True),
        (ICmpPredicate.SLE, 128, 127, True),  # -128 <= 127
    ])
    def test_eval_icmp_i8(self, pred, lhs, rhs, expected):
        assert eval_icmp(pred, I8, lhs, rhs) is expected

    def test_predicate_inverse_and_swap(self):
        for pred in ICmpPredicate:
            assert pred.inverse().inverse() is pred
            assert pred.swapped().swapped() is pred
        assert ICmpPredicate.SLT.inverse() is ICmpPredicate.SGE
        assert ICmpPredicate.SLT.swapped() is ICmpPredicate.SGT


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------
def _new_function(name="f", ret=I32, params=()):
    module = Module("test")
    function = module.create_function(name, FunctionType(ret, tuple(params)))
    block = BasicBlock("entry")
    function.append_block(block)
    builder = IRBuilder()
    builder.set_insert_point(block)
    return module, function, builder


class TestBuilder:
    def test_constant_folding_on_add(self):
        _, _, builder = _new_function()
        result = builder.add(ConstantInt(I32, 2), ConstantInt(I32, 3))
        assert isinstance(result, ConstantInt)
        assert result.value == 5

    def test_no_fold_with_non_constant(self):
        _, function, builder = _new_function(params=[I32])
        arg = function.arguments[0]
        result = builder.add(arg, ConstantInt(I32, 3))
        assert isinstance(result, BinaryInst)
        assert result.parent is function.entry_block

    def test_icmp_folding(self):
        _, _, builder = _new_function()
        result = builder.icmp_eq(ConstantInt(I32, 1), ConstantInt(I32, 1))
        assert isinstance(result, ConstantInt)
        assert result.value == 1

    def test_select_with_constant_condition(self):
        _, _, builder = _new_function()
        a, b = ConstantInt(I32, 10), ConstantInt(I32, 20)
        assert builder.select(builder.true(), a, b) is a
        assert builder.select(builder.false(), a, b) is b

    def test_casts_fold_constants(self):
        _, _, builder = _new_function()
        assert builder.zext(ConstantInt(I8, 200), I32).value == 200
        assert builder.sext(ConstantInt(I8, 200), I32).value == \
            (200 - 256) & 0xFFFFFFFF
        assert builder.trunc(ConstantInt(I32, 0x1FF), I8).value == 0xFF

    def test_int_cast_picks_direction(self):
        _, function, builder = _new_function(params=[I8])
        arg = function.arguments[0]
        widened = builder.int_cast(arg, I32, signed=False)
        assert widened.opcode is Opcode.ZEXT
        widened_signed = builder.int_cast(arg, I32, signed=True)
        assert widened_signed.opcode is Opcode.SEXT
        assert builder.int_cast(arg, I8, signed=True) is arg

    def test_terminators_and_memory(self):
        module, function, builder = _new_function()
        slot = builder.alloca(I32, name="x")
        builder.store(ConstantInt(I32, 7), slot)
        loaded = builder.load(slot)
        builder.ret(loaded)
        verify_module(module)
        assert function.entry_block.terminator is not None
        assert function.instruction_count() == 4

    def test_builder_names_values_uniquely(self):
        _, function, builder = _new_function(params=[I32])
        arg = function.arguments[0]
        v1 = builder.add(arg, ConstantInt(I32, 1))
        v2 = builder.add(arg, ConstantInt(I32, 2))
        assert v1.name and v2.name and v1.name != v2.name

    def test_phi_and_cond_br(self):
        module, function, builder = _new_function(params=[I32])
        arg = function.arguments[0]
        then_block = BasicBlock("then")
        else_block = BasicBlock("else")
        join = BasicBlock("join")
        for block in (then_block, else_block, join):
            function.append_block(block)
        cond = builder.icmp_ne(arg, ConstantInt(I32, 0))
        builder.cond_br(cond, then_block, else_block)
        builder.set_insert_point(then_block)
        builder.br(join)
        builder.set_insert_point(else_block)
        builder.br(join)
        builder.set_insert_point(join)
        phi = builder.phi(I32, "merged")
        phi.add_incoming(ConstantInt(I32, 1), then_block)
        phi.add_incoming(ConstantInt(I32, 2), else_block)
        builder.ret(phi)
        verify_module(module)
        assert phi.incoming_value_for(then_block).value == 1
        assert set(b.name for b in function.entry_block.successors()) == \
            {"then", "else"}
        assert join.predecessors() == [then_block, else_block]


# ---------------------------------------------------------------------------
# Printer
# ---------------------------------------------------------------------------
class TestPrinter:
    def test_print_module_contains_functions_and_globals(self):
        module = Module("m")
        module.add_global("g", I32, ConstantInt(I32, 5))
        function = module.create_function("f", FunctionType(I32, (I32,)),
                                          ["x"])
        block = function.append_block(BasicBlock("entry"))
        builder = IRBuilder()
        builder.set_insert_point(block)
        builder.ret(builder.add(function.arguments[0], ConstantInt(I32, 1)))
        text = print_module(module)
        assert "@g = global i32 5" in text
        assert "define i32 @f(i32 %x)" in text
        assert "ret i32" in text

    def test_print_declaration(self):
        module = Module("m")
        module.create_function("ext", FunctionType(VOID, ()))
        assert "declare void @ext()" in print_module(module)

    def test_print_instruction_metadata(self):
        a = ConstantInt(I32, 1)
        inst = BinaryInst(Opcode.ADD, a, a, "x")
        inst.metadata["range"] = (0, 2)
        text = print_instruction(inst)
        assert "%x = add i32 1, 1" in text
        assert "range" in text

    def test_print_gep_and_branch(self):
        module, function, builder = _new_function(params=[PointerType(I8)])
        ptr = function.arguments[0]
        gep = builder.gep(ptr, [ConstantInt(I64, 3)], I8)
        builder.ret(ConstantInt(I32, 0))
        text = print_function(function)
        assert "getelementptr" in text


# ---------------------------------------------------------------------------
# Verifier
# ---------------------------------------------------------------------------
class TestVerifier:
    def test_accepts_valid_function(self):
        module, _, builder = _new_function()
        builder.ret(ConstantInt(I32, 0))
        verify_module(module)  # must not raise

    def test_rejects_missing_terminator(self):
        module, function, builder = _new_function()
        builder.add(ConstantInt(I32, 1), ConstantInt(I32, 2))
        # No terminator in the entry block.
        with pytest.raises(VerificationError, match="no terminator"):
            verify_module(module)

    def test_rejects_return_type_mismatch(self):
        module, function, builder = _new_function(ret=I32)
        builder.ret(ConstantInt(I8, 0))
        with pytest.raises(VerificationError, match="ret type"):
            verify_module(module)

    def test_rejects_bad_store_type(self):
        module, _, builder = _new_function()
        slot = builder.alloca(I32)
        # Store an i8 through an i32*.
        from repro.ir import StoreInst
        bad = StoreInst(ConstantInt(I8, 1), slot)
        builder.block.insert_before(builder.block.instructions[-1], bad) \
            if builder.block.instructions else builder.block.append_instruction(bad)
        builder.ret(ConstantInt(I32, 0))
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_rejects_branch_condition_not_i1(self):
        module, function, builder = _new_function()
        other = BasicBlock("other")
        function.append_block(other)
        builder.cond_br(ConstantInt(I32, 1), other, other)
        builder.set_insert_point(other)
        builder.ret(ConstantInt(I32, 0))
        with pytest.raises(VerificationError, match="not i1"):
            verify_module(module)

    def test_rejects_phi_with_wrong_predecessors(self):
        module, function, builder = _new_function()
        join = BasicBlock("join")
        function.append_block(join)
        builder.br(join)
        builder.set_insert_point(join)
        phi = builder.phi(I32)
        stray = BasicBlock("stray")
        phi.add_incoming(ConstantInt(I32, 1), stray)
        builder.ret(phi)
        with pytest.raises(VerificationError, match="phi"):
            verify_module(module)

    def test_rejects_call_arity_mismatch(self):
        module = Module("m")
        callee = module.create_function("callee", FunctionType(I32, (I32,)))
        caller = module.create_function("caller", FunctionType(I32, ()))
        block = caller.append_block(BasicBlock("entry"))
        builder = IRBuilder()
        builder.set_insert_point(block)
        result = builder.call(callee, [])
        builder.ret(ConstantInt(I32, 0))
        with pytest.raises(VerificationError, match="args"):
            verify_module(module)


# ---------------------------------------------------------------------------
# Module-level containers
# ---------------------------------------------------------------------------
class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.create_function("f", FunctionType(VOID, ()))
        with pytest.raises(ValueError):
            module.create_function("f", FunctionType(VOID, ()))

    def test_duplicate_global_rejected(self):
        module = Module("m")
        module.add_global("g", I32)
        with pytest.raises(ValueError):
            module.add_global("g", I32)

    def test_unique_global_name(self):
        module = Module("m")
        module.add_global("g", I32)
        assert module.unique_global_name("g") == "g.1"
        assert module.unique_global_name("h") == "h"

    def test_defined_vs_declared(self):
        module = Module("m")
        declared = module.create_function("d", FunctionType(VOID, ()))
        defined = module.create_function("f", FunctionType(VOID, ()))
        defined.append_block(BasicBlock("entry"))
        assert declared in module.declared_functions()
        assert defined in module.defined_functions()

    def test_instruction_and_block_counts(self):
        module, function, builder = _new_function()
        builder.ret(ConstantInt(I32, 0))
        assert module.instruction_count() == 1
        assert module.block_count() == 1

    def test_get_function_errors(self):
        module = Module("m")
        with pytest.raises(KeyError):
            module.get_function("missing")
        assert module.get_function_or_none("missing") is None
