"""Tests for the pass registry and the textual pipeline syntax."""

import pytest

from repro.passes import (
    PassSpec, PipelineSpec, PipelineSyntaxError, build_passes, format_pipeline,
    make_pass_spec, parse_pipeline, pass_info, pass_names,
)
from repro.pipelines import (
    LEVEL_PIPELINES, OptLevel, build_pipeline, level_spec, level_spec_string,
    parse_opt_level, with_entry_points, with_runtime_checks,
)


class TestParseFormatRoundTrip:
    @pytest.mark.parametrize("level", list(OptLevel))
    def test_level_specs_round_trip(self, level):
        spec = level_spec(level)
        assert parse_pipeline(format_pipeline(spec)) == spec

    @pytest.mark.parametrize("level", list(OptLevel))
    def test_level_strings_are_canonical(self, level):
        text = level_spec_string(level)
        assert format_pipeline(parse_pipeline(text)) == text

    def test_round_trip_with_non_default_params(self):
        text = ("simplifycfg,inline<threshold=7,loops,const-bonus=3>,"
                "ifconvert<spec=9,no-safe-loads>,"
                "loop-unswitch<size=11,max=2>,globaldce<roots=a:b>")
        spec = parse_pipeline(text)
        assert format_pipeline(spec) == text
        assert parse_pipeline(format_pipeline(spec)) == spec

    def test_default_params_are_normalized_away(self):
        # threshold=100 and safe-loads are the defaults: canonical form
        # drops them, so equal pipelines compare equal as specs.
        assert parse_pipeline("inline<threshold=100>") == \
            parse_pipeline("inline")
        assert parse_pipeline("ifconvert<safe-loads>") == \
            parse_pipeline("ifconvert")

    def test_parameter_order_does_not_matter(self):
        assert parse_pipeline("inline<loops,threshold=5>") == \
            parse_pipeline("inline<threshold=5,loops>")

    def test_whitespace_is_tolerated(self):
        assert parse_pipeline(" simplifycfg , mem2reg ") == \
            parse_pipeline("simplifycfg,mem2reg")

    def test_empty_pipeline(self):
        assert parse_pipeline("") == PipelineSpec()
        assert format_pipeline(PipelineSpec()) == ""


class TestErrors:
    def test_unknown_pass_names_the_candidates(self):
        with pytest.raises(PipelineSyntaxError, match="unknown pass 'sroa2'"):
            parse_pipeline("simplifycfg,sroa2")
        with pytest.raises(PipelineSyntaxError, match="simplifycfg"):
            # the error lists the known passes
            parse_pipeline("bogus")

    def test_unknown_parameter_lists_known_keys(self):
        with pytest.raises(PipelineSyntaxError,
                           match=r"no parameter 'thresh'.*threshold"):
            parse_pipeline("inline<thresh=1>")

    def test_non_integer_value(self):
        with pytest.raises(PipelineSyntaxError,
                           match="expects an integer, got 'many'"):
            parse_pipeline("inline<threshold=many>")

    def test_flag_used_with_bare_value_pass(self):
        with pytest.raises(PipelineSyntaxError, match="needs a value"):
            parse_pipeline("inline<threshold>")

    def test_duplicate_parameter(self):
        with pytest.raises(PipelineSyntaxError, match="duplicate parameter"):
            parse_pipeline("inline<threshold=1,threshold=2>")

    def test_unbalanced_brackets(self):
        with pytest.raises(PipelineSyntaxError, match="unbalanced"):
            parse_pipeline("inline<threshold=1")

    def test_empty_name_list(self):
        with pytest.raises(PipelineSyntaxError, match="non-empty name"):
            parse_pipeline("globaldce<roots=>")


class TestRegistry:
    def test_every_level_pass_is_registered(self):
        known = set(pass_names())
        for level in OptLevel:
            for name in level_spec(level).pass_names():
                assert name in known

    def test_build_matches_textual_spec(self):
        spec = parse_pipeline("inline<threshold=5000,loops,const-bonus=100>")
        (inliner,) = build_passes(spec)
        assert inliner.params.threshold == 5000
        assert inliner.params.allow_loops is True
        assert inliner.params.constant_arg_bonus == 100

    def test_globaldce_roots_build(self):
        spec = parse_pipeline("globaldce<roots=main:wc_entry>")
        (gdce,) = build_passes(spec)
        assert gdce.roots == {"main", "wc_entry"}

    def test_make_pass_spec_normalizes(self):
        spec = make_pass_spec("ifconvert", spec=64, safe_loads=True)
        assert spec == parse_pipeline("ifconvert<spec=64>").passes[0]

    def test_with_param_round_trips_through_default(self):
        spec = make_pass_spec("inline", threshold=9)
        assert spec.with_param("threshold", 100) == PassSpec("inline")

    def test_pass_info_exposes_description(self):
        assert pass_info("mem2reg").description


class TestLevelsAsData:
    @pytest.mark.parametrize("level", list(OptLevel))
    def test_build_pipeline_matches_parsed_spec(self, level):
        # The acceptance criterion: the built pipeline and the parsed
        # textual spec name identical pass sequences.
        built = [p.name for p in build_pipeline(level).passes]
        parsed = parse_pipeline(level_spec_string(level)).pass_names()
        assert built == parsed

    def test_every_level_has_a_pipeline_string(self):
        assert set(LEVEL_PIPELINES) == set(OptLevel)

    def test_entry_points_transform(self):
        spec = with_entry_points(level_spec(OptLevel.O2), {"main", "aux"})
        (gdce,) = [p for p in spec if p.name == "globaldce"]
        assert gdce.param("roots") == ("aux", "main")
        # and the built pass agrees
        pipeline = build_pipeline(OptLevel.O2, entry_points={"main", "aux"})
        (gdce_pass,) = [p for p in pipeline.passes if p.name == "globaldce"]
        assert gdce_pass.roots == {"aux", "main"}

    def test_runtime_checks_transform(self):
        spec = level_spec(OptLevel.OVERIFY)
        assert "runtime-checks" in spec.pass_names()
        without = with_runtime_checks(spec, False)
        names = without.pass_names()
        assert "runtime-checks" not in names
        # the cleanup simplifycfg that followed the checks went with it,
        # but the trailing annotate stage stays
        assert names[-1] == "annotate"
        assert len(names) == len(spec.pass_names()) - 2
        assert with_runtime_checks(spec, True) == spec

    def test_parse_opt_level_spellings(self):
        assert parse_opt_level("-O2") is OptLevel.O2
        assert parse_opt_level("O2") is OptLevel.O2
        assert parse_opt_level("overify") is OptLevel.OVERIFY
        with pytest.raises(ValueError, match="unknown optimization level"):
            parse_opt_level("-O9")
