"""Tests for the experiment harness: the drivers that regenerate the paper's
tables and figures (run on scaled-down configurations so they stay fast)."""

import pytest

from repro.harness import (
    ExperimentConfig, Figure4, Table1, Table3, format_bar_chart, format_table,
    reproduce_figure4, reproduce_table1, reproduce_table2, reproduce_table3,
    render_table2, run_experiment,
)
from repro.pipelines import OptLevel
from repro.workloads import get_workload


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "30" in text and "bb" in text

    def test_format_bar_chart(self):
        text = format_bar_chart(["x", "yy"], [1.0, 2.0], width=10)
        assert "#" in text
        assert "yy" in text


class TestExperimentRunner:
    def test_run_experiment_produces_all_measurements(self):
        workload = get_workload("echo")
        config = ExperimentConfig(level=OptLevel.O2, symbolic_input_bytes=2,
                                  timeout_seconds=30)
        result = run_experiment("echo", workload.source, config)
        assert result.paths >= 1
        assert result.compile_seconds > 0
        assert result.verify_seconds > 0
        assert result.interpreted_instructions > 0
        assert not result.timed_out

    def test_timeout_is_reported(self):
        workload = get_workload("od")
        config = ExperimentConfig(level=OptLevel.O0, symbolic_input_bytes=6,
                                  timeout_seconds=0.05,
                                  max_instructions=2_000)
        result = run_experiment("od", workload.source, config)
        assert result.timed_out


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return reproduce_table1(symbolic_input_bytes=3, timeout_seconds=90)

    def test_has_all_levels_and_renders(self, table):
        assert set(table.results) == {OptLevel.O0, OptLevel.O2, OptLevel.O3,
                                      OptLevel.OVERIFY}
        text = table.render()
        assert "t_verify" in text and "# paths" in text

    def test_paper_shape_paths(self, table):
        paths = {level: table.results[level].paths for level in table.results}
        # Since the path-count PR the shape is strictly monotone: -O2's
        # scalar stack (SCCP, load elimination, algebraic simplification)
        # plus modest select formation beats -O0, and -OVERIFY still beats
        # everything by a wide margin.
        assert paths[OptLevel.O2] < paths[OptLevel.O0]
        assert paths[OptLevel.O3] <= paths[OptLevel.O2]
        assert paths[OptLevel.OVERIFY] * 3 <= paths[OptLevel.O3]
        assert paths[OptLevel.OVERIFY] * 5 <= paths[OptLevel.O0]

    def test_paper_shape_times(self, table):
        assert table.verify_speedup_over(OptLevel.O0) > 5
        assert table.verify_speedup_over(OptLevel.O3) > 1
        # Compilation gets slower as the pipeline gets more aggressive.
        assert table.results[OptLevel.OVERIFY].compile_seconds >= \
            table.results[OptLevel.O0].compile_seconds

    def test_solver_v2_counters_reach_the_table(self, table):
        """The Solver-v2 counters flow through ``SolverStats.as_dict`` into
        the rendered rows, and the wc workload actually drives the UBTree
        index and the equality rewriter (branch-and-prune stays idle: wc
        has no wide symbolic variables, so its row must render as zero)."""
        text = table.render()
        for label in ("# ubtree hits", "# equality rewrites",
                      "# prune splits"):
            assert label in text
        total = {key: sum(int(result.solver_stats.get(key, 0))
                          for result in table.results.values())
                 for key in ("ubtree_hits", "equality_rewrites",
                             "prune_splits")}
        assert total["ubtree_hits"] > 0
        # Branch-free classification (front-end flattening plus range
        # merging) removed the var==const path constraints the equality
        # rewriter used to consume on wc; its counter must render but now
        # legitimately reads zero, like the idle branch-and-prune row.
        assert total["equality_rewrites"] == 0
        assert total["prune_splits"] == 0


class TestTable3:
    @pytest.fixture(scope="class")
    def table(self):
        names = ["wc", "cat", "grep", "uniq", "tr", "seq", "basename", "cut"]
        return reproduce_table3(workload_names=names)

    def test_counts_are_monotonic(self, table):
        assert table.monotonic_in_aggressiveness()

    def test_o0_performs_no_transformations(self, table):
        assert all(v == 0 for v in table.totals[OptLevel.O0].values())

    def test_overify_converts_more_branches_than_o3(self, table):
        assert table.totals[OptLevel.OVERIFY]["branches_converted"] >= \
            table.totals[OptLevel.O3]["branches_converted"]
        assert table.totals[OptLevel.OVERIFY]["branches_converted"] > 0

    def test_render_contains_all_rows(self, table):
        text = table.render()
        for label in ("# functions inlined", "# loops unswitched",
                      "# loops unrolled", "# branches converted"):
            assert label in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def figure(self):
        workloads = [get_workload(name) for name in
                     ("echo", "grep", "od", "wc", "tr", "head")]
        # 4 symbolic bytes (was 3): the Solver-v2 stack made -O0
        # verification fast enough that 3-byte runs are compile-dominated,
        # which washes out the paper-shape ratios this class asserts.  One
        # more byte keeps the experiment verification-dominated, like the
        # benchmark suite's SYMBOLIC_INPUT_BYTES.
        return reproduce_figure4(symbolic_input_bytes=4, timeout_seconds=30,
                                 max_instructions=800_000,
                                 workloads=workloads)

    def test_every_program_measured_at_every_level(self, figure):
        assert len(figure.outcomes) == 6
        for outcome in figure.outcomes:
            assert set(outcome.results) == set(
                (OptLevel.O0, OptLevel.O3, OptLevel.OVERIFY))

    def test_overify_wins_on_average(self, figure):
        # The paper reports a 58% mean reduction vs -O3 and 63% vs -O0.  On
        # scaled-down inputs the aggregate (total-time) reduction is the
        # faithful analogue; it must be clearly positive, and the largest
        # per-program speedup must be substantial.
        assert figure.total_time_reduction_vs(OptLevel.O0) > 0.3
        assert figure.max_speedup_vs(OptLevel.O0) > 5.0

    def test_no_overify_timeouts_on_small_inputs(self, figure):
        assert figure.timeouts(OptLevel.OVERIFY) == 0

    def test_render_includes_summary(self, figure):
        text = figure.render()
        assert "mean reduction vs -O3" in text
        assert "Figure 4" in text

    def test_solver_v2_counters_reach_the_summary(self, figure):
        text = figure.render()
        for label in ("solver ubtree hits (sweep total)",
                      "solver equality rewrites (sweep total)",
                      "solver prune splits (sweep total)"):
            assert label in text
        assert figure.solver_stat_total("ubtree_hits") > 0
        assert figure.solver_stat_total("equality_rewrites") > 0


class TestTable2Ablation:
    @pytest.fixture(scope="class")
    def rows(self):
        return reproduce_table2(symbolic_input_bytes=3, timeout_seconds=60)

    def test_all_variants_measured(self, rows):
        names = [row.name for row in rows]
        assert "full -OVERIFY" in names
        assert "-O3 (CPU-oriented)" in names
        assert "without verification libC" in names

    def test_full_overify_has_fewest_paths(self, rows):
        full = rows[0]
        o0 = [row for row in rows if "O0" in row.name][0]
        assert full.paths <= o0.paths

    def test_render(self, rows):
        text = render_table2(rows)
        assert "Table 2" in text and "t_verify" in text
