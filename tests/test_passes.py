"""Tests for the optimization passes.

Each structural expectation is paired with a semantic check: the transformed
function must still compute the same results when interpreted.
"""

import pytest

from repro.analysis import LoopInfo, function_metrics
from repro.frontend import compile_to_ir
from repro.interp import Interpreter
from repro.ir import (
    AllocaInst, BranchInst, CallInst, ConstantInt, LoadInst, PhiInst,
    SelectInst, StoreInst, verify_module,
)
from repro.passes import (
    AnnotateForVerification, ConstantPropagation, DeadCodeElimination,
    GlobalDCE, GlobalValueNumbering, IfConversion, IfConversionParams,
    InlineParams, Inliner, InsertRuntimeChecks, InstCombine, JumpThreading,
    LoopInvariantCodeMotion, LoopUnrolling, LoopUnswitching, PassManager,
    PromoteMemoryToRegisters, ScalarReplacementOfAggregates, SimplifyCFG,
    TransformStats, UnrollParams, UnswitchParams,
)


def _run(module, name, args):
    return Interpreter(module).run_function(name, args).return_value


def _optimize(source, passes, verify=True):
    module = compile_to_ir(source)
    manager = PassManager(verify_after_each=verify)
    manager.extend(passes)
    manager.run_until_fixpoint(module)
    return module, manager


def _assert_same_behaviour(source, passes, name, argument_sets):
    """Run `name` before and after the passes on every argument set."""
    baseline = compile_to_ir(source)
    expected = [_run(baseline, name, args) for args in argument_sets]
    module, manager = _optimize(source, passes)
    actual = [_run(module, name, args) for args in argument_sets]
    assert actual == expected
    return module, manager


STANDARD_CLEANUP = lambda: [SimplifyCFG(), PromoteMemoryToRegisters(),
                            ConstantPropagation(), InstCombine(),
                            DeadCodeElimination(), SimplifyCFG()]


class TestMem2Reg:
    SOURCE = """
    int f(int a, int b) {
        int x = a;
        int y = b;
        if (a > b) { x = x + y; } else { y = y - x; }
        return x * 10 + y;
    }
    """

    def test_promotes_all_scalar_allocas(self):
        module, manager = _assert_same_behaviour(
            self.SOURCE, [SimplifyCFG(), PromoteMemoryToRegisters()],
            "f", [[3, 1], [1, 3], [5, 5]])
        function = module.get_function("f")
        assert not any(isinstance(i, AllocaInst) for i in function.instructions())
        assert not any(isinstance(i, (LoadInst, StoreInst))
                       for i in function.instructions())
        assert manager.stats.allocas_promoted >= 4

    def test_inserts_phis_at_joins(self):
        module, _ = _optimize(self.SOURCE,
                              [SimplifyCFG(), PromoteMemoryToRegisters()])
        function = module.get_function("f")
        assert any(isinstance(i, PhiInst) for i in function.instructions())

    def test_does_not_promote_address_taken_alloca(self):
        source = """
        int deref(int *p) { return *p; }
        int f(int a) { int x = a; return deref(&x); }
        """
        module, _ = _optimize(source, [SimplifyCFG(),
                                       PromoteMemoryToRegisters()])
        function = module.get_function("f")
        assert any(isinstance(i, AllocaInst) for i in function.instructions())

    def test_loop_carried_values_get_phis(self):
        source = """
        int f(int n) {
            int total = 0;
            for (int i = 0; i < n; i++) { total += i; }
            return total;
        }
        """
        module, _ = _assert_same_behaviour(
            source, [SimplifyCFG(), PromoteMemoryToRegisters()],
            "f", [[0], [1], [5], [10]])
        function = module.get_function("f")
        header_phis = [i for i in function.instructions()
                       if isinstance(i, PhiInst)]
        assert len(header_phis) >= 2  # i and total


class TestConstantFoldingAndInstCombine:
    def test_constant_expressions_fold_away(self):
        source = "int f() { int a = 3 * 4 + 2; int b = a << 1; return b - 1; }"
        module, _ = _assert_same_behaviour(
            source, STANDARD_CLEANUP(), "f", [[]])
        function = module.get_function("f")
        # Everything folds down to `ret 27`.
        assert function.instruction_count() == 1

    def test_identities_removed(self):
        source = "int f(int a) { return (a + 0) * 1 + (a - a) + (a & -1); }"
        module, _ = _assert_same_behaviour(
            source, STANDARD_CLEANUP(), "f", [[7], [0], [123]])
        metrics = function_metrics(module.get_function("f"))
        # Only the final add (a + a) should remain beyond the return.
        assert metrics.instructions <= 3

    def test_zext_icmp_roundtrip_removed(self):
        # The front end produces `icmp ne (zext i1 ...), 0` chains; they must
        # collapse so branch conditions stay small.
        source = "int f(int a, int b) { if ((a < b) != 0) { return 1; } return 0; }"
        module, _ = _assert_same_behaviour(
            source, STANDARD_CLEANUP(), "f", [[1, 2], [2, 1]])
        function = module.get_function("f")
        from repro.ir import CastInst, Opcode
        zext_of_bool = [i for i in function.instructions()
                        if isinstance(i, CastInst) and
                        i.opcode is Opcode.ZEXT and i.value.type.width == 1]
        # At most the one zext feeding the return value remains.
        assert len(zext_of_bool) <= 1

    def test_constant_branch_folds_and_dead_arm_removed(self):
        source = """
        int f(int a) {
            if (1 > 2) { return 111; }
            return a;
        }
        """
        module, _ = _assert_same_behaviour(source, STANDARD_CLEANUP(),
                                           "f", [[9]])
        function = module.get_function("f")
        assert len(function.blocks) == 1

    def test_select_simplifications(self):
        source = "int f(int c, int x) { return c ? x : x; }"
        module, _ = _assert_same_behaviour(source, STANDARD_CLEANUP(),
                                           "f", [[0, 5], [1, 5]])
        assert not any(isinstance(i, SelectInst)
                       for i in module.get_function("f").instructions())


class TestDCEAndGlobalDCE:
    def test_unused_computations_removed(self):
        source = """
        int f(int a) {
            int unused = a * 12345;
            int also_unused = unused + 7;
            return a;
        }
        """
        module, manager = _assert_same_behaviour(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     DeadCodeElimination()], "f", [[4]])
        assert module.get_function("f").instruction_count() == 1
        assert manager.stats.instructions_removed > 0

    def test_stores_to_dead_allocas_removed(self):
        source = "int f(int a) { int dead = a; int dead2 = a * 3; return a; }"
        module, _ = _optimize(source, [DeadCodeElimination()])
        function = module.get_function("f")
        # Only the parameter spill remains (it is loaded for the return).
        allocas = [i for i in function.instructions()
                   if isinstance(i, AllocaInst)]
        assert all(a.name.startswith("a.addr") for a in allocas)

    def test_global_dce_removes_unreachable_functions(self):
        source = """
        int helper(int a) { return a + 1; }
        int unused_helper(int a) { return a * 2; }
        int main(unsigned char *input, int len) { return helper(len); }
        """
        module, manager = _optimize(
            source, [Inliner(InlineParams(threshold=1000)),
                     GlobalDCE({"main"})], verify=True)
        assert module.get_function_or_none("unused_helper") is None
        assert module.get_function_or_none("main") is not None
        assert manager.stats.functions_removed >= 1

    def test_global_dce_keeps_everything_without_roots(self):
        source = "int orphan(int a) { return a; }"
        module, _ = _optimize(source, [GlobalDCE({"main"})])
        assert module.get_function_or_none("orphan") is not None


class TestGVN:
    def test_repeated_expression_computed_once(self):
        source = "int f(int a, int b) { return (a + b) * (a + b); }"
        module, manager = _assert_same_behaviour(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     GlobalValueNumbering(), DeadCodeElimination()],
            "f", [[2, 3], [10, -4 & 0xFFFFFFFF]])
        function = module.get_function("f")
        adds = [i for i in function.instructions()
                if i.opcode.value == "add"]
        assert len(adds) == 1
        assert manager.stats.redundancies_eliminated >= 1

    def test_redundant_load_forwarding_within_block(self):
        source = """
        int f(int *p) {
            int a = *p;
            int b = *p;
            return a + b;
        }
        """
        module, _ = _optimize(source, [SimplifyCFG(),
                                       PromoteMemoryToRegisters(),
                                       GlobalValueNumbering(),
                                       DeadCodeElimination()])
        loads = [i for i in module.get_function("f").instructions()
                 if isinstance(i, LoadInst)]
        assert len(loads) == 1

    def test_store_to_unknown_pointer_kills_load_cse(self):
        source = """
        int f(int *p, int *q) {
            int a = *p;
            *q = 7;
            int b = *p;
            return a + b;
        }
        """
        module, _ = _optimize(source, [SimplifyCFG(),
                                       PromoteMemoryToRegisters(),
                                       GlobalValueNumbering()])
        loads = [i for i in module.get_function("f").instructions()
                 if isinstance(i, LoadInst)]
        assert len(loads) == 2  # q may alias p, so the reload must stay


class TestSROA:
    def test_struct_alloca_split_and_promoted(self):
        source = """
        struct pair { int first; int second; };
        int f(int a, int b) {
            struct pair p;
            p.first = a;
            p.second = b;
            return p.first * 100 + p.second;
        }
        """
        module, manager = _assert_same_behaviour(
            source, [SimplifyCFG(), ScalarReplacementOfAggregates(),
                     PromoteMemoryToRegisters(), ConstantPropagation(),
                     InstCombine(), DeadCodeElimination()],
            "f", [[1, 2], [7, 9]])
        function = module.get_function("f")
        assert manager.stats.aggregates_split == 1
        assert not any(isinstance(i, (LoadInst, StoreInst))
                       for i in function.instructions())

    def test_escaping_struct_not_split(self):
        source = """
        struct pair { int first; int second; };
        int read_first(struct pair *p) { return p->first; }
        int f(int a) {
            struct pair p;
            p.first = a;
            p.second = 0;
            return read_first(&p);
        }
        """
        module, manager = _optimize(source,
                                    [ScalarReplacementOfAggregates()])
        assert manager.stats.aggregates_split == 0


class TestInliner:
    SOURCE = """
    int square(int x) { return x * x; }
    int cube(int x) { return x * square(x); }
    int f(int a) { return cube(a) + square(a); }
    """

    def test_inlining_removes_calls(self):
        module, manager = _assert_same_behaviour(
            self.SOURCE, [Inliner(InlineParams(threshold=1000)),
                          *STANDARD_CLEANUP()],
            "f", [[3], [5]])
        function = module.get_function("f")
        assert not any(isinstance(i, CallInst) for i in function.instructions())
        assert manager.stats.functions_inlined >= 3

    def test_threshold_zero_inlines_nothing(self):
        module, manager = _optimize(
            self.SOURCE, [Inliner(InlineParams(threshold=0,
                                               constant_arg_bonus=0))])
        assert manager.stats.functions_inlined == 0

    def test_recursive_functions_never_inlined(self):
        source = """
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int f(int a) { return fact(a); }
        """
        module, manager = _assert_same_behaviour(
            source, [Inliner(InlineParams(threshold=10_000))], "f", [[5]])
        assert module.get_function_or_none("fact") is not None
        assert _run(module, "f", [5]) == 120

    def test_multiple_returns_merge_through_phi(self):
        source = """
        int pick(int c, int a, int b) { if (c) { return a; } return b; }
        int f(int c) { return pick(c, 10, 20); }
        """
        module, _ = _assert_same_behaviour(
            source, [Inliner(InlineParams(threshold=1000)), SimplifyCFG()],
            "f", [[0], [1]])
        assert _run(module, "f", [1]) == 10
        assert _run(module, "f", [0]) == 20

    def test_no_inline_attribute_respected(self):
        module = compile_to_ir(self.SOURCE)
        module.get_function("square").attributes["no_inline"] = True
        manager = PassManager()
        manager.add(Inliner(InlineParams(threshold=1000)))
        manager.run(module)
        remaining_calls = [i for i in module.get_function("f").instructions()
                           if isinstance(i, CallInst)]
        assert any(i.callee.name == "square" for i in remaining_calls)


class TestIfConversion:
    SOURCE = """
    int f(int a, int b) {
        int result;
        if (a > b) { result = a - b; } else { result = b - a; }
        return result;
    }
    """

    def test_diamond_becomes_select(self):
        module, manager = _assert_same_behaviour(
            self.SOURCE,
            [SimplifyCFG(), PromoteMemoryToRegisters(),
             IfConversion(IfConversionParams(max_speculated_instructions=8)),
             SimplifyCFG()],
            "f", [[5, 2], [2, 5], [3, 3]])
        function = module.get_function("f")
        metrics = function_metrics(function)
        assert metrics.conditional_branches == 0
        assert metrics.selects >= 1
        assert manager.stats.branches_converted == 1

    def test_threshold_limits_speculation(self):
        source = """
        int f(int a) {
            int r;
            if (a > 0) { r = a * a * a * a * a * a; } else { r = 0; }
            return r;
        }
        """
        module, manager = _optimize(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     IfConversion(IfConversionParams(
                         max_speculated_instructions=1))])
        assert manager.stats.branches_converted == 0

    def test_stores_are_never_speculated(self):
        source = """
        int f(int *p, int a) {
            if (a > 0) { *p = a; }
            return a;
        }
        """
        module, manager = _optimize(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     IfConversion(IfConversionParams(
                         max_speculated_instructions=100))])
        assert manager.stats.branches_converted == 0

    def test_guarded_variable_index_load_not_speculated(self):
        # Speculating buffer[k] past the `k >= 0` guard would introduce an
        # out-of-bounds read (this was a real regression caught by the sort
        # workload).
        source = """
        unsigned char table[4];
        int f(int k) {
            int value = 0;
            if (k >= 0 && k < 4) { value = table[k]; }
            return value;
        }
        """
        module, _ = _optimize(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     IfConversion(IfConversionParams(
                         max_speculated_instructions=100)),
                     SimplifyCFG()])
        result = Interpreter(module).run_function("f", [(-5) & 0xFFFFFFFF])
        assert not result.crashed
        assert result.return_value == 0

    def test_triangle_conversion(self):
        source = """
        int f(int a) {
            int r = 0;
            if (a > 10) { r = a; }
            return r;
        }
        """
        module, manager = _assert_same_behaviour(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     IfConversion(IfConversionParams(
                         max_speculated_instructions=4)), SimplifyCFG()],
            "f", [[3], [30]])
        assert manager.stats.branches_converted == 1


class TestLoopTransforms:
    def test_licm_hoists_invariant_computation(self):
        source = """
        int f(int a, int b, int n) {
            int total = 0;
            for (int i = 0; i < n; i++) {
                total += a * b;
            }
            return total;
        }
        """
        module, manager = _assert_same_behaviour(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     ConstantPropagation(), InstCombine(),
                     LoopInvariantCodeMotion()],
            "f", [[2, 3, 4], [5, 5, 0]])
        assert manager.stats.instructions_hoisted >= 1
        function = module.get_function("f")
        loop = LoopInfo(function).loops[0]
        muls_in_loop = [i for b in loop.blocks for i in b.instructions
                        if i.opcode.value == "mul"]
        assert not muls_in_loop

    def test_unswitching_duplicates_loop(self):
        source = """
        int f(unsigned char *s, int flag) {
            int count = 0;
            for (int i = 0; s[i]; i++) {
                if (flag) { count += 2; } else { count += 1; }
            }
            return count;
        }
        """
        module = compile_to_ir(source)
        manager = PassManager(verify_after_each=True)
        manager.extend([SimplifyCFG(), PromoteMemoryToRegisters(),
                        ConstantPropagation(), InstCombine(),
                        DeadCodeElimination(), SimplifyCFG(),
                        LoopUnswitching(UnswitchParams(max_loop_size=200)),
                        SimplifyCFG()])
        manager.run(module)
        assert manager.stats.loops_unswitched == 1
        function = module.get_function("f")
        assert len(LoopInfo(function).loops) == 2
        # Behaviour check through the interpreter with a real string.
        interp = Interpreter(module)
        address = interp.allocate_buffer(b"abcd\x00")
        assert interp.run_function("f", [address, 1]).return_value == 8
        interp2 = Interpreter(module)
        address2 = interp2.allocate_buffer(b"abcd\x00")
        assert interp2.run_function("f", [address2, 0]).return_value == 4

    def test_full_unrolling_of_constant_loop(self):
        source = """
        int f(int a) {
            int total = 0;
            for (int i = 0; i < 5; i++) { total += a; }
            return total;
        }
        """
        module, manager = _assert_same_behaviour(
            source,
            [SimplifyCFG(), PromoteMemoryToRegisters(), ConstantPropagation(),
             InstCombine(), DeadCodeElimination(), SimplifyCFG(),
             LoopUnrolling(UnrollParams(max_trip_count=8)),
             ConstantPropagation(), InstCombine(), DeadCodeElimination(),
             SimplifyCFG()],
            "f", [[3], [0]])
        assert manager.stats.loops_unrolled == 1
        function = module.get_function("f")
        assert len(LoopInfo(function).loops) == 0

    def test_unrolling_respects_trip_count_limit(self):
        source = """
        int f(int a) {
            int total = 0;
            for (int i = 0; i < 100; i++) { total += a; }
            return total;
        }
        """
        module, manager = _optimize(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     ConstantPropagation(), InstCombine(),
                     LoopUnrolling(UnrollParams(max_trip_count=8))])
        assert manager.stats.loops_unrolled == 0

    def test_jump_threading_over_phi_of_constants(self):
        source = """
        int f(int a) {
            int flag;
            if (a > 0) { flag = 1; } else { flag = 0; }
            if (flag) { return 10; }
            return 20;
        }
        """
        module, manager = _assert_same_behaviour(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     ConstantPropagation(), InstCombine(),
                     JumpThreading(), SimplifyCFG(), DeadCodeElimination()],
            "f", [[5], [0], [-1 & 0xFFFFFFFF]])
        assert manager.stats.jumps_threaded >= 1


class TestChecksAndAnnotations:
    def test_runtime_checks_inserted_for_unproven_pointers(self):
        source = "int f(int *p) { return *p; }"
        module, manager = _optimize(source, [SimplifyCFG(),
                                             InsertRuntimeChecks()])
        assert manager.stats.checks_inserted >= 1
        assert module.get_function_or_none("__overify_check_fail") is not None
        # Dereferencing a null pointer now reaches the check-failure hook.
        result = Interpreter(module).run_function("f", [0])
        assert result.crashed
        assert "check" in str(result.error) or "null" in str(result.error)

    def test_checks_not_duplicated_on_second_run(self):
        source = "int f(int *p) { return *p; }"
        module, _ = _optimize(source, [InsertRuntimeChecks()])
        manager = PassManager()
        manager.add(InsertRuntimeChecks())
        manager.run(module)
        assert manager.stats.checks_inserted == 0

    def test_valid_pointer_still_works_with_checks(self):
        source = "int f(int *p) { return *p + 1; }"
        module, _ = _optimize(source, [InsertRuntimeChecks()])
        interp = Interpreter(module)
        address = interp.allocate_buffer((41).to_bytes(4, "little"))
        assert interp.run_function("f", [address]).return_value == 42

    def test_annotation_pass_adds_ranges_and_trip_counts(self):
        source = """
        int f(unsigned char c) {
            int total = 0;
            for (int i = 0; i < 6; i++) { total += c; }
            return total;
        }
        """
        module, manager = _optimize(
            source, [SimplifyCFG(), PromoteMemoryToRegisters(),
                     ConstantPropagation(), InstCombine(),
                     AnnotateForVerification()])
        assert manager.stats.annotations_added > 0
        function = module.get_function("f")
        assert function.metadata.get("annotated_for_verification")
        has_trip_count = any("trip_count" in inst.metadata
                             for inst in function.instructions())
        assert has_trip_count


class TestPassManager:
    def test_stats_accumulate_across_passes(self):
        source = "int f(int a) { int x = 1 + 2; return a + x; }"
        module = compile_to_ir(source)
        manager = PassManager()
        manager.extend([SimplifyCFG(), PromoteMemoryToRegisters(),
                        ConstantPropagation()])
        manager.run(module)
        stats = manager.stats.as_dict()
        assert stats["allocas_promoted"] >= 2
        assert len(manager.history) == 3

    def test_run_until_fixpoint_stops(self):
        source = "int f(int a) { return a; }"
        module = compile_to_ir(source)
        manager = PassManager(max_iterations=10)
        manager.add(DeadCodeElimination())
        manager.run_until_fixpoint(module)
        # DCE has nothing to do the second time round, so only a couple of
        # records exist.
        assert len(manager.history) <= 3

    def test_transform_stats_merge_and_table3_row(self):
        stats = TransformStats(functions_inlined=2)
        other = TransformStats(functions_inlined=3, loops_unrolled=1)
        stats.merge(other)
        assert stats.functions_inlined == 5
        assert stats.table3_row()["loops_unrolled"] == 1

    def test_verification_after_each_pass_catches_breakage(self):
        class BreakingPass(SimplifyCFG):
            name = "breaker"

            def run_on_function(self, function, analyses):
                if not function.is_declaration and function.blocks:
                    # Remove the terminator: structurally invalid.
                    term = function.entry_block.terminator
                    if term is not None:
                        term.erase_from_parent()
                return True  # legacy bool return; coerced to PreservedAnalyses

        module = compile_to_ir("int f() { return 1; }")
        manager = PassManager(verify_after_each=True)
        manager.add(BreakingPass())
        with pytest.raises(RuntimeError, match="verification failed"):
            manager.run(module)
