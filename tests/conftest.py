"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_to_ir
from repro.interp import Interpreter, run_module
from repro.passes import PassManager
from repro.pipelines import CompileOptions, OptLevel, compile_source


def compile_snippet(source: str):
    """Compile a MiniC snippet (no libc, no optimization) to an IR module."""
    return compile_to_ir(source)


def run_snippet(source: str, function: str, args):
    """Compile a snippet and concretely run one of its functions."""
    from repro.interp import Interpreter

    module = compile_to_ir(source)
    interpreter = Interpreter(module)
    return interpreter.run_function(function, args)


def run_at_level(source: str, level: OptLevel, input_bytes: bytes,
                 **options):
    """Compile a full program at ``level`` and run it on ``input_bytes``."""
    result = compile_source(source, CompileOptions(level=level, **options))
    return run_module(result.module, input_bytes)


@pytest.fixture(scope="session")
def all_levels():
    return [OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3,
            OptLevel.OVERIFY]


# ------------------------------------------------------- compile helpers
# One canonical copy of the compile-a-module helpers the backend, fuzz,
# determinism, relcheck, and pass suites all need (previously four
# per-file variants).

def compile_program(source: str, level: OptLevel = OptLevel.O2):
    """Compile arbitrary program source at ``level``, return the module."""
    from repro.pipelines.session import CompilerSession

    return CompilerSession().compile(source, level=level).module


def compile_workload_module(name: str, level: OptLevel = OptLevel.O1):
    """Compile a registry workload at ``level``, return the module.

    Workload sources use the verification libc; compile, don't just
    lower."""
    from repro.workloads import get_workload

    return compile_source(get_workload(name).source,
                          CompileOptions(level=level)).module


@pytest.fixture(scope="session")
def compiled_wc():
    """The wc workload compiled at -O2 (a CompilationResult)."""
    from repro.workloads import get_workload

    return compile_source(get_workload("wc").source, level=OptLevel.O2)


# -------------------------------------------------- pass-pipeline helpers

def optimize_snippet(source: str, passes):
    """Compile a MiniC snippet and run ``passes`` to fixpoint on it."""
    module = compile_to_ir(source)
    manager = PassManager(verify_after_each=True)
    manager.extend(passes)
    manager.run_until_fixpoint(module)
    return module, manager


def run_ir_function(module, name: str, args):
    """Concretely run one IR function, normalized to unsigned 32-bit."""
    value = Interpreter(module).run_function(name, args).return_value
    # A function reduced to `ret %a` passes the Python argument through
    # raw, while any arithmetic result comes back already wrapped.
    return value & 0xFFFFFFFF if isinstance(value, int) else value


def assert_same_behaviour(source: str, passes, name: str, argument_sets):
    """Optimized module must agree with the unoptimized one on every
    argument set; returns ``(module, manager)`` for further assertions."""
    baseline = compile_to_ir(source)
    expected = [run_ir_function(baseline, name, args)
                for args in argument_sets]
    module, manager = optimize_snippet(source, passes)
    assert [run_ir_function(module, name, args)
            for args in argument_sets] == expected
    return module, manager
