"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_to_ir
from repro.interp import run_module
from repro.pipelines import CompileOptions, OptLevel, compile_source


def compile_snippet(source: str):
    """Compile a MiniC snippet (no libc, no optimization) to an IR module."""
    return compile_to_ir(source)


def run_snippet(source: str, function: str, args):
    """Compile a snippet and concretely run one of its functions."""
    from repro.interp import Interpreter

    module = compile_to_ir(source)
    interpreter = Interpreter(module)
    return interpreter.run_function(function, args)


def run_at_level(source: str, level: OptLevel, input_bytes: bytes,
                 **options):
    """Compile a full program at ``level`` and run it on ``input_bytes``."""
    result = compile_source(source, CompileOptions(level=level, **options))
    return run_module(result.module, input_bytes)


@pytest.fixture(scope="session")
def all_levels():
    return [OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3,
            OptLevel.OVERIFY]
