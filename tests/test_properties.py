"""Property-based tests (hypothesis) for the core invariants:

* the symbolic-expression simplifier preserves semantics,
* the solver is sound (models satisfy the constraints it answers SAT for),
* every optimization pipeline preserves program behaviour on random inputs,
* the two C library variants agree on random inputs,
* the symbolic executor's path partition covers the concrete behaviour.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import run_module
from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.symex import ExprOp, Solver, binary, const, ite, not_expr, var, zext
from repro.workloads import WC_PROGRAM, get_workload, reference_word_count


# ---------------------------------------------------------------------------
# Expression simplifier
# ---------------------------------------------------------------------------
_BINARY_OPS = [ExprOp.ADD, ExprOp.SUB, ExprOp.MUL, ExprOp.AND, ExprOp.OR,
               ExprOp.XOR, ExprOp.SHL, ExprOp.LSHR, ExprOp.EQ, ExprOp.NE,
               ExprOp.ULT, ExprOp.ULE, ExprOp.SLT, ExprOp.SLE]


def _reference_eval(op, lhs, rhs, width=8):
    """Direct, unsimplified semantics of the expression operators."""
    raw = binary(op, const(width, lhs), const(width, rhs))
    return raw.value  # constant folding in the constructor is the reference


@st.composite
def byte_exprs(draw, depth=0):
    """Random expressions over two 8-bit variables."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return const(8, draw(st.integers(0, 255)))
        return var(8, draw(st.sampled_from(["x", "y"])))
    op = draw(st.sampled_from(_BINARY_OPS))
    lhs = draw(byte_exprs(depth=depth + 1))
    rhs = draw(byte_exprs(depth=depth + 1))
    built = binary(op, lhs, rhs)
    if built.width != 8:
        built = zext(built, 8)
    return built


@settings(max_examples=150, deadline=None)
@given(expr=byte_exprs(), x=st.integers(0, 255), y=st.integers(0, 255))
def test_simplified_expressions_evaluate_like_their_structure(expr, x, y):
    """Building an expression through the simplifying constructors and then
    evaluating it concretely gives the same result as evaluating an
    equivalent unsimplified expression (checked by re-building it node by
    node with constant operands)."""
    assignment = {"x": x, "y": y}
    value = expr.evaluate(assignment)
    assert 0 <= value <= 255 or expr.width == 1 and value in (0, 1)


@settings(max_examples=100, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255),
       op=st.sampled_from(_BINARY_OPS))
def test_binary_simplification_preserves_concrete_semantics(a, b, op):
    """binary(op, var, const) evaluated at var=a equals binary(op, a, b)."""
    x = var(8, "x")
    symbolic = binary(op, x, const(8, b))
    folded = binary(op, const(8, a), const(8, b))
    assert symbolic.evaluate({"x": a}) == folded.value


@settings(max_examples=100, deadline=None)
@given(c=st.booleans(), a=st.integers(0, 255), b=st.integers(0, 255),
       x=st.integers(0, 255))
def test_ite_and_not_preserve_semantics(c, a, b, x):
    cond = binary(ExprOp.ULT, var(8, "x"), const(8, 128))
    expr = ite(cond, const(8, a), const(8, b))
    expected = a if x < 128 else b
    assert expr.evaluate({"x": x}) == expected
    assert not_expr(cond).evaluate({"x": x}) == (0 if x < 128 else 1)


# ---------------------------------------------------------------------------
# Solver soundness
# ---------------------------------------------------------------------------
@settings(max_examples=75, deadline=None)
@given(constraints=st.lists(byte_exprs(), min_size=1, max_size=4))
def test_solver_models_satisfy_constraints(constraints):
    """Whenever the solver answers SAT with a model, the model really does
    satisfy every constraint; whenever it answers UNSAT, brute force over a
    sample of assignments finds no counterexample."""
    width1 = [binary(ExprOp.NE, c, const(c.width, 0)) if c.width != 1 else c
              for c in constraints]
    solver = Solver()
    result = solver.check(width1)
    if result.satisfiable and result.model is not None:
        model = dict(result.model)
        for name in ("x", "y"):
            model.setdefault(name, 0)
        assert all(c.evaluate(model) == 1 for c in width1)
    elif not result.satisfiable:
        for x in range(0, 256, 17):
            for y in range(0, 256, 23):
                assert not all(c.evaluate({"x": x, "y": y}) == 1
                               for c in width1)


# ---------------------------------------------------------------------------
# Compiler correctness: every level preserves behaviour
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def wc_modules():
    return {
        level: compile_source(WC_PROGRAM, CompileOptions(level=level)).module
        for level in (OptLevel.O0, OptLevel.O2, OptLevel.O3, OptLevel.OVERIFY)
    }


@settings(max_examples=40, deadline=None)
@given(text=st.binary(min_size=0, max_size=12), any_flag=st.integers(0, 1))
def test_wc_pipelines_match_python_reference(text, any_flag, wc_modules):
    expected = reference_word_count(text, bool(any_flag))
    for level, module in wc_modules.items():
        result = run_module(module, bytes([any_flag]) + text)
        assert not result.crashed, (level, text, result.error)
        assert result.return_value == expected, (level, text)


@pytest.fixture(scope="module")
def grep_modules():
    workload = get_workload("grep")
    return {
        level: compile_source(workload.source,
                              CompileOptions(level=level)).module
        for level in (OptLevel.O0, OptLevel.OVERIFY)
    }


@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=0, max_size=10))
def test_grep_workload_levels_agree_on_random_inputs(data, grep_modules):
    outcomes = []
    for level, module in grep_modules.items():
        result = run_module(module, data)
        outcomes.append((result.return_value, result.crashed))
    assert outcomes[0] == outcomes[1]


@pytest.fixture(scope="module")
def libc_modules():
    from repro.frontend import compile_to_ir
    from repro.vlibc import EXECUTION_LIBC, VERIFICATION_LIBC
    return (compile_to_ir(EXECUTION_LIBC), compile_to_ir(VERIFICATION_LIBC))


@settings(max_examples=60, deadline=None)
@given(char=st.integers(0, 255),
       function=st.sampled_from(["isspace", "isdigit", "isalpha", "isalnum",
                                 "isupper", "islower", "isprint", "toupper",
                                 "tolower"]))
def test_libc_variants_agree_on_all_bytes(char, function, libc_modules):
    from repro.interp import Interpreter
    results = []
    for module in libc_modules:
        value = Interpreter(module).run_function(function, [char]).return_value
        if function in ("toupper", "tolower"):
            results.append(value)
        else:
            results.append(bool(value))
    assert results[0] == results[1]
