"""Tests for the differential fuzzer and the bugs it found.

Four groups:

* generator determinism — same seed must mean byte-identical output,
  across processes and under ``PYTHONHASHSEED`` variation;
* minimizer behavior — rendering round-trips, and a seeded divergence
  shrinks to a bounded statement count;
* oracle plumbing — a clean seed reports clean, a planted semantic
  divergence is caught;
* regression locks for the fuzzer's findings: the jump-threading
  dominance bug (seed 15), the DCE trapping-division bug (seed 1), the
  float-rounded 64-bit signed division, and the ``not_expr`` xor
  operand-order rewrite.
"""

import subprocess
import sys

import pytest

from repro.frontend import parse
from repro.fuzz import (
    GeneratorConfig, check_source, generate_program, minimize_source,
)
from repro.fuzz.minimize import count_statements
from repro.fuzz.oracle import OracleConfig
from repro.fuzz.render import render_program
from repro.interp.interpreter import run_module
from repro.ir import verify_module, verify_ssa_dominance
from repro.pipelines.levels import OptLevel
from repro.pipelines.session import CompilerSession

from conftest import compile_program
from repro.symex.executor import SymexLimits, explore
from repro.workloads import get_workload

QUICK_ORACLE = OracleConfig(
    max_paths=48, max_instructions=200_000, max_forks=512,
    timeout_seconds=5.0, interp_max_steps=200_000,
    check_solver_matrix=False, query_deadline_seconds=0.5)


# --------------------------------------------------------------- generator
def test_generator_deterministic_in_process():
    for seed in (0, 1, 7, 23):
        assert generate_program(seed) == generate_program(seed)


def test_generator_seeds_differ():
    assert generate_program(0) != generate_program(1)


def test_generator_config_changes_output():
    small = GeneratorConfig(input_bytes=2, allow_structs=False)
    assert generate_program(3, small) != generate_program(3)


def test_generator_deterministic_across_hash_seeds():
    """Byte-identical output under different PYTHONHASHSEED values: the
    generator must not depend on set/dict iteration order or hash()."""
    script = ("import sys; sys.path.insert(0, 'src'); "
              "from repro.fuzz import generate_program; "
              "sys.stdout.write(generate_program(11))")
    outputs = set()
    for hash_seed in ("0", "1", "12345"):
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1


def test_generated_programs_compile_at_every_level():
    for seed in range(8):
        source = generate_program(seed)
        for level in OptLevel:
            module = compile_program(source, level)
            verify_module(module)
            verify_ssa_dominance(module)


# --------------------------------------------------------------- renderer
def test_render_round_trip_is_stable():
    for seed in range(6):
        source = generate_program(seed)
        once = render_program(parse(source))
        twice = render_program(parse(once))
        assert once == twice


# --------------------------------------------------------------- minimizer
def test_minimizer_converges_to_small_reproducer():
    """A planted divergence predicate shrinks below a fixed statement
    bound, regardless of the surrounding generated noise."""
    source = generate_program(2)
    # Interesting = "still contains a modulo operation" — a stand-in for
    # a real divergence predicate with known minimal form.
    def has_modulo(candidate):
        return "%" in candidate

    assert has_modulo(source)
    result = minimize_source(source, has_modulo)
    assert has_modulo(result.minimized_source)
    assert result.reduced
    assert count_statements(result.minimized_source) <= 5


def test_minimizer_keeps_predicate_and_compiles():
    source = generate_program(4)

    def mentions_input(candidate):
        return "input[" in candidate

    result = minimize_source(source, mentions_input)
    assert mentions_input(result.minimized_source)
    compile_program(result.minimized_source, OptLevel.O0)  # must not raise


# ----------------------------------------------------------------- oracle
def test_oracle_clean_on_trivial_program():
    source = """
int main(unsigned char *input, int len) {
    if (input[0] == 'x') { return 1; }
    return 0;
}
"""
    outcome = check_source(source, GeneratorConfig(input_bytes=2),
                           QUICK_ORACLE)
    assert outcome.clean, [d.describe() for d in outcome.divergences]
    assert not outcome.truncated


def test_oracle_catches_planted_compile_divergence():
    # A program no level can compile: the oracle must report it for every
    # level rather than crash.
    outcome = check_source("int main(unsigned char *input, int len) "
                           "{ return undeclared_fn(1); }",
                           GeneratorConfig(input_bytes=2), QUICK_ORACLE)
    assert not outcome.clean
    assert all(d.kind == "compile" for d in outcome.divergences)


# ------------------------------------------- oracle family 6: relcheck

_RELCHECK_ORACLE = OracleConfig(
    max_paths=48, max_instructions=200_000, max_forks=512,
    timeout_seconds=5.0, interp_max_steps=200_000,
    check_solver_matrix=False, query_deadline_seconds=0.5,
    check_relcheck=True)

_TRAP_DELETION_SOURCE = """
int main(unsigned char *input, int len) {
    int t = 100 / input[0];
    return 7;
}
"""


def test_relcheck_family_clean_on_clean_seed():
    """A correct compiler plus ``--relcheck``: the proof succeeds and the
    seed stays clean."""
    source = generate_program(3, GeneratorConfig(input_bytes=2))
    outcome = check_source(source, GeneratorConfig(input_bytes=2),
                           _RELCHECK_ORACLE)
    assert outcome.clean, [d.describe() for d in outcome.divergences]


def test_relcheck_family_flags_planted_miscompile(monkeypatch):
    """Break the -OVERIFY pipeline with the unsafe-DCE knob: family 6
    must flag the deleted trap as a ``relcheck`` divergence carrying the
    concrete counterexample, and minimization must preserve the kind."""
    from repro.pipelines import levels as levels_mod

    monkeypatch.setitem(levels_mod.LEVEL_PIPELINES, OptLevel.OVERIFY,
                        "mem2reg,dce<unsafe-traps>")
    generator = GeneratorConfig(input_bytes=1)
    outcome = check_source(_TRAP_DELETION_SOURCE, generator,
                           _RELCHECK_ORACLE)
    assert not outcome.clean
    relcheck_divergences = [d for d in outcome.divergences
                            if d.kind == "relcheck"]
    assert relcheck_divergences, [d.describe() for d in outcome.divergences]
    assert "(input " in relcheck_divergences[0].detail

    def still_diverges(candidate):
        result = check_source(candidate, generator, _RELCHECK_ORACLE)
        return any(d.kind == "relcheck" for d in result.divergences)

    minimized = minimize_source(_TRAP_DELETION_SOURCE, still_diverges)
    assert still_diverges(minimized.minimized_source)
    assert (count_statements(minimized.minimized_source)
            <= count_statements(_TRAP_DELETION_SOURCE))


def test_relcheck_family_off_by_default():
    """Without the opt-in the product driver must not run: the planted
    miscompile is still caught by the cheaper families, but never with
    kind ``relcheck``."""
    outcome = check_source(_TRAP_DELETION_SOURCE,
                           GeneratorConfig(input_bytes=1), QUICK_ORACLE)
    assert all(d.kind != "relcheck" for d in outcome.divergences)


# ------------------------------------------------- finding: jump threading
def test_jump_threading_loop_phi_regression():
    """Seed 15: threading past a loop's test block whose counter phi is
    incremented in the body broke dominance, and the compile later hung.
    Now: compiles at every level and the result is dominance-valid."""
    workload = get_workload("fuzz-jump-thread-loop-phi")
    for level in OptLevel:
        module = compile_program(workload.source, level)
        verify_module(module)
        verify_ssa_dominance(module)


def test_full_seed15_compiles_everywhere():
    source = generate_program(15)
    for level in OptLevel:
        verify_ssa_dominance(compile_program(source, level))


def test_dominance_verifier_rejects_broken_ssa():
    from repro.ir import (
        BasicBlock, ConstantInt, Function, FunctionType, ICmpPredicate,
        IRBuilder, IntType, Module, VerificationError,
    )

    i32 = IntType(32)
    module = Module("m")
    function = Function("f", FunctionType(i32, [i32]))
    module.add_function(function)
    (arg,) = function.arguments
    entry = function.append_block(BasicBlock("entry"))
    left = function.append_block(BasicBlock("left"))
    right = function.append_block(BasicBlock("right"))
    join = function.append_block(BasicBlock("join"))
    builder = IRBuilder()
    builder.set_insert_point(entry)
    cond = builder.icmp(ICmpPredicate.EQ, arg, ConstantInt(i32, 0))
    builder.cond_br(cond, left, right)
    builder.set_insert_point(left)
    value = builder.add(arg, ConstantInt(i32, 1))
    builder.br(join)
    builder.set_insert_point(right)
    builder.br(join)
    builder.set_insert_point(join)
    # `value` is defined only on the left path: not a dominating def.
    builder.ret(builder.add(value, ConstantInt(i32, 3)))
    with pytest.raises(VerificationError):
        verify_ssa_dominance(module)


# --------------------------------------------- finding: DCE trapping div
def test_unused_division_keeps_trap_at_every_level():
    """Seed 1: SCCP proved the division's user constant, DCE then deleted
    the unused division — and with it the division-by-zero trap."""
    workload = get_workload("fuzz-dce-trapping-div")
    trap_input = b"\x00\x00\x00"
    for level in OptLevel:
        module = compile_program(workload.source, level)
        result = run_module(module, trap_input, max_steps=200_000)
        assert result.error is not None, str(level)
        assert result.error.kind.value == "division by zero", str(level)


def test_dce_still_removes_safe_divisions():
    # A division by a nonzero constant with an unused result must still
    # disappear: the trap-preservation fix must not pin safe divisions.
    source = """
int main(unsigned char *input, int len) {
    int x = input[0] / 7;
    return 3;
}
"""
    module = compile_program(source, OptLevel.O2)
    text = str(module)
    assert "div" not in text, text


def test_division_by_zero_symex_matches_interp():
    source = """
int main(unsigned char *input, int len) {
    return 100 / input[0];
}
"""
    for level in OptLevel:
        module = compile_program(source, level)
        report = explore(module, 1, limits=SymexLimits(
            max_paths=16, max_instructions=50_000, max_forks=64,
            timeout_seconds=10))
        kinds = {bug.kind.value for bug in report.bugs}
        assert kinds == {"division by zero"}, str(level)
        (bug,) = [b for b in report.bugs]
        replay = run_module(module, bug.test_input, max_steps=50_000)
        assert replay.error is not None
        assert replay.error.kind.value == "division by zero"


# ------------------------------------------- finding: 64-bit sdiv rounding
def test_wide_signed_division_is_exact():
    workload = get_workload("fuzz-sdiv-wide")
    big = (1 << 62) + 1
    q = big  # big / (1 | 1) == big, exactly — a float round trip loses it
    r = -(big % 10)  # C: (-big) % 10 takes the dividend's sign
    mask64 = (1 << 64) - 1
    reference = (((q & 0xFF) + ((r & mask64) & 0xFF)) & 0xFFFFFFFF)
    outcomes = set()
    for level in OptLevel:
        module = compile_program(workload.source, level)
        result = run_module(module, b"\x01ab", max_steps=100_000)
        assert result.error is None, str(level)
        outcomes.add(result.return_value & 0xFFFFFFFF)
    assert outcomes == {reference}


def test_eval_binary_sdiv_srem_truncate_toward_zero():
    from repro.ir import Opcode
    from repro.ir.builder import eval_binary
    from repro.ir.types import IntType

    i64 = IntType(64)
    mask = (1 << 64) - 1
    big = (1 << 62) + 1
    assert eval_binary(Opcode.SDIV, i64, big, 1) == big
    assert eval_binary(Opcode.SDIV, i64, (-7) & mask, 2) == (-3) & mask
    assert eval_binary(Opcode.SREM, i64, (-7) & mask, 2) == (-1) & mask
    assert eval_binary(Opcode.SREM, i64, 7, (-2) & mask) == 1
    assert eval_binary(Opcode.SDIV, i64, big, 0) is None


def test_symex_fold_matches_eval_binary_on_wide_division():
    import random

    from repro.ir import Opcode
    from repro.ir.builder import eval_binary
    from repro.ir.types import IntType
    from repro.symex.expr import ExprOp
    from repro.symex.simplify import binary, const

    i64 = IntType(64)
    rng = random.Random(99)
    pairs = [(ExprOp.SDIV, Opcode.SDIV), (ExprOp.SREM, Opcode.SREM),
             (ExprOp.UDIV, Opcode.UDIV), (ExprOp.UREM, Opcode.UREM)]
    for _ in range(200):
        lhs = rng.getrandbits(64)
        rhs = rng.getrandbits(64) | 1  # nonzero
        for expr_op, opcode in pairs:
            want = eval_binary(opcode, i64, lhs, rhs)
            got = binary(expr_op, const(64, lhs), const(64, rhs)).value
            assert got == want, (expr_op, lhs, rhs)


# --------------------------------------------- finding: not_expr xor order
def test_not_expr_collapses_xor_either_side():
    from repro.symex.expr import Expr, ExprOp
    from repro.symex.simplify import const, not_expr, var

    x = var(1, "b")
    canonical = Expr(ExprOp.XOR, 1, (x, const(1, 1)))
    flipped = Expr(ExprOp.XOR, 1, (const(1, 1), x))
    assert not_expr(canonical) is x
    assert not_expr(flipped) is x


def test_binary_canonicalizes_xor_constant_right():
    from repro.symex.expr import ExprOp
    from repro.symex.simplify import binary, const, var

    x = var(1, "b")
    built = binary(ExprOp.XOR, const(1, 1), x)
    assert built.operands[1].is_constant
