"""Invariant tests for the symbolic-execution hot path: hash-consed
expressions, the extended interval analysis, incremental per-state constraint
groups, copy-on-write forking, and the solver's model-reuse caches."""

import gc
import random

import pytest

from repro.frontend import compile_to_ir
from repro.symex import (
    ExecutionState, Expr, ExprOp, Solver, StackFrame, SymbolicMemory, binary,
    const, explore, ite, sext, trunc, unsigned_interval, var, zext,
)


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------
class TestHashConsing:
    def test_structurally_equal_expressions_are_identical(self):
        x = var(8, "x")
        a = binary(ExprOp.ADD, x, const(8, 7))
        b = binary(ExprOp.ADD, var(8, "x"), const(8, 7))
        assert a is b
        assert hash(a) == hash(b)

    def test_interning_is_recursive(self):
        first = binary(ExprOp.MUL, zext(var(8, "k"), 32), const(32, 3))
        second = binary(ExprOp.MUL, zext(var(8, "k"), 32), const(32, 3))
        assert first is second
        assert first.operands[0] is second.operands[0]

    def test_distinct_expressions_stay_distinct(self):
        x = var(8, "x")
        assert binary(ExprOp.ADD, x, const(8, 1)) is not \
            binary(ExprOp.ADD, x, const(8, 2))
        assert const(8, 5) is not const(16, 5)
        assert var(8, "x") is not var(8, "y")

    def test_interned_nodes_share_memoized_analyses(self):
        a = binary(ExprOp.AND, var(8, "m"), const(8, 0x0F))
        assert unsigned_interval(a) == (0, 0x0F)
        b = binary(ExprOp.AND, var(8, "m"), const(8, 0x0F))
        # Same object: the cached interval and variable set are shared.
        assert b._interval == (0, 0x0F)
        assert a.variables() is b.variables()

    def test_intern_table_entries_are_weak(self):
        def unique_tree():
            return binary(ExprOp.ADD,
                          binary(ExprOp.MUL, var(8, "weaktest"),
                                 const(8, 123)),
                          const(8, 91))

        tree = unique_tree()
        before = Expr.intern_table_size()
        del tree
        gc.collect()
        after = Expr.intern_table_size()
        # The dead tree's non-leaf nodes were evicted (leaves may be kept
        # alive by the strong const/var caches).
        assert after < before

    def test_set_membership_uses_identity(self):
        x = var(8, "x")
        seen = {binary(ExprOp.ULT, x, const(8, 9))}
        assert binary(ExprOp.ULT, x, const(8, 9)) in seen
        assert frozenset([binary(ExprOp.ULT, x, const(8, 9))]) == \
            frozenset(seen)


# ---------------------------------------------------------------------------
# Iterative evaluation
# ---------------------------------------------------------------------------
class TestIterativeEvaluate:
    def test_deep_chain_does_not_recurse(self):
        expr = var(8, "x")
        for _ in range(5000):
            expr = binary(ExprOp.ADD, expr, var(8, "y"))
        # 5000 nested additions would overflow Python's recursion limit in a
        # recursive evaluator.
        assert expr.evaluate({"x": 1, "y": 1}) == (1 + 5000) & 0xFF

    def test_shared_subgraphs_evaluate_once_and_correctly(self):
        x = var(8, "x")
        shared = binary(ExprOp.MUL, x, const(8, 3))
        expr = binary(ExprOp.ADD, shared, binary(ExprOp.XOR, shared,
                                                 const(8, 0xFF)))
        assert expr.size() <= 6  # DAG nodes, not tree nodes
        for value in (0, 1, 77, 255):
            expected = ((value * 3) & 0xFF) + (((value * 3) & 0xFF) ^ 0xFF)
            assert expr.evaluate({"x": value}) == expected & 0xFF

    def test_missing_variable_raises_keyerror(self):
        expr = binary(ExprOp.ADD, var(8, "x"), var(8, "missing"))
        with pytest.raises(KeyError):
            expr.evaluate({"x": 1})

    def test_ite_and_casts_evaluate(self):
        x = var(8, "x")
        cond = binary(ExprOp.ULT, x, const(8, 10))
        expr = ite(cond, zext(x, 32), sext(x, 32))
        assert expr.evaluate({"x": 5}) == 5
        assert expr.evaluate({"x": 0xF0}) == 0xFFFFFFF0
        assert trunc(sext(x, 32), 8).evaluate({"x": 0x90}) == 0x90


# ---------------------------------------------------------------------------
# Extended interval analysis
# ---------------------------------------------------------------------------
class TestUnsignedIntervals:
    def test_sub_without_wraparound(self):
        x, y = var(8, "x"), var(8, "y")
        lhs = binary(ExprOp.ADD, zext(x, 32), const(32, 256))  # [256, 511]
        expr = binary(ExprOp.SUB, lhs, zext(y, 32))            # - [0, 255]
        assert unsigned_interval(expr) == (1, 511)

    def test_sub_with_possible_wraparound_is_full(self):
        x, y = var(8, "x"), var(8, "y")
        expr = binary(ExprOp.SUB, zext(x, 32), zext(y, 32))
        assert unsigned_interval(expr) == (0, (1 << 32) - 1)
        # Wraparound really happens: the conservative answer is required.
        assert expr.evaluate({"x": 0, "y": 1}) == (1 << 32) - 1

    def test_xor_bounded_by_operand_bits(self):
        x, y = var(8, "x"), var(8, "y")
        masked = binary(ExprOp.XOR,
                        binary(ExprOp.AND, x, const(8, 0x0F)),
                        binary(ExprOp.AND, y, const(8, 0x03)))
        low, high = unsigned_interval(masked)
        assert (low, high) == (0, 0x0F)
        for vx in (0, 3, 0xAA, 0xFF):
            for vy in (0, 1, 0x55, 0xFF):
                assert low <= masked.evaluate({"x": vx, "y": vy}) <= high

    def test_shl_with_small_shift(self):
        x = var(8, "x")
        expr = binary(ExprOp.SHL,
                      binary(ExprOp.AND, x, const(8, 0x03)), const(8, 2))
        assert unsigned_interval(expr) == (0, 12)

    def test_shl_that_can_overflow_is_full(self):
        x = var(8, "x")
        expr = binary(ExprOp.SHL, x, const(8, 4))
        assert unsigned_interval(expr) == (0, 255)
        # 0x1F << 4 wraps in 8 bits; the interval must cover the wrap.
        assert expr.evaluate({"x": 0x1F}) == 0xF0

    def test_shl_with_shift_at_least_width_is_full(self):
        # Shift amounts are taken modulo the width at evaluation time;
        # the interval cannot assume anything once the bound reaches it.
        x = var(8, "x")
        expr = binary(ExprOp.SHL, binary(ExprOp.AND, x, const(8, 1)),
                      const(8, 9))
        assert unsigned_interval(expr) == (0, 255)
        assert expr.evaluate({"x": 1}) == 2  # 1 << (9 % 8)

    def test_trunc_preserving_and_clipping(self):
        x = var(8, "x")
        small = binary(ExprOp.AND, zext(x, 32), const(32, 0x7F))
        assert unsigned_interval(trunc(small, 8)) == (0, 0x7F)
        wide = binary(ExprOp.ADD, zext(x, 32), const(32, 0x1F0))
        assert unsigned_interval(trunc(wide, 8)) == (0, 255)
        # The clipped case really wraps: 0x100 & 0xFF == 0.
        assert trunc(wide, 8).evaluate({"x": 0x10}) == 0

    def test_sext_of_never_negative_value(self):
        x = var(8, "x")
        expr = sext(binary(ExprOp.AND, x, const(8, 0x0F)), 32)
        assert unsigned_interval(expr) == (0, 0x0F)

    def test_sext_of_always_negative_value(self):
        x = var(8, "x")
        expr = sext(binary(ExprOp.OR, x, const(8, 0x80)), 16)
        low, high = unsigned_interval(expr)
        assert (low, high) == (0xFF80, 0xFFFF)
        assert expr.evaluate({"x": 0}) == 0xFF80
        assert expr.evaluate({"x": 0x7F}) == 0xFFFF

    def test_sext_of_mixed_sign_value_is_full(self):
        x = var(8, "x")
        expr = sext(x, 16)
        assert unsigned_interval(expr) == (0, 0xFFFF)

    def test_intervals_contain_sampled_evaluations(self):
        rng = random.Random(7)
        x, y = var(8, "x"), var(8, "y")
        ops = [ExprOp.ADD, ExprOp.SUB, ExprOp.MUL, ExprOp.AND, ExprOp.OR,
               ExprOp.XOR, ExprOp.SHL, ExprOp.LSHR]
        for _ in range(300):
            op = rng.choice(ops)
            lhs = rng.choice([x, y, const(8, rng.randrange(256)),
                              binary(ExprOp.AND, x,
                                     const(8, rng.randrange(256)))])
            rhs = rng.choice([x, y, const(8, rng.randrange(256))])
            expr = binary(op, lhs, rhs)
            low, high = unsigned_interval(expr)
            for _ in range(8):
                assignment = {"x": rng.randrange(256),
                              "y": rng.randrange(256)}
                assert low <= expr.evaluate(assignment) <= high


# ---------------------------------------------------------------------------
# Incremental constraint groups
# ---------------------------------------------------------------------------
class TestConstraintGroups:
    def _constraints(self):
        x, y, z = var(8, "x"), var(8, "y"), var(8, "z")
        return (binary(ExprOp.ULT, x, const(8, 10)),
                binary(ExprOp.ULT, y, const(8, 20)),
                binary(ExprOp.EQ, binary(ExprOp.ADD, x, z), const(8, 5)))

    def test_disjoint_constraints_form_separate_groups(self):
        cx, cy, _ = self._constraints()
        state = ExecutionState()
        state.add_constraint(cx)
        state.add_constraint(cy)
        groups = state.constraint_groups()
        assert len(groups) == 2
        assert {frozenset(g) for g in groups} == \
            {frozenset([cx]), frozenset([cy])}

    def test_shared_variable_merges_groups(self):
        cx, cy, cxz = self._constraints()
        state = ExecutionState()
        state.add_constraint(cx)
        state.add_constraint(cy)
        state.add_constraint(cxz)  # shares x: merges with cx's group
        groups = state.constraint_groups()
        assert len(groups) == 2
        assert frozenset([cx, cxz]) in {frozenset(g) for g in groups}

    def test_groups_partition_the_constraint_list(self):
        state = ExecutionState()
        for c in self._constraints():
            state.add_constraint(c)
        flattened = [c for group in state.constraint_groups() for c in group]
        assert sorted(map(id, flattened)) == sorted(map(id, state.constraints))
        # Groups are pairwise variable-disjoint.
        groups = state.constraint_groups()
        for i, a in enumerate(groups):
            vars_a = frozenset().union(*(c.variables() for c in a))
            for b in groups[i + 1:]:
                vars_b = frozenset().union(*(c.variables() for c in b))
                assert not (vars_a & vars_b)

    def test_relevant_constraints_selects_touching_groups_only(self):
        cx, cy, cxz = self._constraints()
        state = ExecutionState()
        for c in (cx, cy, cxz):
            state.add_constraint(c)
        condition = binary(ExprOp.EQ, var(8, "z"), const(8, 1))
        relevant = state.relevant_constraints(condition)
        assert set(map(id, relevant)) == {id(cx), id(cxz)}
        unrelated = binary(ExprOp.EQ, var(8, "w"), const(8, 1))
        assert state.relevant_constraints(unrelated) == []

    def test_fork_isolates_groups(self):
        cx, cy, cxz = self._constraints()
        state = ExecutionState()
        state.add_constraint(cx)
        child = state.fork()
        child.add_constraint(cxz)
        assert len(state.constraints) == 1
        assert len(state.constraint_groups()) == 1
        assert len(child.constraints) == 2
        merged = {frozenset(g) for g in child.constraint_groups()}
        assert frozenset([cx, cxz]) in merged

    def test_true_constraints_are_dropped(self):
        state = ExecutionState()
        state.add_constraint(const(1, 1))
        assert state.constraints == []
        assert state.constraint_groups() == []

    def test_variable_free_false_constraint_is_always_relevant(self):
        state = ExecutionState()
        state.add_constraint(const(1, 0))
        condition = binary(ExprOp.EQ, var(8, "q"), const(8, 1))
        assert const(1, 0) in state.relevant_constraints(condition)
        assert not Solver().is_satisfiable(
            state.relevant_constraints(condition) + [condition])


# ---------------------------------------------------------------------------
# Copy-on-write forking
# ---------------------------------------------------------------------------
class TestCopyOnWrite:
    def test_memory_shares_until_either_side_writes(self):
        memory = SymbolicMemory()
        address = memory.allocate(2, "slot")
        memory.store_concrete_bytes(address, b"\x01\x02")
        clone = memory.fork()
        assert clone.bytes is memory.bytes  # shared until a write
        memory.store_concrete_bytes(address, b"\x09\x02")  # parent writes
        assert clone.load(address, 1).value == 1
        assert memory.load(address, 1).value == 9
        clone.store_concrete_bytes(address + 1, b"\x07")   # child writes
        assert memory.load(address + 1, 1).value == 2
        assert clone.load(address + 1, 1).value == 7

    def test_allocation_after_fork_is_private(self):
        memory = SymbolicMemory()
        memory.allocate(4, "shared")
        clone = memory.fork()
        clone.allocate(4, "child_only")
        assert len(memory.objects) == 1
        assert len(clone.objects) == 2

    def test_stack_frame_values_cow(self):
        module = compile_to_ir("int f() { return 1; }")
        function = module.get_function("f")
        frame = StackFrame(function)
        frame.bind(1, const(8, 10))
        clone = frame.fork()
        assert clone.values is frame.values
        clone.bind(2, const(8, 20))
        assert 2 not in frame.values
        frame.bind(3, const(8, 30))
        assert 3 not in clone.values
        assert frame.values[1] is clone.values[1]

    def test_state_fork_preserves_execution_results(self):
        # End to end: forked exploration still yields the same path set as
        # the seed engine's eager-copy semantics.
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                int total = 0;
                if (input[0] == 'a') { total += 1; }
                if (input[1] == 'b') { total += 2; }
                if (input[0] == 'a') { total += 4; }   /* re-test: no fork */
                return total;
            }
        """)
        report = explore(module, 2)
        assert report.stats.total_paths == 4
        returns = {p.return_value for p in report.paths}
        assert returns == {0, 5, 2, 7}


# ---------------------------------------------------------------------------
# Solver caches
# ---------------------------------------------------------------------------
class TestSolverCaches:
    def test_model_reuse_across_related_queries(self):
        solver = Solver()
        x = var(8, "x")
        first = binary(ExprOp.ULT, x, const(8, 100))
        solver.check([first])
        before = solver.stats.csp_searches
        # A superset query whose extra constraint holds under the cached
        # model: answered by model reuse, no new search.
        second = binary(ExprOp.ULT, x, const(8, 200))
        result = solver.check([first, second])
        assert result.satisfiable
        assert solver.stats.model_cache_hits >= 1
        assert solver.stats.csp_searches == before

    def test_get_model_does_not_resolve_decided_queries(self):
        solver = Solver()
        x = var(8, "x")
        constraints = [binary(ExprOp.EQ, x, const(8, 65))]
        assert solver.check(constraints).satisfiable
        searches = solver.stats.csp_searches
        model = solver.get_model(constraints)
        assert model == {"x": 65}
        assert solver.stats.csp_searches == searches

    def test_get_model_covers_fast_path_variables(self):
        solver = Solver()
        x, y = var(8, "x"), var(8, "y")
        tautology = binary(ExprOp.ULE, zext(x, 32), const(32, 300))
        constraints = [tautology, binary(ExprOp.ULT, y, const(8, 5))]
        model = solver.get_model(constraints)
        assert model is not None
        assert set(model) == {"x", "y"}
        assert all(c.evaluate(model) == 1 for c in constraints)

    def test_check_branch_gets_unsat_side_free(self):
        solver = Solver()
        x = var(8, "x")
        pinned = [binary(ExprOp.EQ, x, const(8, 5))]
        condition = binary(ExprOp.EQ, x, const(8, 7))
        queries = solver.stats.queries
        can_true, can_false = solver.check_branch(pinned, condition)
        assert (can_true, can_false) == (False, True)
        assert solver.stats.branch_sides_free == 1
        assert solver.stats.queries == queries + 1  # single query for both

    def test_check_branch_two_sided(self):
        solver = Solver()
        x = var(8, "x")
        condition = binary(ExprOp.ULT, x, const(8, 128))
        assert solver.check_branch([], condition) == (True, True)
        assert solver.check_branch([], const(1, 1)) == (True, False)
        assert solver.check_branch([], const(1, 0)) == (False, True)

    def test_unary_domains_enumerated_once(self):
        solver = Solver()
        x = var(8, "x")
        constraint = binary(ExprOp.ULT, binary(ExprOp.AND, x, const(8, 0x3F)),
                            const(8, 9))
        solver.check([constraint])
        tried = solver.stats.assignments_tried
        # Same unary constraint in a different (uncachable by query key)
        # conjunction: the satisfying set is reused, no re-enumeration.
        other = binary(ExprOp.ULT, var(8, "other"), const(8, 3))
        solver.check([constraint, other])
        assert solver.stats.assignments_tried <= tried + 256

    def test_wide_variable_equality_solved_via_constant_seeding(self):
        # >16-bit variables get sparse candidate domains; constants from the
        # constraints must be seeded so plain equalities still find models.
        solver = Solver()
        x = var(32, "wide")
        constraints = [binary(ExprOp.EQ, x, const(32, 1000))]
        result = solver.check(constraints)
        assert result.satisfiable
        assert solver.get_model(constraints) == {"wide": 1000}

    def test_wide_variable_never_yields_false_unsat_proof(self):
        # The sparse domain is not exhaustive, so a failed search must come
        # back "maybe satisfiable" (inexact), never an exact UNSAT that
        # check_branch would treat as a proof and use to prune paths.
        solver = Solver()
        x = var(32, "wide2")
        contradiction_free = [
            binary(ExprOp.EQ, binary(ExprOp.MUL, x, x), const(32, 12345)),
        ]
        result = solver.check(contradiction_free)
        assert result.satisfiable or not result.exact

    def test_cached_models_are_not_aliased_by_callers(self):
        solver = Solver()
        x = var(8, "x")
        constraints = [binary(ExprOp.EQ, x, const(8, 65))]
        model = solver.get_model(constraints)
        model["x"] = 0  # caller mutates its copy
        assert solver.get_model(constraints) == {"x": 65}
