"""Invariant tests for the symbolic-execution hot path: hash-consed
expressions, the extended interval analysis, incremental per-state constraint
groups (with and without equality rewriting), copy-on-write forking, and the
solver's model-reuse caches."""

import gc
import random

import pytest

from repro.frontend import compile_to_ir
from repro.symex import (
    ExecutionState, Expr, ExprOp, Solver, SolverConfig, SolverStats,
    StackFrame, SymbolicMemory, binary, bounded_interval, const, explore,
    ite, not_expr, sext, substitute, trunc, unsigned_interval, var, zext,
)


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------
class TestHashConsing:
    def test_structurally_equal_expressions_are_identical(self):
        x = var(8, "x")
        a = binary(ExprOp.ADD, x, const(8, 7))
        b = binary(ExprOp.ADD, var(8, "x"), const(8, 7))
        assert a is b
        assert hash(a) == hash(b)

    def test_interning_is_recursive(self):
        first = binary(ExprOp.MUL, zext(var(8, "k"), 32), const(32, 3))
        second = binary(ExprOp.MUL, zext(var(8, "k"), 32), const(32, 3))
        assert first is second
        assert first.operands[0] is second.operands[0]

    def test_distinct_expressions_stay_distinct(self):
        x = var(8, "x")
        assert binary(ExprOp.ADD, x, const(8, 1)) is not \
            binary(ExprOp.ADD, x, const(8, 2))
        assert const(8, 5) is not const(16, 5)
        assert var(8, "x") is not var(8, "y")

    def test_interned_nodes_share_memoized_analyses(self):
        a = binary(ExprOp.AND, var(8, "m"), const(8, 0x0F))
        assert unsigned_interval(a) == (0, 0x0F)
        b = binary(ExprOp.AND, var(8, "m"), const(8, 0x0F))
        # Same object: the cached interval and variable set are shared.
        assert b._interval == (0, 0x0F)
        assert a.variables() is b.variables()

    def test_intern_table_entries_are_weak(self):
        def unique_tree():
            return binary(ExprOp.ADD,
                          binary(ExprOp.MUL, var(8, "weaktest"),
                                 const(8, 123)),
                          const(8, 91))

        tree = unique_tree()
        before = Expr.intern_table_size()
        del tree
        gc.collect()
        after = Expr.intern_table_size()
        # The dead tree's non-leaf nodes were evicted (leaves may be kept
        # alive by the strong const/var caches).
        assert after < before

    def test_set_membership_uses_identity(self):
        x = var(8, "x")
        seen = {binary(ExprOp.ULT, x, const(8, 9))}
        assert binary(ExprOp.ULT, x, const(8, 9)) in seen
        assert frozenset([binary(ExprOp.ULT, x, const(8, 9))]) == \
            frozenset(seen)


# ---------------------------------------------------------------------------
# Iterative evaluation
# ---------------------------------------------------------------------------
class TestIterativeEvaluate:
    def test_deep_chain_does_not_recurse(self):
        expr = var(8, "x")
        for _ in range(5000):
            expr = binary(ExprOp.ADD, expr, var(8, "y"))
        # 5000 nested additions would overflow Python's recursion limit in a
        # recursive evaluator.
        assert expr.evaluate({"x": 1, "y": 1}) == (1 + 5000) & 0xFF

    def test_shared_subgraphs_evaluate_once_and_correctly(self):
        x = var(8, "x")
        shared = binary(ExprOp.MUL, x, const(8, 3))
        expr = binary(ExprOp.ADD, shared, binary(ExprOp.XOR, shared,
                                                 const(8, 0xFF)))
        assert expr.size() <= 6  # DAG nodes, not tree nodes
        for value in (0, 1, 77, 255):
            expected = ((value * 3) & 0xFF) + (((value * 3) & 0xFF) ^ 0xFF)
            assert expr.evaluate({"x": value}) == expected & 0xFF

    def test_missing_variable_raises_keyerror(self):
        expr = binary(ExprOp.ADD, var(8, "x"), var(8, "missing"))
        with pytest.raises(KeyError):
            expr.evaluate({"x": 1})

    def test_ite_and_casts_evaluate(self):
        x = var(8, "x")
        cond = binary(ExprOp.ULT, x, const(8, 10))
        expr = ite(cond, zext(x, 32), sext(x, 32))
        assert expr.evaluate({"x": 5}) == 5
        assert expr.evaluate({"x": 0xF0}) == 0xFFFFFFF0
        assert trunc(sext(x, 32), 8).evaluate({"x": 0x90}) == 0x90


# ---------------------------------------------------------------------------
# Extended interval analysis
# ---------------------------------------------------------------------------
class TestUnsignedIntervals:
    def test_sub_without_wraparound(self):
        x, y = var(8, "x"), var(8, "y")
        lhs = binary(ExprOp.ADD, zext(x, 32), const(32, 256))  # [256, 511]
        expr = binary(ExprOp.SUB, lhs, zext(y, 32))            # - [0, 255]
        assert unsigned_interval(expr) == (1, 511)

    def test_sub_with_possible_wraparound_is_full(self):
        x, y = var(8, "x"), var(8, "y")
        expr = binary(ExprOp.SUB, zext(x, 32), zext(y, 32))
        assert unsigned_interval(expr) == (0, (1 << 32) - 1)
        # Wraparound really happens: the conservative answer is required.
        assert expr.evaluate({"x": 0, "y": 1}) == (1 << 32) - 1

    def test_xor_bounded_by_operand_bits(self):
        x, y = var(8, "x"), var(8, "y")
        masked = binary(ExprOp.XOR,
                        binary(ExprOp.AND, x, const(8, 0x0F)),
                        binary(ExprOp.AND, y, const(8, 0x03)))
        low, high = unsigned_interval(masked)
        assert (low, high) == (0, 0x0F)
        for vx in (0, 3, 0xAA, 0xFF):
            for vy in (0, 1, 0x55, 0xFF):
                assert low <= masked.evaluate({"x": vx, "y": vy}) <= high

    def test_shl_with_small_shift(self):
        x = var(8, "x")
        expr = binary(ExprOp.SHL,
                      binary(ExprOp.AND, x, const(8, 0x03)), const(8, 2))
        assert unsigned_interval(expr) == (0, 12)

    def test_shl_that_can_overflow_is_full(self):
        x = var(8, "x")
        expr = binary(ExprOp.SHL, x, const(8, 4))
        assert unsigned_interval(expr) == (0, 255)
        # 0x1F << 4 wraps in 8 bits; the interval must cover the wrap.
        assert expr.evaluate({"x": 0x1F}) == 0xF0

    def test_shl_with_shift_at_least_width_is_full(self):
        # Shift amounts are taken modulo the width at evaluation time;
        # the interval cannot assume anything once the bound reaches it.
        x = var(8, "x")
        expr = binary(ExprOp.SHL, binary(ExprOp.AND, x, const(8, 1)),
                      const(8, 9))
        assert unsigned_interval(expr) == (0, 255)
        assert expr.evaluate({"x": 1}) == 2  # 1 << (9 % 8)

    def test_trunc_preserving_and_clipping(self):
        x = var(8, "x")
        small = binary(ExprOp.AND, zext(x, 32), const(32, 0x7F))
        assert unsigned_interval(trunc(small, 8)) == (0, 0x7F)
        wide = binary(ExprOp.ADD, zext(x, 32), const(32, 0x1F0))
        assert unsigned_interval(trunc(wide, 8)) == (0, 255)
        # The clipped case really wraps: 0x100 & 0xFF == 0.
        assert trunc(wide, 8).evaluate({"x": 0x10}) == 0

    def test_sext_of_never_negative_value(self):
        x = var(8, "x")
        expr = sext(binary(ExprOp.AND, x, const(8, 0x0F)), 32)
        assert unsigned_interval(expr) == (0, 0x0F)

    def test_sext_of_always_negative_value(self):
        x = var(8, "x")
        expr = sext(binary(ExprOp.OR, x, const(8, 0x80)), 16)
        low, high = unsigned_interval(expr)
        assert (low, high) == (0xFF80, 0xFFFF)
        assert expr.evaluate({"x": 0}) == 0xFF80
        assert expr.evaluate({"x": 0x7F}) == 0xFFFF

    def test_sext_of_mixed_sign_value_is_full(self):
        x = var(8, "x")
        expr = sext(x, 16)
        assert unsigned_interval(expr) == (0, 0xFFFF)

    def test_intervals_contain_sampled_evaluations(self):
        rng = random.Random(7)
        x, y = var(8, "x"), var(8, "y")
        ops = [ExprOp.ADD, ExprOp.SUB, ExprOp.MUL, ExprOp.AND, ExprOp.OR,
               ExprOp.XOR, ExprOp.SHL, ExprOp.LSHR]
        for _ in range(300):
            op = rng.choice(ops)
            lhs = rng.choice([x, y, const(8, rng.randrange(256)),
                              binary(ExprOp.AND, x,
                                     const(8, rng.randrange(256)))])
            rhs = rng.choice([x, y, const(8, rng.randrange(256))])
            expr = binary(op, lhs, rhs)
            low, high = unsigned_interval(expr)
            for _ in range(8):
                assignment = {"x": rng.randrange(256),
                              "y": rng.randrange(256)}
                assert low <= expr.evaluate(assignment) <= high


# ---------------------------------------------------------------------------
# Incremental constraint groups
# ---------------------------------------------------------------------------
class TestConstraintGroups:
    def _constraints(self):
        x, y, z = var(8, "x"), var(8, "y"), var(8, "z")
        return (binary(ExprOp.ULT, x, const(8, 10)),
                binary(ExprOp.ULT, y, const(8, 20)),
                binary(ExprOp.EQ, binary(ExprOp.ADD, x, z), const(8, 5)))

    def test_disjoint_constraints_form_separate_groups(self):
        cx, cy, _ = self._constraints()
        state = ExecutionState()
        state.add_constraint(cx)
        state.add_constraint(cy)
        groups = state.constraint_groups()
        assert len(groups) == 2
        assert {frozenset(g) for g in groups} == \
            {frozenset([cx]), frozenset([cy])}

    def test_shared_variable_merges_groups(self):
        cx, cy, cxz = self._constraints()
        state = ExecutionState()
        state.add_constraint(cx)
        state.add_constraint(cy)
        state.add_constraint(cxz)  # shares x: merges with cx's group
        groups = state.constraint_groups()
        assert len(groups) == 2
        assert frozenset([cx, cxz]) in {frozenset(g) for g in groups}

    def test_groups_partition_the_constraint_list(self):
        state = ExecutionState()
        for c in self._constraints():
            state.add_constraint(c)
        flattened = [c for group in state.constraint_groups() for c in group]
        assert sorted(map(id, flattened)) == sorted(map(id, state.constraints))
        # Groups are pairwise variable-disjoint.
        groups = state.constraint_groups()
        for i, a in enumerate(groups):
            vars_a = frozenset().union(*(c.variables() for c in a))
            for b in groups[i + 1:]:
                vars_b = frozenset().union(*(c.variables() for c in b))
                assert not (vars_a & vars_b)

    def test_relevant_constraints_selects_touching_groups_only(self):
        cx, cy, cxz = self._constraints()
        state = ExecutionState()
        for c in (cx, cy, cxz):
            state.add_constraint(c)
        condition = binary(ExprOp.EQ, var(8, "z"), const(8, 1))
        relevant = state.relevant_constraints(condition)
        assert set(map(id, relevant)) == {id(cx), id(cxz)}
        unrelated = binary(ExprOp.EQ, var(8, "w"), const(8, 1))
        assert state.relevant_constraints(unrelated) == []

    def test_fork_isolates_groups(self):
        cx, cy, cxz = self._constraints()
        state = ExecutionState()
        state.add_constraint(cx)
        child = state.fork()
        child.add_constraint(cxz)
        assert len(state.constraints) == 1
        assert len(state.constraint_groups()) == 1
        assert len(child.constraints) == 2
        merged = {frozenset(g) for g in child.constraint_groups()}
        assert frozenset([cx, cxz]) in merged

    def test_true_constraints_are_dropped(self):
        state = ExecutionState()
        state.add_constraint(const(1, 1))
        assert state.constraints == []
        assert state.constraint_groups() == []

    def test_variable_free_false_constraint_is_always_relevant(self):
        state = ExecutionState()
        state.add_constraint(const(1, 0))
        condition = binary(ExprOp.EQ, var(8, "q"), const(8, 1))
        assert const(1, 0) in state.relevant_constraints(condition)
        assert not Solver().is_satisfiable(
            state.relevant_constraints(condition) + [condition])


# ---------------------------------------------------------------------------
# Equality rewriting (KLEE's --rewrite-equalities)
# ---------------------------------------------------------------------------
_NAIVE = SolverConfig(independence=False, cache=False, ubtree=False,
                      rewrite_equalities=False, branch_and_prune=False)


def _random_rewrite_sequence(rng):
    """A constraint sequence rich in equalities over small-domain bytes.
    Domain bounds come first so every prefix stays within the naive
    solver's assignment budget (its single-group search is exponential in
    the number of unbounded variables)."""
    names = ["x", "y", "z"]
    sequence = [binary(ExprOp.ULT, var(8, name), const(8, 16))
                for name in names]
    for _ in range(rng.randrange(2, 7)):
        name = rng.choice(names)
        term = var(8, name)
        if rng.random() < 0.4:
            other = rng.choice(names)
            term = binary(rng.choice([ExprOp.ADD, ExprOp.AND, ExprOp.XOR]),
                          term, var(8, other))
        shape = rng.random()
        if shape < 0.4:
            constraint = binary(ExprOp.EQ, term, const(8, rng.randrange(8)))
        elif shape < 0.55:
            constraint = binary(ExprOp.EQ, var(8, name),
                                var(8, rng.choice(names)))
        else:
            constraint = binary(rng.choice([ExprOp.ULT, ExprOp.ULE,
                                            ExprOp.NE]),
                                term, const(8, rng.randrange(1, 16)))
        sequence.append(constraint)
    return sequence


def _assert_partition_invariants(state):
    """The invariants the group machinery guarantees, rewritten or not:
    the groups flatten to exactly the flat constraint list, and groups are
    pairwise variable-disjoint."""
    groups = state.constraint_groups()
    flattened = [c for group in groups for c in group]
    assert sorted(map(id, flattened)) == sorted(map(id, state.constraints))
    for i, a in enumerate(groups):
        vars_a = frozenset().union(*(c.variables() for c in a)) \
            if a else frozenset()
        for b in groups[i + 1:]:
            vars_b = frozenset().union(*(c.variables() for c in b)) \
                if b else frozenset()
            assert not (vars_a & vars_b)


class TestEqualityRewriting:
    def test_equality_substitutes_through_group(self):
        state = ExecutionState()
        x, y = var(8, "x"), var(8, "y")
        state.add_constraint(binary(ExprOp.ULT, x, const(8, 10)))
        state.add_constraint(binary(ExprOp.ULT, y, x))
        state.add_constraint(binary(ExprOp.EQ, x, const(8, 5)))
        # x < 10 folded to true and dropped; y < x rewritten to y < 5.
        rendered = {c.render() for c in state.constraints}
        assert rendered == {"(ult.1 y:8 5:8)", "(eq.1 x:8 5:8)"}
        assert state.rewrites_applied == 2
        _assert_partition_invariants(state)

    def test_expression_level_equality_is_substituted(self):
        # KLEE rewrites whole left-hand sides, not just variables: pinning
        # (x & 0x0F) must rewrite other constraints containing that node.
        state = ExecutionState()
        x = var(8, "x")
        masked = binary(ExprOp.AND, x, const(8, 0x0F))
        state.add_constraint(binary(ExprOp.ULT, masked, const(8, 9)))
        state.add_constraint(binary(ExprOp.EQ, masked, const(8, 3)))
        rendered = {c.render() for c in state.constraints}
        assert rendered == {"(eq.1 (and.8 x:8 15:8) 3:8)"}
        assert state.rewrites_applied == 1

    def test_later_constraints_are_rewritten_on_arrival(self):
        state = ExecutionState()
        x, y = var(8, "x"), var(8, "y")
        state.add_constraint(binary(ExprOp.EQ, x, const(8, 5)))
        state.add_constraint(binary(ExprOp.ULT, x, const(8, 10)))  # -> true
        assert len(state.constraints) == 1
        state.add_constraint(binary(ExprOp.ULT, y, x))  # -> y < 5
        assert "(ult.1 y:8 5:8)" in {c.render() for c in state.constraints}

    def test_contradicting_equality_folds_to_false(self):
        state = ExecutionState()
        x = var(8, "x")
        state.add_constraint(binary(ExprOp.EQ, x, const(8, 5)))
        state.add_constraint(binary(ExprOp.EQ, x, const(8, 6)))
        # The second equality rewrites to the literal false constraint.
        assert any(c.is_constant and c.value == 0
                   for c in state.constraints)
        condition = binary(ExprOp.ULT, var(8, "q"), const(8, 3))
        assert not Solver().is_satisfiable(
            state.relevant_constraints(condition) + [condition])

    def test_group_member_folded_to_false_is_globally_visible(self):
        # The mirror ordering: an *existing* group member rewritten to
        # literal false by an arriving equality must land in the
        # variable-free set exactly like an arriving false, so the
        # contradiction reaches queries on unrelated variables too.
        state = ExecutionState()
        x = var(8, "x")
        state.add_constraint(binary(ExprOp.NE, x, const(8, 5)))
        state.add_constraint(binary(ExprOp.EQ, x, const(8, 5)))
        assert any(c.is_constant and c.value == 0
                   for c in state.constraints)
        condition = binary(ExprOp.ULT, var(8, "q"), const(8, 3))
        assert not Solver().is_satisfiable(
            state.relevant_constraints(condition) + [condition])
        _assert_partition_invariants(state)

    def test_rewrite_folds_decided_conditions(self):
        state = ExecutionState()
        x = var(8, "x")
        state.add_constraint(binary(ExprOp.EQ, x, const(8, 65)))
        folded = state.rewrite(binary(ExprOp.ULT, x, const(8, 70)))
        assert folded.is_constant and folded.value == 1

    def test_metamorphic_rewritten_groups_are_equisatisfiable(self):
        """For random constraint sequences, the rewritten state and the
        unrewritten state must be equisatisfiable after every addition, and
        a model of the rewritten constraints must satisfy the originals."""
        rng = random.Random(0xE0_2026)
        for round_index in range(150):
            sequence = _random_rewrite_sequence(rng)
            rewritten = ExecutionState(rewrite_equalities=True)
            plain = ExecutionState(rewrite_equalities=False)
            for constraint in sequence:
                rewritten.add_constraint(constraint)
                plain.add_constraint(constraint)
                fast = Solver(config=_NAIVE).check(rewritten.constraints)
                slow = Solver(config=_NAIVE).check(plain.constraints)
                assert fast.exact and slow.exact
                assert fast.satisfiable == slow.satisfiable, \
                    (round_index, [c.render() for c in sequence],
                     [c.render() for c in rewritten.constraints])
                _assert_partition_invariants(rewritten)
            if fast.satisfiable:
                model = Solver(config=_NAIVE).get_model(
                    rewritten.constraints)
                variables = set().union(
                    *(c.variables() for c in plain.constraints)) \
                    if plain.constraints else set()
                completed = {name: (model or {}).get(name, 0)
                             for name in variables}
                assert all(c.evaluate(completed) == 1
                           for c in plain.constraints), \
                    (round_index, completed)

    def test_metamorphic_relevant_constraints_agree(self):
        """Branch queries through the rewritten state decide like queries
        through the unrewritten state.  ``relevant_constraints`` is only
        specified under the executor's invariant that the path condition is
        satisfiable (the executor kills UNSAT states), so infeasible
        sequences are skipped — on those, rewriting legitimately folds the
        contradiction into a globally visible literal false while the
        unrewritten state keeps it group-local."""
        rng = random.Random(0xE1_2026)
        compared = 0
        for _ in range(100):
            sequence = _random_rewrite_sequence(rng)
            rewritten = ExecutionState(rewrite_equalities=True)
            plain = ExecutionState(rewrite_equalities=False)
            for constraint in sequence:
                rewritten.add_constraint(constraint)
                plain.add_constraint(constraint)
            if not Solver(config=_NAIVE).check(plain.constraints).satisfiable:
                continue
            compared += 1
            condition = binary(ExprOp.ULT, var(8, rng.choice("xyz")),
                               const(8, rng.randrange(1, 16)))
            fast = Solver(config=_NAIVE).check(
                rewritten.relevant_constraints(condition) + [condition])
            slow = Solver(config=_NAIVE).check(
                plain.relevant_constraints(condition) + [condition])
            assert fast.satisfiable == slow.satisfiable, \
                ([c.render() for c in sequence], condition.render())
        assert compared > 30

    def test_invariants_hold_across_fork(self):
        """Forked rewritten states keep the partition invariants and do not
        leak rewrites back into the parent."""
        rng = random.Random(0xE2_2026)
        for _ in range(60):
            sequence = _random_rewrite_sequence(rng)
            split = len(sequence) // 2
            state = ExecutionState(rewrite_equalities=True)
            for constraint in sequence[:split]:
                state.add_constraint(constraint)
            parent_constraints = list(state.constraints)
            child = state.fork()
            for constraint in sequence[split:]:
                child.add_constraint(constraint)
            _assert_partition_invariants(state)
            _assert_partition_invariants(child)
            assert state.constraints == parent_constraints
            # The child's path condition is equisatisfiable with the whole
            # unrewritten sequence.
            plain = ExecutionState(rewrite_equalities=False)
            for constraint in sequence:
                plain.add_constraint(constraint)
            fast = Solver(config=_NAIVE).check(child.constraints)
            slow = Solver(config=_NAIVE).check(plain.constraints)
            assert fast.satisfiable == slow.satisfiable

    def test_rewrites_counted_into_shared_solver_stats(self):
        stats = SolverStats()
        state = ExecutionState(rewrite_equalities=True, solver_stats=stats)
        x = var(8, "x")
        state.add_constraint(binary(ExprOp.ULT, x, const(8, 10)))
        state.add_constraint(binary(ExprOp.EQ, x, const(8, 5)))
        child = state.fork()
        child.add_constraint(binary(ExprOp.ULE, x, const(8, 9)))  # -> true
        assert state.rewrites_applied == 1
        assert child.rewrites_applied == 2  # inherits the parent's count
        assert stats.equality_rewrites == 2  # shared across the fork

    def test_deep_chains_do_not_overflow_the_expression_walks(self):
        # variables(), unsigned_interval(), substitute() and
        # bounded_interval() must all be iterative like Expr.evaluate: a
        # loop accumulating on symbolic data builds dependent chains far
        # deeper than Python's recursion limit, and nothing warms the
        # per-node memos first when only the final value is branched on.
        x, y = var(8, "deep_x"), var(8, "deep_y")
        expr = x
        for _ in range(3000):
            expr = binary(ExprOp.ADD, expr, y)
        condition = binary(ExprOp.ULT, expr, const(8, 10))
        assert condition.variables() == frozenset({"deep_x", "deep_y"})
        assert unsigned_interval(condition) == (0, 1)
        rewritten = substitute(condition, {y: const(8, 0)})
        assert rewritten.variables() == frozenset({"deep_x"})
        low, high = bounded_interval(condition,
                                     {"deep_x": (0, 5), "deep_y": (0, 5)})
        assert (low, high) == (0, 1)

    def test_accumulation_loop_program_explores_end_to_end(self):
        # The end-to-end shape of the case above: 200 loop iterations of
        # symbolic accumulation produce a cold ~600-node-deep constraint
        # at the only branch; the run must complete, not RecursionError.
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                unsigned char acc = 0;
                for (int i = 0; i < 200; i++) { acc = acc + input[0]; }
                if (acc == 0) { return 1; }
                return 0;
            }
        """)
        report = explore(module, 1)
        assert report.stats.total_paths == 2
        assert {p.return_value for p in report.paths} == {0, 1}

    def test_substitute_rebuilds_through_smart_constructors(self):
        x, y = var(8, "x"), var(8, "y")
        expr = binary(ExprOp.ULT, binary(ExprOp.ADD, x, y), const(8, 50))
        result = substitute(expr, {x: const(8, 5)})
        assert result.render() == "(ult.1 (add.8 y:8 5:8) 50:8)"
        untouched = binary(ExprOp.ULT, y, const(8, 3))
        assert substitute(untouched, {x: const(8, 5)}) is untouched


# ---------------------------------------------------------------------------
# Branch-and-prune interval solving
# ---------------------------------------------------------------------------
class TestBoundedIntervals:
    def test_variable_bounds_are_respected(self):
        w = var(32, "w")
        expr = binary(ExprOp.ADD, w, const(32, 10))
        assert bounded_interval(expr, {"w": (0, 5)}) == (10, 15)
        assert bounded_interval(expr, {}) == (0, (1 << 32) - 1)

    def test_comparison_decided_under_bounds(self):
        w = var(32, "w")
        eq = binary(ExprOp.EQ, w, const(32, 1000))
        assert bounded_interval(eq, {"w": (0, 500)}) == (0, 0)
        assert bounded_interval(eq, {"w": (1000, 1000)}) == (1, 1)
        assert bounded_interval(eq, {"w": (900, 1100)}) == (0, 1)

    def test_signed_comparison_decided_on_sign_pure_bounds(self):
        w = var(32, "w")
        slt = binary(ExprOp.SLT, w, const(32, 100))
        assert bounded_interval(slt, {"w": (0, 50)}) == (1, 1)
        assert bounded_interval(slt, {"w": (200, 300)}) == (0, 0)
        # Negative values (top half) are signed-less-than 100.
        assert bounded_interval(slt, {"w": (1 << 31, (1 << 32) - 1)}) == (1, 1)
        # A range crossing the sign boundary stays undecided.
        assert bounded_interval(slt, {"w": (0, (1 << 32) - 1)}) == (0, 1)

    def test_bounded_intervals_contain_sampled_evaluations(self):
        rng = random.Random(11)
        w, v = var(32, "w"), var(8, "v")
        ops = [ExprOp.ADD, ExprOp.SUB, ExprOp.MUL, ExprOp.AND, ExprOp.OR,
               ExprOp.XOR, ExprOp.LSHR]
        for _ in range(200):
            low = rng.randrange(1 << 16)
            high = low + rng.randrange(1 << 12)
            expr = binary(rng.choice(ops),
                          rng.choice([w, zext(v, 32),
                                      const(32, rng.randrange(1 << 16))]),
                          rng.choice([w, const(32, rng.randrange(1 << 10))]))
            bounds = {"w": (low, high), "v": (0, 255)}
            ivl_low, ivl_high = bounded_interval(expr, bounds)
            for _ in range(8):
                assignment = {"w": rng.randrange(low, high + 1),
                              "v": rng.randrange(256)}
                value = expr.evaluate(assignment)
                assert ivl_low <= value <= ivl_high


class TestBranchAndPrune:
    def test_wide_equality_is_exact_with_model(self):
        solver = Solver()
        w = var(32, "wide_bnp")
        result = solver.check([binary(ExprOp.EQ, w, const(32, 123456))])
        assert result.satisfiable and result.exact
        assert result.model == {"wide_bnp": 123456}
        assert solver.stats.prune_splits > 0

    def test_wide_contradiction_is_proved_unsat(self):
        # The pre-v2 sparse fallback could only answer "maybe satisfiable"
        # here; branch-and-prune delivers the exact UNSAT proof.
        solver = Solver()
        w = var(32, "wide_bnp2")
        result = solver.check([
            binary(ExprOp.ULT, w, const(32, 1000)),
            binary(ExprOp.ULT, const(32, 2000), w),
        ])
        assert not result.satisfiable
        assert result.exact

    def test_mixed_width_group_is_solved(self):
        solver = Solver()
        w, b = var(32, "wide_bnp3"), var(8, "byte_bnp3")
        constraints = [
            binary(ExprOp.EQ, w, binary(ExprOp.ADD, zext(b, 32),
                                        const(32, 100000))),
            binary(ExprOp.ULT, b, const(8, 10)),
        ]
        result = solver.check(constraints)
        assert result.satisfiable and result.exact
        model = solver.get_model(constraints)
        assert all(c.evaluate(model) == 1 for c in constraints)

    def test_flag_off_restores_sparse_fallback(self):
        solver = Solver(config=SolverConfig(branch_and_prune=False))
        w = var(32, "wide_bnp4")
        result = solver.check([
            binary(ExprOp.ULT, w, const(32, 1000)),
            binary(ExprOp.ULT, const(32, 2000), w),
        ])
        # Sparse domains cannot prove UNSAT: conservative inexact answer.
        assert result.satisfiable and not result.exact
        assert solver.stats.prune_splits == 0

    def test_signed_wide_branches_are_decided(self):
        solver = Solver()
        w = var(32, "wide_bnp5")
        negative = binary(ExprOp.SLT, w, const(32, 0))
        positive = binary(ExprOp.SLT, const(32, 0), w)
        result = solver.check([negative, positive])
        assert not result.satisfiable and result.exact
        sat = solver.check([negative])
        assert sat.satisfiable and sat.exact
        assert sat.model is not None and \
            negative.evaluate(sat.model) == 1


class TestSeededSplits:
    """Branch-and-prune split points bisect toward constraint constants
    (ROADMAP follow-on): the satisfying band of an equality starts at such
    a constant, so seeded splits isolate it in O(1) instead of walking
    O(log range) midpoints."""

    def _equality_heavy_query(self, suffix):
        w = var(32, f"seeded_{suffix}")
        m = var(32, f"seeded_m_{suffix}")
        return [
            binary(ExprOp.EQ, w, const(32, 123456)),
            binary(ExprOp.EQ, m, const(32, 987654)),
            binary(ExprOp.ULT, w, m),
        ]

    def test_fewer_prune_splits_on_equality_heavy_wide_query(self):
        seeded = Solver(config=SolverConfig(seeded_splits=True))
        midpoint = Solver(config=SolverConfig(seeded_splits=False))
        seeded_result = seeded.check(self._equality_heavy_query("on"))
        midpoint_result = midpoint.check(self._equality_heavy_query("off"))
        assert seeded_result.satisfiable and seeded_result.exact
        assert midpoint_result.satisfiable and midpoint_result.exact
        assert seeded.stats.prune_splits < midpoint.stats.prune_splits, \
            (seeded.stats.prune_splits, midpoint.stats.prune_splits)
        # The win is structural, not marginal: each equality resolves in a
        # couple of splits instead of a midpoint descent per constant.
        assert seeded.stats.prune_splits <= \
            midpoint.stats.prune_splits // 2

    def test_seeded_and_midpoint_agree(self):
        """Split-point choice is a heuristic: both configurations must
        reach the same (exact) answers and valid models."""
        cases = [
            [binary(ExprOp.EQ, var(32, "sag_a"), const(32, 70000))],
            [binary(ExprOp.ULT, var(32, "sag_b"), const(32, 3)),
             binary(ExprOp.ULT, const(32, 100_000), var(32, "sag_b"))],
            [binary(ExprOp.ULT, const(32, 5), var(32, "sag_c")),
             binary(ExprOp.ULT, var(32, "sag_c"), const(32, 1_000_000))],
        ]
        for constraints in cases:
            seeded = Solver(config=SolverConfig(seeded_splits=True))
            midpoint = Solver(config=SolverConfig(seeded_splits=False))
            a = seeded.check(constraints)
            b = midpoint.check(constraints)
            assert a.satisfiable == b.satisfiable
            assert a.exact and b.exact
            for result in (a, b):
                if result.satisfiable:
                    assert all(c.evaluate(result.model) == 1
                               for c in constraints)

    def test_unsat_equality_pair_proved_quickly(self):
        solver = Solver()
        w = var(32, "seeded_unsat")
        result = solver.check([
            binary(ExprOp.EQ, w, const(32, 55555)),
            binary(ExprOp.EQ, w, const(32, 66666)),
        ])
        assert not result.satisfiable and result.exact
        assert solver.stats.prune_splits <= 8

    def test_backend_flag_reaches_config(self):
        from repro.verification import make_backend
        backend = make_backend("symex<seeded-splits=off>")
        assert backend.solver_config.seeded_splits is False
        assert "seeded-splits=off" in backend.describe()


# ---------------------------------------------------------------------------
# Copy-on-write forking
# ---------------------------------------------------------------------------
class TestCopyOnWrite:
    def test_memory_shares_until_either_side_writes(self):
        memory = SymbolicMemory()
        address = memory.allocate(2, "slot")
        memory.store_concrete_bytes(address, b"\x01\x02")
        clone = memory.fork()
        assert clone.bytes is memory.bytes  # shared until a write
        memory.store_concrete_bytes(address, b"\x09\x02")  # parent writes
        assert clone.load(address, 1).value == 1
        assert memory.load(address, 1).value == 9
        clone.store_concrete_bytes(address + 1, b"\x07")   # child writes
        assert memory.load(address + 1, 1).value == 2
        assert clone.load(address + 1, 1).value == 7

    def test_allocation_after_fork_is_private(self):
        memory = SymbolicMemory()
        memory.allocate(4, "shared")
        clone = memory.fork()
        clone.allocate(4, "child_only")
        assert len(memory.objects) == 1
        assert len(clone.objects) == 2

    def test_stack_frame_values_cow(self):
        module = compile_to_ir("int f() { return 1; }")
        function = module.get_function("f")
        frame = StackFrame(function)
        frame.bind(1, const(8, 10))
        clone = frame.fork()
        assert clone.values is frame.values
        clone.bind(2, const(8, 20))
        assert 2 not in frame.values
        frame.bind(3, const(8, 30))
        assert 3 not in clone.values
        assert frame.values[1] is clone.values[1]

    def test_state_fork_preserves_execution_results(self):
        # End to end: forked exploration still yields the same path set as
        # the seed engine's eager-copy semantics.
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                int total = 0;
                if (input[0] == 'a') { total += 1; }
                if (input[1] == 'b') { total += 2; }
                if (input[0] == 'a') { total += 4; }   /* re-test: no fork */
                return total;
            }
        """)
        report = explore(module, 2)
        assert report.stats.total_paths == 4
        returns = {p.return_value for p in report.paths}
        assert returns == {0, 5, 2, 7}


# ---------------------------------------------------------------------------
# Solver caches
# ---------------------------------------------------------------------------
class TestSolverCaches:
    def test_model_reuse_across_related_queries(self):
        solver = Solver()
        x = var(8, "x")
        first = binary(ExprOp.ULT, x, const(8, 100))
        solver.check([first])
        before = solver.stats.csp_searches
        # A superset query whose extra constraint holds under the cached
        # model: answered by model reuse, no new search.
        second = binary(ExprOp.ULT, x, const(8, 200))
        result = solver.check([first, second])
        assert result.satisfiable
        assert solver.stats.model_cache_hits >= 1
        assert solver.stats.csp_searches == before

    def test_get_model_does_not_resolve_decided_queries(self):
        solver = Solver()
        x = var(8, "x")
        constraints = [binary(ExprOp.EQ, x, const(8, 65))]
        assert solver.check(constraints).satisfiable
        searches = solver.stats.csp_searches
        model = solver.get_model(constraints)
        assert model == {"x": 65}
        assert solver.stats.csp_searches == searches

    def test_get_model_covers_fast_path_variables(self):
        solver = Solver()
        x, y = var(8, "x"), var(8, "y")
        tautology = binary(ExprOp.ULE, zext(x, 32), const(32, 300))
        constraints = [tautology, binary(ExprOp.ULT, y, const(8, 5))]
        model = solver.get_model(constraints)
        assert model is not None
        assert set(model) == {"x", "y"}
        assert all(c.evaluate(model) == 1 for c in constraints)

    def test_check_branch_gets_unsat_side_free(self):
        solver = Solver()
        x = var(8, "x")
        pinned = [binary(ExprOp.EQ, x, const(8, 5))]
        condition = binary(ExprOp.EQ, x, const(8, 7))
        queries = solver.stats.queries
        can_true, can_false = solver.check_branch(pinned, condition)
        assert (can_true, can_false) == (False, True)
        assert solver.stats.branch_sides_free == 1
        assert solver.stats.queries == queries + 1  # single query for both

    def test_check_branch_two_sided(self):
        solver = Solver()
        x = var(8, "x")
        condition = binary(ExprOp.ULT, x, const(8, 128))
        assert solver.check_branch([], condition) == (True, True)
        assert solver.check_branch([], const(1, 1)) == (True, False)
        assert solver.check_branch([], const(1, 0)) == (False, True)

    def test_unary_domains_enumerated_once(self):
        solver = Solver()
        x = var(8, "x")
        constraint = binary(ExprOp.ULT, binary(ExprOp.AND, x, const(8, 0x3F)),
                            const(8, 9))
        solver.check([constraint])
        tried = solver.stats.assignments_tried
        # Same unary constraint in a different (uncachable by query key)
        # conjunction: the satisfying set is reused, no re-enumeration.
        # The allowance covers the new variable's one-off unary enumeration
        # (256) plus the CSP probes over its pruned domain (3 values).
        other = binary(ExprOp.ULT, var(8, "other"), const(8, 3))
        solver.check([constraint, other])
        assert solver.stats.assignments_tried <= tried + 260

    def test_wide_variable_equality_solved_via_constant_seeding(self):
        # >16-bit variables get sparse candidate domains; constants from the
        # constraints must be seeded so plain equalities still find models.
        solver = Solver()
        x = var(32, "wide")
        constraints = [binary(ExprOp.EQ, x, const(32, 1000))]
        result = solver.check(constraints)
        assert result.satisfiable
        assert solver.get_model(constraints) == {"wide": 1000}

    def test_wide_variable_never_yields_false_unsat_proof(self):
        # The sparse domain is not exhaustive, so a failed search must come
        # back "maybe satisfiable" (inexact), never an exact UNSAT that
        # check_branch would treat as a proof and use to prune paths.
        solver = Solver()
        x = var(32, "wide2")
        contradiction_free = [
            binary(ExprOp.EQ, binary(ExprOp.MUL, x, x), const(32, 12345)),
        ]
        result = solver.check(contradiction_free)
        assert result.satisfiable or not result.exact

    def test_get_model_returns_no_witness_on_inexact_answers(self):
        # An inexact ("maybe satisfiable") answer may carry a partial model
        # from the groups that did decide; get_model must not zero-complete
        # it into a fabricated witness that violates the undecided group.
        solver = Solver(max_assignments=10)
        x, y = var(32, "inexact_x"), var(8, "inexact_y")
        constraints = [
            binary(ExprOp.EQ, binary(ExprOp.MUL, x, x), const(32, 3)),
            binary(ExprOp.EQ, y, const(8, 5)),
        ]
        result = solver.check(constraints)
        assert result.satisfiable and not result.exact
        assert solver.get_model(constraints) is None

    def test_cached_models_are_not_aliased_by_callers(self):
        solver = Solver()
        x = var(8, "x")
        constraints = [binary(ExprOp.EQ, x, const(8, 65))]
        model = solver.get_model(constraints)
        model["x"] = 0  # caller mutates its copy
        assert solver.get_model(constraints) == {"x": 65}
