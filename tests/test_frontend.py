"""Tests for the MiniC front end: lexer, parser, semantic analysis, and
lowering (checked by concretely executing the lowered IR)."""

import pytest

from repro.frontend import (
    CompileError, analyze, compile_to_ir, parse, tokenize,
)
from repro.frontend.lexer import TokenKind
from repro.frontend import ast
from repro.frontend.ctype import CInt, CPointer, INT, UCHAR
from repro.interp import Interpreter
from repro.ir import verify_module

from conftest import run_snippet


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("int foo while whileX")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.KEYWORD,
            TokenKind.IDENT]

    def test_integer_literals(self):
        tokens = tokenize("42 0x1F 0 123u 5L")
        values = [t.value for t in tokens[:-1]]
        assert values == [42, 31, 0, 123, 5]

    def test_character_literals_and_escapes(self):
        tokens = tokenize(r"'a' '\n' '\t' '\0' '\\' '\x41'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 9, 0, 92, 65]

    def test_string_literals(self):
        tokens = tokenize(r'"hi\n" ""')
        assert tokens[0].string == b"hi\n"
        assert tokens[1].string == b""

    def test_operators_longest_match(self):
        tokens = tokenize("a<<=b>>c<=d<e++ +=")
        texts = [t.text for t in tokens[:-1] if t.kind is TokenKind.PUNCT]
        assert "<<=" in texts and ">>" in texts and "<=" in texts
        assert "++" in texts and "+=" in texts

    def test_comments_and_preprocessor_skipped(self):
        tokens = tokenize("""
            // line comment
            #include <stdio.h>
            /* block
               comment */ int x;
        """)
        assert tokens[0].is_keyword("int")

    def test_unterminated_string_reports_error(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize('"oops')

    def test_unknown_character_reports_error(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("int $x;")

    def test_locations_tracked(self):
        tokens = tokenize("int\n  x;")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
class TestParser:
    def test_function_definition_shape(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        assert len(unit.functions) == 1
        function = unit.functions[0]
        assert function.name == "add"
        assert [p.name for p in function.parameters] == ["a", "b"]
        assert isinstance(function.body.statements[0], ast.Return)

    def test_extern_declaration(self):
        unit = parse("extern int isspace(int c);")
        assert unit.functions[0].body is None

    def test_global_and_array_declarations(self):
        unit = parse("int counter = 3; unsigned char buffer[16];")
        assert unit.globals[0].name == "counter"
        assert unit.globals[1].var_type.count == 16

    def test_struct_definition(self):
        unit = parse("""
            struct point { int x; int y; };
            int get_x(struct point *p) { return p->x; }
        """)
        assert unit.structs[0].field_names == ["x", "y"]

    def test_operator_precedence(self):
        unit = parse("int f(int a, int b, int c) { return a + b * c; }")
        ret = unit.functions[0].body.statements[0]
        assert isinstance(ret.value, ast.BinaryOp)
        assert ret.value.op == "+"
        assert ret.value.rhs.op == "*"

    def test_logical_operators_are_short_circuit_nodes(self):
        unit = parse("int f(int a, int b) { return a && b || a; }")
        expr = unit.functions[0].body.statements[0].value
        assert isinstance(expr, ast.LogicalOp)
        assert expr.op == "||"
        assert isinstance(expr.lhs, ast.LogicalOp)

    def test_ternary_and_assignment(self):
        unit = parse("int f(int a) { int b = a ? 1 : 2; b += 3; return b; }")
        body = unit.functions[0].body.statements
        assert isinstance(body[0].initializer, ast.Conditional)
        assert isinstance(body[1].expr, ast.Assignment)
        assert body[1].expr.op == "+="

    def test_control_flow_statements(self):
        unit = parse("""
            int f(int n) {
                int total = 0;
                for (int i = 0; i < n; i++) {
                    if (i == 3) { continue; }
                    while (0) { break; }
                    do { total += i; } while (0);
                }
                return total;
            }
        """)
        loop = unit.functions[0].body.statements[1]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.body.statements[0], ast.If)

    def test_pointer_and_cast_expressions(self):
        unit = parse("""
            long f(unsigned char *p) { return (long)*p + sizeof(int); }
        """)
        assert unit.functions[0].parameters[0].param_type == CPointer(UCHAR)

    def test_missing_semicolon_reports_error(self):
        with pytest.raises(CompileError, match="expected"):
            parse("int f() { return 1 }")

    def test_unbalanced_braces_report_error(self):
        with pytest.raises(CompileError):
            parse("int f() { if (1) { return 0; }")


# ---------------------------------------------------------------------------
# Semantic analysis
# ---------------------------------------------------------------------------
class TestSema:
    def test_expression_types_annotated(self):
        unit = analyze(parse("int f(int a) { return a + 1; }"))
        ret = unit.functions[0].body.statements[0]
        assert ret.value.ctype == INT

    def test_undeclared_identifier(self):
        with pytest.raises(CompileError, match="undeclared identifier"):
            analyze(parse("int f() { return missing; }"))

    def test_undeclared_function(self):
        with pytest.raises(CompileError, match="undeclared function"):
            analyze(parse("int f() { return g(); }"))

    def test_call_arity_checked(self):
        with pytest.raises(CompileError, match="expects 2 arguments"):
            analyze(parse("int g(int a, int b) { return a; }"
                          "int f() { return g(1); }"))

    def test_redeclaration_in_same_scope(self):
        with pytest.raises(CompileError, match="redeclaration"):
            analyze(parse("int f() { int x; int x; return 0; }"))

    def test_shadowing_in_inner_scope_allowed(self):
        analyze(parse("int f() { int x = 1; { int x = 2; } return x; }"))

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="outside of a loop"):
            analyze(parse("int f() { break; return 0; }"))

    def test_return_value_in_void_function(self):
        with pytest.raises(CompileError, match="void function"):
            analyze(parse("void f() { return 3; }"))

    def test_missing_return_value(self):
        with pytest.raises(CompileError, match="without a value"):
            analyze(parse("int f() { return; }"))

    def test_assignment_to_rvalue(self):
        with pytest.raises(CompileError, match="not assignable"):
            analyze(parse("int f(int a) { (a + 1) = 3; return a; }"))

    def test_dereference_of_non_pointer(self):
        with pytest.raises(CompileError, match="dereference"):
            analyze(parse("int f(int a) { return *a; }"))

    def test_member_access_on_non_struct(self):
        with pytest.raises(CompileError, match="non-struct"):
            analyze(parse("int f(int a) { return a.x; }"))

    def test_struct_member_types(self):
        unit = analyze(parse("""
            struct pair { int first; char second; };
            int f(struct pair *p) { return p->first + p->second; }
        """))
        # The addition promotes char to int.
        ret = unit.functions[0].body.statements[0]
        assert ret.value.ctype == INT


# ---------------------------------------------------------------------------
# Lowering (validated by executing the result)
# ---------------------------------------------------------------------------
class TestLowering:
    def test_lowered_module_verifies(self):
        module = compile_to_ir("int f(int a) { return a * 2 + 1; }")
        verify_module(module)

    @pytest.mark.parametrize("source,function,args,expected", [
        ("int f(int a, int b) { return a + b; }", "f", [3, 4], 7),
        ("int f(int a) { return -a; }", "f", [5], (-5) & 0xFFFFFFFF),
        ("int f(int a) { return !a; }", "f", [0], 1),
        ("int f(int a) { return ~a; }", "f", [0], 0xFFFFFFFF),
        ("int f(int a, int b) { return a % b; }", "f", [17, 5], 2),
        ("int f(int a) { return a << 3; }", "f", [2], 16),
        ("int f(int a, int b) { return a < b; }", "f", [1, 2], 1),
        ("int f(int a, int b) { return a == b; }", "f", [2, 2], 1),
        ("int f(int a, int b) { return a && b; }", "f", [1, 0], 0),
        ("int f(int a, int b) { return a || b; }", "f", [0, 2], 1),
        ("int f(int a) { return a > 0 ? a : -a; }", "f", [-3 & 0xFFFFFFFF], 3),
    ])
    def test_expression_lowering(self, source, function, args, expected):
        result = run_snippet(source, function, args)
        assert not result.crashed
        assert result.return_value == expected

    def test_unsigned_vs_signed_comparison(self):
        # 255 as unsigned char is greater than 1; as signed char it is -1.
        src_unsigned = "int f(unsigned char a) { return a > 1; }"
        src_signed = "int f(char a) { return a > 1; }"
        assert run_snippet(src_unsigned, "f", [255]).return_value == 1
        assert run_snippet(src_signed, "f", [255]).return_value == 0

    def test_loops_and_mutation(self):
        source = """
        int sum_to(int n) {
            int total = 0;
            for (int i = 1; i <= n; i++) {
                total += i;
            }
            return total;
        }
        """
        assert run_snippet(source, "sum_to", [10]).return_value == 55

    def test_while_break_continue(self):
        source = """
        int f(int n) {
            int total = 0;
            int i = 0;
            while (1) {
                i = i + 1;
                if (i > n) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            return total;
        }
        """
        assert run_snippet(source, "f", [10]).return_value == 25  # 1+3+5+7+9

    def test_do_while(self):
        source = "int f(int n) { int i = 0; do { i++; } while (i < n); return i; }"
        assert run_snippet(source, "f", [5]).return_value == 5
        assert run_snippet(source, "f", [0]).return_value == 1

    def test_pointer_arithmetic_and_deref(self):
        source = """
        int f(int which) {
            unsigned char data[4];
            data[0] = 10; data[1] = 20; data[2] = 30; data[3] = 40;
            unsigned char *p = data;
            p = p + which;
            return *p;
        }
        """
        assert run_snippet(source, "f", [2]).return_value == 30

    def test_pointer_difference(self):
        source = """
        long f() {
            int data[8];
            int *a = data;
            int *b = data + 5;
            return b - a;
        }
        """
        assert run_snippet(source, "f", []).return_value == 5

    def test_struct_field_access(self):
        source = """
        struct pair { int first; int second; };
        int f(int x, int y) {
            struct pair p;
            p.first = x;
            p.second = y;
            return p.first * 100 + p.second;
        }
        """
        assert run_snippet(source, "f", [3, 7]).return_value == 307

    def test_struct_pointer_arrow(self):
        source = """
        struct node { int value; int weight; };
        int get(struct node *n) { return n->value + n->weight; }
        int f() {
            struct node n;
            n.value = 4;
            n.weight = 9;
            return get(&n);
        }
        """
        assert run_snippet(source, "f", []).return_value == 13

    def test_string_literals_are_null_terminated_globals(self):
        source = """
        int f() {
            unsigned char *s = (unsigned char *)"abc";
            int total = 0;
            while (*s) {
                total = total + *s;
                s = s + 1;
            }
            return total;
        }
        """
        assert run_snippet(source, "f", []).return_value == 97 + 98 + 99

    def test_global_variable_initialization_and_update(self):
        source = """
        int counter = 5;
        int bump(int by) { counter = counter + by; return counter; }
        int f() { bump(3); return bump(2); }
        """
        assert run_snippet(source, "f", []).return_value == 10

    def test_recursion(self):
        source = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
        assert run_snippet(source, "fact", [6]).return_value == 720

    def test_prefix_postfix_increment(self):
        source = """
        int f() {
            int i = 5;
            int a = i++;
            int b = ++i;
            return a * 100 + b * 10 + i;
        }
        """
        # a=5, then i=6, then i=7 and b=7, i=7.
        assert run_snippet(source, "f", []).return_value == 577

    def test_char_literal_and_cast(self):
        source = "int f(int c) { return (unsigned char)(c + 'a'); }"
        assert run_snippet(source, "f", [1]).return_value == 98

    def test_comma_operator(self):
        source = "int f(int a) { int b = (a += 1, a * 2); return b; }"
        assert run_snippet(source, "f", [3]).return_value == 8

    def test_sizeof(self):
        source = "long f() { return sizeof(int) + sizeof(char) + sizeof(long); }"
        assert run_snippet(source, "f", []).return_value == 13

    def test_source_type_metadata_preserved_on_allocas(self):
        module = compile_to_ir("int f(unsigned char c) { int x = c; return x; }")
        allocas = [i for i in module.get_function("f").instructions()
                   if i.opcode.value == "alloca"]
        assert any(i.metadata.get("source.type") for i in allocas)
