"""Service stress: concurrent clients, disconnects, backpressure, drain.

The front door's concurrency promises under load: N clients submitting a
mix of duplicate and distinct jobs all get correct (and deduplicated)
answers; a client vanishing mid-job never wedges the server or the job;
a saturated server rejects with a structured ``backpressure`` error that
the retrying client recovers from; and shutdown drains in-flight jobs so
their clients still get answers.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.service import ServiceClient, ServiceError
from repro.service.server import VerificationServer

#: Input-independent busy loop: one path, enough interpreted instructions
#: that a small ``timeout`` budget — not completion — ends the job.  This
#: makes "a job is running" a condition tests can reliably create.
SLOW_SOURCE = """
int main(unsigned char *input, int len) {
    int i = 0;
    int s = 0;
    while (i < 1000000) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
"""


class _RunningServer:
    def __init__(self, tmp_path, name, **kwargs):
        self.socket_path = str(tmp_path / f"{name}.sock")
        self.server = VerificationServer(self.socket_path, **kwargs)
        self.thread = threading.Thread(target=self.server.run, daemon=True)

    def __enter__(self):
        self.thread.start()
        self.client = ServiceClient(self.socket_path, timeout=120.0)
        self.client.wait_until_ready()
        return self

    def __exit__(self, *exc_info):
        try:
            self.client.shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "server did not shut down"

    def wait_for_active_job(self, deadline=20.0):
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            if self.client.stats()["active_jobs"] >= 1:
                return
            time.sleep(0.02)
        pytest.fail("no job became active in time")


def test_concurrent_clients_duplicate_and_distinct(tmp_path):
    with _RunningServer(tmp_path, "mix", pool_size=2) as running:
        results = {}
        errors = []
        # 4 identical submissions (dedupe/memo fodder) + 4 distinct jobs.
        jobs = [("dup", dict(workload="wc", level="-O0", input_bytes=3))
                for _ in range(4)]
        jobs += [("uniq", dict(workload="uniq", level="-O0", input_bytes=3)),
                 ("wc-o2", dict(workload="wc", level="-O2", input_bytes=3)),
                 ("wc-2b", dict(workload="wc", level="-O0", input_bytes=2)),
                 ("grep", dict(workload="grep", level="-O0", input_bytes=3))]

        def submit(index, tag, kwargs):
            try:
                client = ServiceClient(running.socket_path, timeout=120.0)
                results[index] = (tag, client.verify(**kwargs))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((tag, exc))

        threads = [threading.Thread(target=submit, args=(index, tag, kwargs))
                   for index, (tag, kwargs) in enumerate(jobs)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(results) == len(jobs)
        # Every duplicate got the same answer by one of the three legal
        # routes: ran it, rode the in-flight job, or hit the memo.
        dup = [result for tag, result in results.values() if tag == "dup"]
        assert len({result["paths"] for result in dup}) == 1
        assert len({tuple(map(tuple, result["bug_signatures"]))
                    for result in dup}) == 1
        stats = running.client.stats()
        # Deduped submissions ride another job instead of running one:
        # every submission is accounted exactly once between the two.
        assert stats["jobs_completed"] + stats["jobs_deduped"] == len(jobs)
        assert stats["jobs_deduped"] == \
            sum(1 for result in dup if result["deduped"])
        assert stats["jobs_failed"] == 0
        assert stats["active_jobs"] == 0


def test_client_disconnect_mid_job_does_not_wedge(tmp_path):
    with _RunningServer(tmp_path, "gone", pool_size=1) as running:
        payload = {"op": "verify", "source": SLOW_SOURCE, "level": "-O0",
                   "timeout": 2.0}
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(10.0)
            sock.connect(running.socket_path)
            sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            running.wait_for_active_job()
        # The submitting client is gone; the server must stay responsive
        # and the orphaned job must still complete (and be memoized).
        assert running.client.ping() is True
        end = time.monotonic() + 60.0
        while time.monotonic() < end:
            stats = running.client.stats()
            if stats["jobs_completed"] >= 1:
                break
            time.sleep(0.1)
        else:
            pytest.fail("orphaned job never completed")
        # The finished job's memo answers the next client instantly.
        result = running.client.verify(source=SLOW_SOURCE, level="-O0",
                                       timeout=2.0)
        assert result["provenance"] == "memo-hit"


def test_backpressure_rejection_and_client_retry(tmp_path):
    with _RunningServer(tmp_path, "full", pool_size=1,
                        max_pending=1) as running:
        slow_result = {}

        def submit_slow():
            client = ServiceClient(running.socket_path, timeout=120.0)
            slow_result["response"] = client.verify(
                source=SLOW_SOURCE, level="-O0", timeout=3.0)

        slow = threading.Thread(target=submit_slow)
        slow.start()
        try:
            running.wait_for_active_job()
            # The slot is taken: a *distinct* job bounces with a hint...
            impatient = ServiceClient(running.socket_path, timeout=30.0)
            with pytest.raises(ServiceError) as excinfo:
                impatient.verify(workload="wc", level="-O0", input_bytes=2)
            assert excinfo.value.kind == "backpressure"
            assert excinfo.value.retryable is True
            assert excinfo.value.retry_after > 0
            # ...a *duplicate* of the running job rides it for free...
            dup = ServiceClient(running.socket_path, timeout=120.0) \
                .verify(source=SLOW_SOURCE, level="-O0", timeout=3.0)
            assert dup["deduped"] is True
            # ...and a retrying client wins a slot once the job drains.
            patient = ServiceClient(running.socket_path, timeout=120.0,
                                    retries=30, backoff=0.25,
                                    backoff_cap=0.5)
            result = patient.verify(workload="wc", level="-O0",
                                    input_bytes=2)
            assert result["ok"] is True
        finally:
            slow.join(timeout=60)
        assert not slow.is_alive()
        assert slow_result["response"]["ok"] is True
        stats = running.client.stats()
        assert stats["jobs_rejected"] >= 1
        assert stats["jobs_deduped"] >= 1


def test_shutdown_drains_inflight_jobs(tmp_path):
    running = _RunningServer(tmp_path, "drain", pool_size=1)
    with running:
        slow_result = {}

        def submit_slow():
            client = ServiceClient(running.socket_path, timeout=120.0)
            slow_result["response"] = client.verify(
                source=SLOW_SOURCE, level="-O0", timeout=2.0)

        slow = threading.Thread(target=submit_slow)
        slow.start()
        running.wait_for_active_job()
        running.client.shutdown()
        slow.join(timeout=60)
        assert not slow.is_alive(), "in-flight job was not drained"
        # The drained job answered normally — shutdown waited for it.
        assert slow_result["response"]["ok"] is True
    # __exit__'s second shutdown raced the close; that is fine.


def test_submissions_during_drain_are_rejected(tmp_path):
    with _RunningServer(tmp_path, "late", pool_size=1) as running:
        server = running.server
        # Simulate the drain window without tearing the socket down.
        server._draining = True
        try:
            with pytest.raises(ServiceError) as excinfo:
                running.client.verify(workload="wc", level="-O0",
                                      input_bytes=2)
            assert excinfo.value.kind == "shutting-down"
            assert excinfo.value.retryable is False
        finally:
            server._draining = False
        result = running.client.verify(workload="wc", level="-O0",
                                       input_bytes=2)
        assert result["ok"] is True
