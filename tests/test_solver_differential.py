"""Randomized differential test for the solver's optimization layers.

Every query answered by a long-lived solver with caching, independence
decomposition, model reuse, and interning warm must agree with a fresh
naive configuration (``Solver(enable_cache=False,
enable_independence=False)``) on the same query.  The acceptance bar is
>= 1,000 generated queries per run.

Queries are generated small enough that the naive CSP always terminates
within the assignment budget, so both configurations produce exact answers
and must match bit for bit.
"""

import random

from repro.symex import ExprOp, Solver, binary, const, not_expr, var

QUERY_COUNT = 1200

_COMPARISONS = [ExprOp.EQ, ExprOp.NE, ExprOp.ULT, ExprOp.ULE,
                ExprOp.SLT, ExprOp.SLE]
_ARITH = [ExprOp.ADD, ExprOp.SUB, ExprOp.MUL, ExprOp.AND, ExprOp.OR,
          ExprOp.XOR, ExprOp.SHL, ExprOp.LSHR]


def _random_term(rng, variables, depth=0):
    """A width-8 term over ``variables`` (at most the given names)."""
    if depth >= 2 or rng.random() < 0.45:
        if rng.random() < 0.6:
            return var(8, rng.choice(variables))
        return const(8, rng.randrange(256))
    op = rng.choice(_ARITH)
    lhs = _random_term(rng, variables, depth + 1)
    rhs = _random_term(rng, variables, depth + 1)
    return binary(op, lhs, rhs)


def _random_constraint(rng, variables):
    op = rng.choice(_COMPARISONS)
    lhs = _random_term(rng, variables)
    rhs = _random_term(rng, variables)
    constraint = binary(op, lhs, rhs)
    if rng.random() < 0.25:
        constraint = not_expr(constraint)
    return constraint


def _random_query(rng):
    """1-3 random constraints over at most two distinct variables, plus a
    unary domain bound per variable.  The bounds keep the naive
    single-group CSP small (its search is quadratic in the domain sizes),
    so both solver configurations always answer exactly."""
    variables = rng.choice([["x"], ["y"], ["x", "y"]])
    count = rng.randrange(1, 4)
    query = [_random_constraint(rng, variables) for _ in range(count)]
    for name in variables:
        query.append(binary(ExprOp.ULT, var(8, name),
                            const(8, rng.choice([16, 32, 48]))))
    return query


def test_optimized_solver_agrees_with_naive_on_random_queries():
    rng = random.Random(20260729)
    optimized = Solver()  # long-lived: caches stay warm across queries
    queries = []
    for _ in range(QUERY_COUNT):
        query = _random_query(rng)
        queries.append(query)
        # Re-ask a prefix/superset of an earlier query now and then, to
        # drive the model-reuse and subset/superset cache paths.
        if len(queries) > 10 and rng.random() < 0.3:
            earlier = rng.choice(queries[:-1])
            if rng.random() < 0.5:
                query = earlier[:max(1, len(earlier) - 1)]
            else:
                query = earlier + query[:1]
            queries.append(query)

    assert len(queries) >= 1000
    disagreements = []
    for index, query in enumerate(queries):
        fast = optimized.check(query)
        naive = Solver(enable_cache=False, enable_independence=False)
        slow = naive.check(query)
        assert fast.exact and slow.exact, \
            "differential queries must stay within the search budget"
        if fast.satisfiable != slow.satisfiable:
            disagreements.append((index, query, fast.satisfiable,
                                  slow.satisfiable))
        if fast.satisfiable:
            model = optimized.get_model(query)
            assert model is not None
            assert all(c.evaluate(model) == 1 for c in query), \
                (index, [c.render() for c in query], model)
    assert not disagreements, disagreements[:3]
    # The run must actually have exercised the optimization layers.
    stats = optimized.stats
    assert stats.cache_hits > 0
    assert stats.model_cache_hits > 0
    assert stats.fast_path_decisions > 0


def test_differential_may_be_true_false_and_branches():
    """The branch primitive agrees with two independent naive queries."""
    rng = random.Random(1337)
    optimized = Solver()
    for index in range(300):
        constraints = _random_query(rng)
        condition = _random_constraint(rng, ["x", "y"])
        naive = Solver(enable_cache=False, enable_independence=False)
        base_sat = naive.check(constraints).satisfiable
        if not base_sat:
            continue  # check_branch assumes a satisfiable base
        expected = (naive.may_be_true(constraints, condition),
                    naive.may_be_false(constraints, condition))
        got = optimized.check_branch(constraints, condition)
        assert got == expected, (index, [c.render() for c in constraints],
                                 condition.render())
