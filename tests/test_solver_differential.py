"""Randomized differential tests for the solver's optimization layers.

Two generations of machinery are locked down here:

* the PR 3 layers (caching, independence decomposition, model reuse,
  interning) via a long-lived optimized solver checked against a fresh
  cache-free naive configuration on >= 1,000 generated queries;
* the Solver-v2 layers via a **feature-flag matrix**: every on/off
  combination of {ubtree, rewrite-equalities, branch-and-prune} answers the
  same >= 500 randomized queries and must produce the naive configuration's
  verdict bit for bit, with every returned model re-checked by substitution
  into the *original* (unrewritten) query;
* branch-and-prune separately against an analytic ground truth on wide
  (>16-bit) variable queries, where the naive sparse fallback is inexact.

Queries are generated small enough that the naive CSP always terminates
within the assignment budget, so both configurations produce exact answers
and must match bit for bit.  ``SOLVER_DIFFERENTIAL_QUERIES`` /
``SOLVER_DIFFERENTIAL_MATRIX_QUERIES`` shrink the query counts for smoke
runs (the CI gate uses this to keep a reduced matrix in every pipeline).
"""

import itertools
import os
import random

import pytest

from repro.symex import (
    ExecutionState, ExprOp, Solver, SolverConfig, binary, const, not_expr,
    var,
)

QUERY_COUNT = int(os.environ.get("SOLVER_DIFFERENTIAL_QUERIES", "1200"))
MATRIX_QUERY_COUNT = int(
    os.environ.get("SOLVER_DIFFERENTIAL_MATRIX_QUERIES", "500"))
WIDE_QUERY_COUNT = int(
    os.environ.get("SOLVER_DIFFERENTIAL_WIDE_QUERIES", "300"))

#: Every optimization layer off: the trusted baseline configuration.
NAIVE_CONFIG = SolverConfig(independence=False, cache=False, ubtree=False,
                            rewrite_equalities=False, branch_and_prune=False)

_COMPARISONS = [ExprOp.EQ, ExprOp.NE, ExprOp.ULT, ExprOp.ULE,
                ExprOp.SLT, ExprOp.SLE]
_ARITH = [ExprOp.ADD, ExprOp.SUB, ExprOp.MUL, ExprOp.AND, ExprOp.OR,
          ExprOp.XOR, ExprOp.SHL, ExprOp.LSHR]


def _random_term(rng, variables, depth=0):
    """A width-8 term over ``variables`` (at most the given names)."""
    if depth >= 2 or rng.random() < 0.45:
        if rng.random() < 0.6:
            return var(8, rng.choice(variables))
        return const(8, rng.randrange(256))
    op = rng.choice(_ARITH)
    lhs = _random_term(rng, variables, depth + 1)
    rhs = _random_term(rng, variables, depth + 1)
    return binary(op, lhs, rhs)


def _random_constraint(rng, variables):
    op = rng.choice(_COMPARISONS)
    lhs = _random_term(rng, variables)
    rhs = _random_term(rng, variables)
    constraint = binary(op, lhs, rhs)
    if rng.random() < 0.25:
        constraint = not_expr(constraint)
    return constraint


def _random_query(rng):
    """1-3 random constraints over at most two distinct variables, plus a
    unary domain bound per variable.  The bounds keep the naive
    single-group CSP small (its search is quadratic in the domain sizes),
    so both solver configurations always answer exactly."""
    variables = rng.choice([["x"], ["y"], ["x", "y"]])
    count = rng.randrange(1, 4)
    query = [_random_constraint(rng, variables) for _ in range(count)]
    for name in variables:
        query.append(binary(ExprOp.ULT, var(8, name),
                            const(8, rng.choice([16, 32, 48]))))
    return query


def test_optimized_solver_agrees_with_naive_on_random_queries():
    rng = random.Random(20260729)
    optimized = Solver()  # long-lived: caches stay warm across queries
    queries = []
    for _ in range(QUERY_COUNT):
        query = _random_query(rng)
        queries.append(query)
        # Re-ask a prefix/superset of an earlier query now and then, to
        # drive the model-reuse and subset/superset cache paths.
        if len(queries) > 10 and rng.random() < 0.3:
            earlier = rng.choice(queries[:-1])
            if rng.random() < 0.5:
                query = earlier[:max(1, len(earlier) - 1)]
            else:
                query = earlier + query[:1]
            queries.append(query)

    assert len(queries) >= QUERY_COUNT
    disagreements = []
    for index, query in enumerate(queries):
        fast = optimized.check(query)
        naive = Solver(enable_cache=False, enable_independence=False)
        slow = naive.check(query)
        assert fast.exact and slow.exact, \
            "differential queries must stay within the search budget"
        if fast.satisfiable != slow.satisfiable:
            disagreements.append((index, query, fast.satisfiable,
                                  slow.satisfiable))
        if fast.satisfiable:
            model = optimized.get_model(query)
            assert model is not None
            assert all(c.evaluate(model) == 1 for c in query), \
                (index, [c.render() for c in query], model)
    assert not disagreements, disagreements[:3]
    # The run must actually have exercised the optimization layers.
    stats = optimized.stats
    assert stats.cache_hits > 0
    assert stats.model_cache_hits > 0
    assert stats.fast_path_decisions > 0
    assert stats.ubtree_hits > 0


def test_differential_may_be_true_false_and_branches():
    """The branch primitive agrees with two independent naive queries."""
    rng = random.Random(1337)
    optimized = Solver()
    for index in range(300):
        constraints = _random_query(rng)
        condition = _random_constraint(rng, ["x", "y"])
        naive = Solver(enable_cache=False, enable_independence=False)
        base_sat = naive.check(constraints).satisfiable
        if not base_sat:
            continue  # check_branch assumes a satisfiable base
        expected = (naive.may_be_true(constraints, condition),
                    naive.may_be_false(constraints, condition))
        got = optimized.check_branch(constraints, condition)
        assert got == expected, (index, [c.render() for c in constraints],
                                 condition.render())


# ---------------------------------------------------------------------------
# The Solver-v2 feature-flag matrix
# ---------------------------------------------------------------------------
def _matrix_queries(rng):
    """Like :func:`_random_query`, with two twists that give the v2 layers
    traction: plain equalities (both ``var == const`` and
    ``expr == const``) appear frequently, and earlier queries are re-asked
    as subsets/supersets to drive the UBTree containment lookups."""
    queries = []
    while len(queries) < MATRIX_QUERY_COUNT:
        query = _random_query(rng)
        if rng.random() < 0.5:
            name = rng.choice(["x", "y"])
            lhs = var(8, name) if rng.random() < 0.5 \
                else binary(ExprOp.AND, var(8, name),
                            const(8, rng.choice([0x0F, 0x3F, 0x7F])))
            query.append(binary(ExprOp.EQ, lhs,
                                const(8, rng.randrange(48))))
        rng.shuffle(query)
        queries.append(query)
        if len(queries) > 10 and rng.random() < 0.25:
            earlier = rng.choice(queries[:-1])
            if rng.random() < 0.5:
                queries.append(earlier[:max(1, len(earlier) - 1)])
            else:
                queries.append(earlier + query[:1])
    return queries


@pytest.fixture(scope="module")
def matrix_baseline():
    """The shared query list plus the naive configuration's verdicts."""
    rng = random.Random(0xB5EED)
    queries = _matrix_queries(rng)
    naive = Solver(config=NAIVE_CONFIG)
    verdicts = []
    for query in queries:
        result = naive.check(query)
        assert result.exact, "matrix queries must stay within the budget"
        verdicts.append(result.satisfiable)
    return queries, verdicts


def _rewrite_through_state(query, enabled):
    """Route a query through ``ExecutionState.add_constraint`` (where
    equality rewriting lives) and return the resulting path condition."""
    state = ExecutionState(rewrite_equalities=enabled)
    for constraint in query:
        state.add_constraint(constraint)
    return list(state.constraints), state


@pytest.mark.parametrize(
    "ubtree,rewrite,branch_and_prune",
    list(itertools.product([False, True], repeat=3)),
    ids=lambda flag: {True: "on", False: "off"}[flag])
def test_feature_flag_matrix_agrees_with_naive(matrix_baseline, ubtree,
                                               rewrite, branch_and_prune):
    """Each of the 8 flag combinations answers every query with the naive
    verdict, and every SAT model — produced from the *rewritten* constraint
    set — satisfies the *original* query by substitution."""
    queries, verdicts = matrix_baseline
    assert len(queries) >= MATRIX_QUERY_COUNT
    solver = Solver(config=SolverConfig(
        ubtree=ubtree, rewrite_equalities=rewrite,
        branch_and_prune=branch_and_prune))
    mismatches = []
    for index, (query, expected) in enumerate(zip(queries, verdicts)):
        effective, _ = _rewrite_through_state(query, rewrite)
        result = solver.check(effective)
        assert result.exact, (index, [c.render() for c in effective])
        if result.satisfiable != expected:
            mismatches.append((index, [c.render() for c in query],
                               result.satisfiable, expected))
            continue
        if result.satisfiable:
            model = solver.get_model(effective)
            assert model is not None, (index, [c.render() for c in query])
            variables = set().union(*(c.variables() for c in query))
            completed = {name: model.get(name, 0) for name in variables}
            assert all(c.evaluate(completed) == 1 for c in query), \
                (index, [c.render() for c in query], completed)
    assert not mismatches, mismatches[:3]


def test_matrix_full_configuration_exercises_all_layers(matrix_baseline):
    """With every flag on, the matrix workload must actually drive the new
    machinery (otherwise the matrix proves nothing)."""
    queries, _ = matrix_baseline
    solver = Solver()
    rewrites = 0
    for query in queries:
        effective, state = _rewrite_through_state(query, True)
        rewrites += state.rewrites_applied
        solver.check(effective)
    assert solver.stats.ubtree_hits > 0
    assert solver.stats.ubtree_misses > 0
    assert rewrites > 0


# ---------------------------------------------------------------------------
# Branch-and-prune on wide variables, against an analytic ground truth
# ---------------------------------------------------------------------------
_WIDE_WIDTH = 32


def _random_wide_query(rng):
    """1-4 direct comparisons of a 32-bit variable against constants.

    For this family every satisfiable conjunction has a witness among the
    *critical points* (each constant and its neighbours, plus the domain
    and sign boundaries), so an exact ground truth is one evaluation pass —
    no solver in the loop.
    """
    w = var(_WIDE_WIDTH, "w")
    constants = []
    query = []
    for _ in range(rng.randrange(1, 5)):
        op = rng.choice(_COMPARISONS)
        value = rng.choice([
            rng.randrange(1 << _WIDE_WIDTH),
            rng.randrange(0, 4096),
            (1 << _WIDE_WIDTH) - 1 - rng.randrange(0, 4096),
            (1 << (_WIDE_WIDTH - 1)) + rng.randrange(-2048, 2048),
        ]) & ((1 << _WIDE_WIDTH) - 1)
        constants.append(value)
        if rng.random() < 0.5:
            query.append(binary(op, w, const(_WIDE_WIDTH, value)))
        else:
            query.append(binary(op, const(_WIDE_WIDTH, value), w))
    return query, constants


def _wide_ground_truth(query, constants):
    mask_value = (1 << _WIDE_WIDTH) - 1
    critical = {0, 1, mask_value, mask_value - 1,
                1 << (_WIDE_WIDTH - 1), (1 << (_WIDE_WIDTH - 1)) - 1}
    for value in constants:
        critical.update({(value - 1) & mask_value, value,
                         (value + 1) & mask_value})
    for point in critical:
        if all(c.evaluate({"w": point}) == 1 for c in query):
            return True, point
    return False, None


def test_branch_and_prune_is_exact_on_wide_queries():
    """Wide-variable queries that the sparse fallback answers inexactly are
    decided exactly (and correctly) by branch-and-prune."""
    rng = random.Random(0x51DE)
    sparse_inexact = 0
    unsat_seen = 0
    for index in range(WIDE_QUERY_COUNT):
        query, constants = _random_wide_query(rng)
        expected, witness = _wide_ground_truth(query, constants)
        solver = Solver(config=SolverConfig(cache=False))
        result = solver.check(query)
        assert result.exact, \
            (index, [c.render() for c in query], "budget exhausted")
        assert result.satisfiable == expected, \
            (index, [c.render() for c in query], witness)
        if expected:
            model = solver.get_model(query)
            assert model is not None
            assert all(c.evaluate(model) == 1 for c in query), \
                (index, [c.render() for c in query], model)
        else:
            unsat_seen += 1
            # The pre-v2 sparse fallback cannot prove UNSAT for wide
            # variables: it must come back "maybe satisfiable" (inexact).
            old = Solver(config=SolverConfig(cache=False,
                                             branch_and_prune=False))
            old_result = old.check(query)
            if old_result.satisfiable and not old_result.exact:
                sparse_inexact += 1
    assert unsat_seen > 0, "the generator produced no UNSAT wide queries"
    assert sparse_inexact > 0, \
        "no query separated branch-and-prune from the sparse fallback"


def test_branch_and_prune_budget_exhaustion_stays_conservative():
    """A wide query outside interval arithmetic's reach must degrade to the
    conservative inexact answer, never to a wrong UNSAT proof."""
    w = var(_WIDE_WIDTH, "w")
    hard = [binary(ExprOp.EQ, binary(ExprOp.MUL, w, w),
                   const(_WIDE_WIDTH, 12345))]
    solver = Solver(config=SolverConfig(cache=False))
    result = solver.check(hard)
    assert result.satisfiable or not result.exact
    assert solver.stats.prune_splits > 0
