"""Tests for the verification service: UNSAT-core minimization, the
store-backed backend (memo + warm provenance), injectable solver caches,
and the socket front door end to end (dedupe, memo hits, stats, restart
persistence)."""

import threading

import pytest

from repro.pipelines import (
    CompileOptions, CompilerSession, OptLevel, parse_opt_level,
)
from repro.service import ServiceClient, ServiceError, VerificationServer
from repro.service.store import SolverKnowledgeStore
from repro.symex import (
    ExprOp, SharedSolverCaches, Solver, SolverConfig, binary, const,
    not_expr, var,
)
from repro.verification import VerificationRequest, make_backend
from repro.workloads import get_workload

# ------------------------------------------------- UNSAT-core minimization


def _contradiction_with_padding():
    """Two directly contradictory constraints buried in satisfiable
    padding: the minimal core is the contradiction alone.  The padding
    shares variable ``in0`` with the contradiction so independence
    decomposition keeps everything in one constraint group."""
    a, b, c = var(8, "in0"), var(8, "in1"), var(8, "in2")
    core = [binary(ExprOp.EQ, a, const(8, 1)),
            binary(ExprOp.EQ, a, const(8, 2))]
    padding = [binary(ExprOp.ULT, binary(ExprOp.ADD, a, b), const(8, 200)),
               not_expr(binary(ExprOp.EQ, binary(ExprOp.XOR, a, c),
                               const(8, 9)))]
    return core, padding


def test_unsat_core_is_minimized_before_indexing():
    core, padding = _contradiction_with_padding()
    solver = Solver()
    result = solver.check(padding[:1] + core + padding[1:])
    assert not result.satisfiable
    assert solver.stats.cores_minimized == 1
    # The indexed core is the 2-constraint contradiction: any superset —
    # including ones never seen before — is answered by containment.
    fresh = [binary(ExprOp.EQ, var(8, "in1"), const(8, 77))] + core
    stats_before = solver.stats.ubtree_hits
    assert not solver.check(fresh).satisfiable
    assert solver.stats.ubtree_hits == stats_before + 1


def test_core_minimization_can_be_disabled():
    core, padding = _contradiction_with_padding()
    solver = Solver(config=SolverConfig(minimize_cores=False))
    assert not solver.check(padding[:1] + core + padding[1:]).satisfiable
    assert solver.stats.cores_minimized == 0


def test_core_minimization_probes_do_not_inflate_stats():
    """The greedy drop loop re-solves subsets; those probe solves must
    not leak into the public counters the benchmarks floor on."""
    core, padding = _contradiction_with_padding()
    baseline = Solver(config=SolverConfig(minimize_cores=False))
    baseline.check(padding[:1] + core + padding[1:])
    minimizing = Solver()
    minimizing.check(padding[:1] + core + padding[1:])
    assert minimizing.stats.csp_searches <= baseline.stats.csp_searches
    assert minimizing.stats.assignments_tried <= \
        baseline.stats.assignments_tried


def test_minimized_verdicts_match_unminimized():
    """Feature-flag differential: minimization must never change a
    verdict, only what lands in the UNSAT index."""
    import random

    rng = random.Random(7)
    names = ["in0", "in1", "in2"]
    comparisons = [ExprOp.EQ, ExprOp.NE, ExprOp.ULT, ExprOp.ULE]
    plain = Solver(config=SolverConfig(minimize_cores=False, cache=False,
                                       ubtree=False))
    minimizing = Solver()
    for _ in range(150):
        group = [binary(rng.choice(comparisons),
                        var(8, rng.choice(names)),
                        const(8, rng.randrange(256)))
                 for _ in range(rng.randrange(2, 6))]
        assert minimizing.check(group).satisfiable == \
            plain.check(group).satisfiable


# ------------------------------------------------- store-backed backend


@pytest.fixture(scope="module")
def wc_build():
    workload = get_workload("wc")
    session = CompilerSession()
    module = session.compile(
        workload.source,
        options=CompileOptions(level=OptLevel.OVERIFY)).module
    return workload, module


def test_backend_store_memo_round_trip(tmp_path, wc_build):
    workload, module = wc_build
    store_path = tmp_path / "knowledge.jsonl"
    request = VerificationRequest(symbolic_input_bytes=4)

    cold = make_backend("symex", store=str(store_path)) \
        .verify(module, request)
    assert cold.provenance == "cold"
    memo = make_backend("symex", store=str(store_path)) \
        .verify(module, request)
    assert memo.provenance == "memo-hit"
    assert memo.seconds == 0.0
    assert memo.paths == cold.paths
    assert memo.errors == cold.errors
    assert memo.instructions == cold.instructions
    assert memo.bug_signatures == cold.bug_signatures
    # The memo reconstructs the full report, test inputs included.
    assert sorted(p.test_input for p in memo.detail.paths) == \
        sorted(p.test_input for p in cold.detail.paths)


def test_backend_memo_key_tracks_the_request(tmp_path, wc_build):
    workload, module = wc_build
    store_path = tmp_path / "knowledge.jsonl"
    make_backend("symex", store=str(store_path)).verify(
        module, VerificationRequest(symbolic_input_bytes=4))
    # A different request is a different verification: no memo hit, but
    # the primed solver knowledge still applies where groups overlap.
    changed = make_backend("symex", store=str(store_path)).verify(
        module, VerificationRequest(symbolic_input_bytes=4,
                                    max_instructions=4_999_999))
    assert changed.provenance in ("cold", "warm-store")
    assert changed.provenance != "memo-hit"


def test_backend_memo_key_tracks_the_config(tmp_path, wc_build):
    workload, module = wc_build
    store_path = tmp_path / "knowledge.jsonl"
    request = VerificationRequest(symbolic_input_bytes=4)
    make_backend("symex", store=str(store_path)).verify(module, request)
    other = make_backend("symex<searcher=bfs>", store=str(store_path)) \
        .verify(module, request)
    assert other.provenance != "memo-hit"


def test_backend_warm_store_provenance(tmp_path, wc_build):
    """Same constraints, different verification (the memo misses because
    the instruction budget differs): primed groups answer queries, and
    the run reports warm-store."""
    workload, module = wc_build
    store_path = tmp_path / "knowledge.jsonl"
    make_backend("symex", store=str(store_path)).verify(
        module, VerificationRequest(symbolic_input_bytes=4))
    warm = make_backend("symex", store=str(store_path)).verify(
        module, VerificationRequest(symbolic_input_bytes=4,
                                    max_instructions=4_999_999))
    assert warm.provenance == "warm-store"
    assert warm.solver_stats["store_hits"] > 0


def test_backend_tolerates_corrupt_store(tmp_path, wc_build):
    workload, module = wc_build
    store_path = tmp_path / "knowledge.jsonl"
    store_path.write_text("garbage that is definitely not a store\n")
    request = VerificationRequest(symbolic_input_bytes=4)
    outcome = make_backend("symex", store=str(store_path)) \
        .verify(module, request)
    assert outcome.provenance == "cold"
    # The run rewrote the store; the next one memo-hits.
    again = make_backend("symex", store=str(store_path)) \
        .verify(module, request)
    assert again.provenance == "memo-hit"


def test_backend_injected_caches_are_reused(wc_build):
    """Two runs sharing one injected cache set: the second run's group
    queries hit the first run's entries (ordinary cache hits — injected
    knowledge is not store-primed, so provenance stays cold)."""
    workload, module = wc_build
    caches = SharedSolverCaches(num_stripes=1)
    request = VerificationRequest(symbolic_input_bytes=4)
    backend = make_backend("symex", caches=caches)
    first = backend.verify(module, request)
    second = backend.verify(module, request)
    assert second.provenance == "cold"
    assert second.paths == first.paths
    assert second.solver_stats["cache_hits"] > \
        first.solver_stats["cache_hits"] - 1
    # The shared set saved real solving: run 2 searched less than run 1.
    assert second.solver_stats["csp_searches"] <= \
        first.solver_stats["csp_searches"]


def test_interp_backend_ignores_service_defaults(wc_build):
    """make_backend drops defaults a backend does not accept: handing the
    service's caches/store defaults to interp must not error."""
    workload, module = wc_build
    backend = make_backend("interp", caches=SharedSolverCaches(),
                           store="/nonexistent/path.jsonl")
    outcome = backend.verify(
        module, VerificationRequest(concrete_input=b"a b\n"))
    assert outcome.backend == "interp"


def test_store_spec_round_trips_through_describe(tmp_path, wc_build):
    workload, module = wc_build
    store_path = str(tmp_path / "knowledge.jsonl")
    backend = make_backend("symex", store=store_path)
    described = backend.describe()
    assert f"store={store_path}" in described
    rebuilt = make_backend(described)
    assert rebuilt.describe() == described
    outcome = rebuilt.verify(module,
                             VerificationRequest(symbolic_input_bytes=4))
    assert outcome.provenance == "cold"


# --------------------------------------------------------- socket front door


class _RunningServer:
    def __init__(self, tmp_path, name, **kwargs):
        self.socket_path = str(tmp_path / f"{name}.sock")
        self.server = VerificationServer(self.socket_path, **kwargs)
        self.thread = threading.Thread(target=self.server.run, daemon=True)

    def __enter__(self):
        self.thread.start()
        self.client = ServiceClient(self.socket_path, timeout=120.0)
        self.client.wait_until_ready()
        return self

    def __exit__(self, *exc_info):
        try:
            self.client.shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "server did not shut down"


def test_server_end_to_end(tmp_path):
    store_path = tmp_path / "knowledge.jsonl"
    with _RunningServer(tmp_path, "e2e", store_path=store_path,
                        pool_size=2) as running:
        client = running.client
        assert client.ping() is True

        first = client.verify(workload="wc", level="-OVERIFY", job_id="a")
        assert first["ok"] and first["op"] == "verify"
        assert first["id"] == "a"
        assert first["provenance"] == "cold"
        assert first["deduped"] is False
        assert first["paths"] > 0

        second = client.verify(workload="wc", level="-OVERIFY", job_id="b")
        assert second["provenance"] == "memo-hit"
        assert second["paths"] == first["paths"]
        assert second["bug_signatures"] == first["bug_signatures"]
        assert second["verify_seconds"] == 0.0

        # A different level is a different job.
        other = client.verify(workload="wc", level="-O2")
        assert other["provenance"] != "memo-hit"

        stats = client.stats()
        assert stats["jobs_completed"] == 3
        assert stats["memo_hits"] == 1
        assert stats["store_records"] > 0
    assert store_path.exists()


def test_server_persists_across_restart(tmp_path):
    store_path = tmp_path / "knowledge.jsonl"
    with _RunningServer(tmp_path, "first", store_path=store_path) as running:
        cold = running.client.verify(workload="uniq", level="-OVERIFY")
        assert cold["provenance"] == "cold"
    # A brand-new server over the same store answers from the memo.
    with _RunningServer(tmp_path, "second", store_path=store_path) as running:
        warm = running.client.verify(workload="uniq", level="-OVERIFY")
        assert warm["provenance"] == "memo-hit"
        assert warm["paths"] == cold["paths"]
        assert running.client.stats()["primed_entries"] > 0


def test_server_dedupes_concurrent_identical_jobs(tmp_path):
    with _RunningServer(tmp_path, "dedupe", pool_size=2) as running:
        results = []
        errors = []

        def submit():
            try:
                client = ServiceClient(running.socket_path, timeout=120.0)
                results.append(client.verify(workload="wc", level="-O0",
                                             input_bytes=4))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(results) == 4
        paths = {result["paths"] for result in results}
        assert len(paths) == 1  # everyone got the same answer
        stats = running.client.stats()
        # At least one submission rode an in-flight duplicate (the rest
        # may have memo-hit if they arrived after completion).
        deduped = [r for r in results if r["deduped"]]
        memoized = [r for r in results if r["provenance"] == "memo-hit"]
        assert stats["jobs_deduped"] == len(deduped)
        assert len(deduped) + len(memoized) >= 1
        assert any(not r["deduped"] and r["provenance"] != "memo-hit"
                   for r in results)  # exactly one actually ran... at most
    # memory-only server: nothing was written anywhere
    assert list(tmp_path.glob("*.jsonl")) == []


def test_server_inline_source_and_errors(tmp_path):
    with _RunningServer(tmp_path, "errors") as running:
        client = running.client
        source = """
        int main(unsigned char *input, int len) {
            if (len < 1) { return 0; }
            int c = input[0];
            return 100 / (c - 42);
        }
        """
        result = client.verify(source=source, level="-O0", input_bytes=1)
        assert result["errors"] > 0
        assert any("division" in part for signature
                   in result["bug_signatures"] for part in signature)

        with pytest.raises(ServiceError, match="workload"):
            client.verify(level="-O0")
        with pytest.raises(ServiceError, match="not both"):
            client.request({"op": "verify", "workload": "wc",
                            "source": "int main(void){return 0;}"})
        with pytest.raises(ServiceError, match="unknown op"):
            client.request({"op": "frobnicate"})
        with pytest.raises(ServiceError):
            client.verify(workload="no-such-workload")
        # Failures are reported, never fatal: the server still answers.
        assert client.ping() is True
        assert client.stats()["jobs_failed"] >= 3


def test_client_error_when_server_absent(tmp_path):
    client = ServiceClient(tmp_path / "nobody-home.sock", timeout=1.0)
    with pytest.raises(ServiceError):
        client.ping()


def test_session_compile_and_verify(tmp_path):
    """The session-level convenience used by service workers and scripts:
    one call compiles and verifies, sharing the session's caches."""
    session = CompilerSession()
    workload = get_workload("wc")
    result, outcome = session.compile_and_verify(
        workload.source, level=parse_opt_level("-OVERIFY"))
    assert result.level == OptLevel.OVERIFY
    assert outcome.paths > 0
    assert outcome.provenance == "cold"
    # String backend specs resolve through make_backend.
    _, interp = session.compile_and_verify(
        workload.source, level=OptLevel.O2, backend="interp",
        request=VerificationRequest(concrete_input=b"one two\n"))
    assert interp.backend == "interp"
