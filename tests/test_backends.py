"""Tests for the :class:`VerificationBackend` protocol: registry, textual
specs, searcher selection, and parity with driving the engines by hand."""

import pytest

from repro.harness import ExperimentConfig, run_experiment, run_level_sweep
from repro.interp import InterpBackend, run_module
from repro.pipelines import OptLevel, compile_source
from repro.symex import SymexBackend, SymexLimits, explore
from repro.verification import (
    BackendSpecError, VerificationRequest, backend_names, make_backend,
)
from repro.workloads import get_workload


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert {"symex", "interp"} <= set(backend_names())

    def test_spec_parsing_and_describe(self):
        assert make_backend("symex").describe() == "symex"
        assert make_backend("symex<searcher=bfs>").describe() == \
            "symex<searcher=bfs>"
        assert isinstance(make_backend("interp"), InterpBackend)
        assert isinstance(make_backend("symex"), SymexBackend)

    def test_default_params_fill_gaps_but_spec_wins(self):
        assert make_backend("symex", searcher="random").searcher == "random"
        assert make_backend("symex<searcher=bfs>",
                            searcher="random").searcher == "bfs"
        # defaults the backend does not understand are dropped
        assert isinstance(make_backend("interp", searcher="dfs"),
                          InterpBackend)

    def test_unknown_backend_error(self):
        with pytest.raises(BackendSpecError, match="unknown verification "
                                                   "backend 'klee'"):
            make_backend("klee")

    def test_unknown_searcher_error(self):
        # surfaces as a BackendSpecError so CLI error handling catches it
        with pytest.raises(BackendSpecError,
                           match="unknown search strategy"):
            make_backend("symex<searcher=zigzag>")

    def test_explicit_unknown_param_rejected(self):
        with pytest.raises(BackendSpecError, match="rejected parameters"):
            make_backend("interp<searcher=dfs>")

    def test_duplicate_backend_param_rejected(self):
        with pytest.raises(BackendSpecError, match="duplicate parameter"):
            make_backend("symex<searcher=bfs,searcher=dfs>")


class TestBackendParity:
    """Backends must report exactly what hand-driving the engines reports."""

    def test_symex_backend_matches_explore(self, compiled_wc):
        request = VerificationRequest(symbolic_input_bytes=2,
                                      timeout_seconds=30.0)
        outcome = make_backend("symex").verify(compiled_wc.module, request)
        report = explore(compiled_wc.module, 2,
                         limits=SymexLimits(timeout_seconds=30.0,
                                            max_instructions=5_000_000))
        assert outcome.paths == report.stats.total_paths
        assert outcome.errors == report.stats.paths_errored
        assert outcome.instructions == report.stats.instructions_interpreted
        assert outcome.bug_signatures == frozenset(report.bug_signatures())
        assert not outcome.timed_out

    def test_searchers_agree_on_path_count(self, compiled_wc):
        request = VerificationRequest(symbolic_input_bytes=2,
                                      timeout_seconds=30.0)
        counts = {
            name: make_backend(f"symex<searcher={name}>")
            .verify(compiled_wc.module, request).paths
            for name in ("dfs", "bfs", "random")
        }
        assert counts["dfs"] == counts["bfs"] == counts["random"]

    def test_interp_backend_matches_run_module(self, compiled_wc):
        request = VerificationRequest(concrete_input=b"one two\n")
        outcome = make_backend("interp").verify(compiled_wc.module, request)
        result = run_module(compiled_wc.module, b"one two\n")
        assert outcome.return_value == result.return_value
        assert outcome.instructions == result.stats.instructions_executed
        assert outcome.paths == 1
        assert outcome.errors == 0

    def test_interp_backend_honors_instruction_budget(self, compiled_wc):
        request = VerificationRequest(concrete_input=b"one two\n",
                                      max_instructions=10)
        outcome = make_backend("interp").verify(compiled_wc.module, request)
        assert outcome.errors == 1
        assert outcome.timed_out

    def test_interp_backend_reports_crashes(self):
        compiled = compile_source(get_workload("buggy_div").source,
                                  level=OptLevel.O0)
        request = VerificationRequest(concrete_input=b"0abc")
        outcome = make_backend("interp").verify(compiled.module, request)
        assert outcome.errors == 1
        assert len(outcome.bug_signatures) == 1


class TestExperimentHarness:
    def test_run_experiment_parity_with_manual_engines(self):
        source = get_workload("wc").source
        config = ExperimentConfig(level=OptLevel.O2, symbolic_input_bytes=2,
                                  concrete_input=b"a b\n",
                                  timeout_seconds=30.0)
        result = run_experiment("wc", source, config)

        compiled = compile_source(source, level=OptLevel.O2)
        report = explore(compiled.module, 2,
                         limits=SymexLimits(timeout_seconds=30.0,
                                            max_instructions=5_000_000))
        concrete = run_module(compiled.module, b"a b\n")

        assert result.paths == report.stats.total_paths
        assert result.errors == report.stats.paths_errored
        assert result.static_instructions == compiled.instruction_count
        assert result.interpreted_instructions == \
            report.stats.instructions_interpreted
        assert result.concrete_instructions == \
            concrete.stats.instructions_executed
        assert result.return_value == concrete.return_value
        assert result.verify_backend == "symex"

    def test_run_experiment_with_named_searcher(self):
        source = get_workload("echo").source
        config = ExperimentConfig(level=OptLevel.O0, symbolic_input_bytes=2,
                                  timeout_seconds=30.0, searcher="bfs")
        result = run_experiment("echo", source, config)
        assert result.verify_backend == "symex<searcher=bfs>"
        assert result.paths > 0

    def test_run_level_sweep_preserves_config_fields(self):
        # run_level_sweep copies the config with dataclasses.replace, so
        # non-default fields (like the backend spec) survive into every
        # level's experiment.
        source = get_workload("echo").source
        base = ExperimentConfig(level=OptLevel.O0, symbolic_input_bytes=2,
                                timeout_seconds=30.0, searcher="bfs")
        results = run_level_sweep("echo", source,
                                  [OptLevel.O0, OptLevel.O2], base)
        assert set(results) == {OptLevel.O0, OptLevel.O2}
        for result in results.values():
            assert result.verify_backend == "symex<searcher=bfs>"
