"""Tests for the path-count pass stack: SCCP, the available-memory
analysis with load elimination, and algebraic simplification.

Three layers of coverage, mirroring the passes' layering:

* **lattice properties** — SCCP's meet operator over an exhaustive cell
  universe (commutative, associative, idempotent, monotonically
  descending), plus the φ-over-executable-edges behaviour on real IR;
* **alias-kill units** — the :class:`AvailableMemory` transfer function on
  hand-built IR: which stores and calls kill which facts;
* **differential sweep** — every registered workload compiled with and
  without the new passes must agree under both the interpreter and the
  symbolic executor (same outputs, same bug signatures): path counts may
  change, behaviour may not.
"""

import itertools

import pytest

from repro.analysis import AvailableMemory, function_metrics
from repro.frontend import analyze, compile_to_ir, lower, parse
from repro.interp import Interpreter, run_module
from repro.ir import (
    BasicBlock, ConstantInt, FunctionType, I32, IRBuilder, LoadInst, Module,
    Opcode, PointerType, verify_module,
)
from repro.passes import (
    AlgebraicSimplify, BOTTOM_CELL, DeadCodeElimination, InstCombine,
    LatticeCell, LoadElimination, PassManager, PromoteMemoryToRegisters,
    SimplifyCFG, SparseConditionalConstantPropagation, TOP_CELL, const_cell,
    meet,
)
from repro.pipelines import (
    CompileOptions, LEVEL_PIPELINES, OptLevel, build_pipeline_from_text,
    link_sources,
)
from repro.symex import SymexLimits, explore
from repro.workloads import get_workload, workload_names

from conftest import (
    assert_same_behaviour, optimize_snippet, run_ir_function,
)


# ---------------------------------------------------------------------------
# SCCP: lattice properties
# ---------------------------------------------------------------------------
#: Exhaustive cell universe for the property tests: both poles plus enough
#: constants to exercise the agree/disagree cases.
CELLS = [TOP_CELL, BOTTOM_CELL] + [const_cell(c) for c in (-2, -1, 0, 1, 2)]


class TestSCCPLattice:
    @pytest.mark.parametrize("a,b", list(itertools.product(CELLS, CELLS)))
    def test_meet_is_commutative(self, a, b):
        assert meet(a, b) == meet(b, a)

    @pytest.mark.parametrize(
        "a,b,c", list(itertools.product(CELLS, CELLS, CELLS)))
    def test_meet_is_associative(self, a, b, c):
        assert meet(meet(a, b), c) == meet(a, meet(b, c))

    @pytest.mark.parametrize("a", CELLS)
    def test_meet_is_idempotent_with_poles(self, a):
        assert meet(a, a) == a
        assert meet(TOP_CELL, a) == a       # ⊤ is the identity
        assert meet(BOTTOM_CELL, a) == BOTTOM_CELL  # ⊥ absorbs

    @pytest.mark.parametrize("a,b", list(itertools.product(CELLS, CELLS)))
    def test_meet_only_descends(self, a, b):
        """Monotonicity: the meet never climbs the lattice, which is what
        guarantees the SCCP worklists terminate."""
        result = meet(a, b)
        assert result.height <= min(a.height, b.height)

    def test_disagreeing_constants_fall_to_bottom(self):
        assert meet(const_cell(1), const_cell(2)) == BOTTOM_CELL
        assert meet(const_cell(3), const_cell(3)) == const_cell(3)

    def test_cell_state_predicates(self):
        assert TOP_CELL.is_top and not TOP_CELL.is_constant
        assert BOTTOM_CELL.is_bottom
        cell = const_cell(7)
        assert cell.is_constant and cell.constant == 7
        assert isinstance(cell, LatticeCell)


# ---------------------------------------------------------------------------
# SCCP: the transform on real IR
# ---------------------------------------------------------------------------
SCCP_PASSES = lambda: [SimplifyCFG(), PromoteMemoryToRegisters(),
                       SparseConditionalConstantPropagation()]


class TestSCCPTransform:
    def test_phi_meets_over_executable_edges_only(self):
        # The else edge is provably dead, so the φ must fold to 3 even
        # though its dead-edge operand is the unknown parameter.
        source = """
        int f(int a) {
            int t = 1;
            int x = 0;
            if (t > 0) { x = 3; } else { x = a; }
            return x;
        }
        """
        module, manager = assert_same_behaviour(
            source, SCCP_PASSES(), "f", [[0], [7], [-3]])
        metrics = function_metrics(module.get_function("f"))
        assert metrics.conditional_branches == 0
        assert manager.stats.branch_edges_deleted >= 1
        assert manager.stats.blocks_removed >= 1

    def test_optimism_sees_through_loop_phis(self):
        # Pessimistic constprop cannot prove x == 0 here: the φ's back-edge
        # operand comes from a branch guarded by x != 0, a cycle only an
        # optimistic ⊤-seeded fixpoint breaks.
        source = """
        int f(int n) {
            int x = 0;
            for (int i = 0; i < n; i++) {
                if (x != 0) { x = 2; }
            }
            return x;
        }
        """
        module, manager = assert_same_behaviour(
            source, SCCP_PASSES(), "f", [[0], [1], [5]])
        assert manager.stats.branch_edges_deleted >= 1
        # The x != 0 arm is gone; only the loop's own branch remains.
        metrics = function_metrics(module.get_function("f"))
        assert metrics.conditional_branches <= 1

    def test_constant_diamond_folds_to_return(self):
        source = """
        int f(int a) {
            int x = 0;
            if (a > 0) { x = 5; } else { x = 5; }
            return x + 1;
        }
        """
        module, _ = assert_same_behaviour(
            source, SCCP_PASSES(), "f", [[1], [-1]])
        function = module.get_function("f")
        # Both arms agree, so the φ is CONST and the add materializes as 6.
        returns = [inst for inst in function.instructions()
                   if inst.opcode is Opcode.RET]
        assert all(isinstance(r.operands[0], ConstantInt)
                   and r.operands[0].value == 6 for r in returns)

    def test_sccp_keeps_genuinely_unknown_branches(self):
        source = "int f(int a) { if (a > 0) { return 1; } return 2; }"
        module, manager = assert_same_behaviour(
            source, SCCP_PASSES(), "f", [[1], [0]])
        assert function_metrics(
            module.get_function("f")).conditional_branches == 1
        assert manager.stats.branch_edges_deleted == 0


# ---------------------------------------------------------------------------
# Available-memory analysis: alias-kill rules
# ---------------------------------------------------------------------------
def _memory_function(pointer_params=2):
    module = Module("t")
    params = tuple(PointerType(I32) for _ in range(pointer_params))
    function = module.create_function("f", FunctionType(I32, params))
    block = BasicBlock("entry")
    function.append_block(block)
    builder = IRBuilder()
    builder.set_insert_point(block)
    return module, function, builder


class TestAvailableMemoryKills:
    def test_store_creates_fact(self):
        _, function, builder = _memory_function()
        p = function.arguments[0]
        builder.store(ConstantInt(I32, 1), p)
        facts = {}
        for inst in function.entry_block.instructions:
            AvailableMemory.transfer(facts, inst)
        fact = facts[id(p)]
        assert fact.size == 4
        assert isinstance(fact.value, ConstantInt) and fact.value.value == 1

    def test_may_aliasing_store_kills_fact(self):
        # p and q are both unknown pointers: a store through q may clobber
        # *p, so p's fact must die while q's survives.
        _, function, builder = _memory_function()
        p, q = function.arguments
        builder.store(ConstantInt(I32, 1), p)
        builder.store(ConstantInt(I32, 2), q)
        facts = {}
        for inst in function.entry_block.instructions:
            AvailableMemory.transfer(facts, inst)
        assert id(p) not in facts
        assert id(q) in facts

    def test_distinct_allocas_do_not_kill_each_other(self):
        _, function, builder = _memory_function(pointer_params=0)
        a = builder.alloca(I32, name="a")
        b = builder.alloca(I32, name="b")
        builder.store(ConstantInt(I32, 1), a)
        builder.store(ConstantInt(I32, 2), b)
        facts = {}
        for inst in function.entry_block.instructions:
            AvailableMemory.transfer(facts, inst)
        assert id(a) in facts and id(b) in facts

    def test_call_kills_escaped_but_not_local_facts(self):
        module, function, builder = _memory_function(pointer_params=1)
        external = module.create_function("g", FunctionType(I32, ()))
        p = function.arguments[0]
        local = builder.alloca(I32, name="local")
        builder.store(ConstantInt(I32, 1), p)
        builder.store(ConstantInt(I32, 2), local)
        builder.call(external, [])
        facts = {}
        for inst in function.entry_block.instructions:
            AvailableMemory.transfer(facts, inst)
        # The callee can write through any escaped pointer (the parameter
        # came from outside), but not through a never-escaping alloca.
        assert id(p) not in facts
        assert id(local) in facts

    def test_passing_alloca_to_call_escapes_it(self):
        module, function, builder = _memory_function(pointer_params=0)
        sink = module.create_function(
            "sink", FunctionType(I32, (PointerType(I32),)))
        local = builder.alloca(I32, name="local")
        builder.store(ConstantInt(I32, 3), local)
        builder.call(sink, [local])
        facts = {}
        for inst in function.entry_block.instructions:
            AvailableMemory.transfer(facts, inst)
        assert id(local) not in facts

    def test_load_records_its_own_value(self):
        _, function, builder = _memory_function(pointer_params=1)
        p = function.arguments[0]
        loaded = builder.load(p, name="v")
        facts = {}
        for inst in function.entry_block.instructions:
            AvailableMemory.transfer(facts, inst)
        assert facts[id(p)].value is loaded

    def test_entry_facts_meet_is_intersection(self):
        # A fact established before a memory-silent diamond survives the
        # join; a fact established in only one arm does not — and a store
        # through an unrelated unknown pointer in one arm kills even the
        # pre-diamond fact, because the meet intersects the arm where it
        # was clobbered.
        quiet = """
        int f(int *p, int flag) {
            *p = 42;
            int r = 0;
            if (flag > 0) { r = 1; } else { r = 2; }
            return r + *p;
        }
        """
        noisy = """
        int f(int *p, int *q, int flag) {
            *p = 42;
            if (flag > 0) { *q = 7; } else { flag = 2; }
            return *p + flag;
        }
        """

        def analysis_and_function(source):
            module = compile_to_ir(source)
            manager = PassManager(verify_after_each=True)
            manager.extend([SimplifyCFG(), PromoteMemoryToRegisters()])
            manager.run_until_fixpoint(module)
            function = module.get_function("f")
            return AvailableMemory(function), function

        memory, function = analysis_and_function(quiet)
        join = function.blocks[-1]
        assert memory.available_value(join, function.arguments[0], 4) \
            is not None

        memory, function = analysis_and_function(noisy)
        join = function.blocks[-1]
        p, q = function.arguments[0], function.arguments[1]
        assert memory.available_value(join, q, 4) is None  # one arm only
        assert memory.available_value(join, p, 4) is None  # killed by *q


# ---------------------------------------------------------------------------
# Load elimination (functional)
# ---------------------------------------------------------------------------
def _run_with_buffer(module, flag, contents=b"\x00\x00\x00\x00"):
    interp = Interpreter(module)
    pointer = interp.allocate_buffer(contents)
    result = interp.run_function("f", [pointer, flag])
    assert not result.crashed, result.error
    return result.return_value


class TestLoadElimination:
    PASSES = lambda self: [SimplifyCFG(), PromoteMemoryToRegisters(),
                           LoadElimination()]

    def test_forwards_store_across_blocks(self):
        # GVN only forwards within a block; the reload of *p after the
        # diamond is exactly the cross-block case this pass exists for.
        source = """
        int f(int *p, int flag) {
            *p = 40;
            int r = 0;
            if (flag > 0) { r = 1; } else { r = 2; }
            return r + *p;
        }
        """
        baseline = compile_to_ir(source)
        expected = [_run_with_buffer(baseline, flag) for flag in (1, -1)]
        module, manager = optimize_snippet(source, self.PASSES())
        assert [_run_with_buffer(module, flag) for flag in (1, -1)] == expected
        function = module.get_function("f")
        assert not any(isinstance(inst, LoadInst)
                       for inst in function.instructions())
        assert manager.stats.loads_eliminated >= 1

    def test_unknown_store_blocks_forwarding(self):
        source = """
        int f(int *p, int *q) {
            *p = 1;
            *q = 2;
            return *p;
        }
        """
        module, manager = optimize_snippet(source, self.PASSES())
        function = module.get_function("f")
        assert any(isinstance(inst, LoadInst)
                   for inst in function.instructions())
        assert manager.stats.loads_eliminated == 0

    def test_call_blocks_forwarding(self):
        source = """
        int g(int *p) { *p = 9; return 0; }
        int f(int *p, int flag) {
            *p = 1;
            g(p);
            return *p + flag - flag;
        }
        """
        module, _ = optimize_snippet(source, self.PASSES())
        assert _run_with_buffer(module, 5) == 9
        function = module.get_function("f")
        assert any(isinstance(inst, LoadInst)
                   for inst in function.instructions())


# ---------------------------------------------------------------------------
# Algebraic simplification
# ---------------------------------------------------------------------------
class TestAlgebraicSimplify:
    PASSES = lambda self: [SimplifyCFG(), PromoteMemoryToRegisters(),
                           AlgebraicSimplify()]

    def test_multiply_by_power_of_two_becomes_shift(self):
        source = "int f(int a) { return a * 8; }"
        module, manager = assert_same_behaviour(
            source, self.PASSES(), "f", [[0], [3], [-5], [1 << 20]])
        function = module.get_function("f")
        opcodes = {inst.opcode for inst in function.instructions()}
        assert Opcode.MUL not in opcodes
        assert Opcode.SHL in opcodes
        assert manager.stats.expressions_simplified >= 1

    def test_constants_canonicalize_to_rhs(self):
        source = "int f(int a) { if (5 > a) { return 1; } return 0; }"
        module, manager = assert_same_behaviour(
            source, self.PASSES(), "f", [[4], [5], [6]])
        function = module.get_function("f")
        from repro.ir import ICmpInst
        compares = [inst for inst in function.instructions()
                    if isinstance(inst, ICmpInst)]
        assert compares
        assert all(isinstance(inst.rhs, ConstantInt) for inst in compares)
        assert manager.stats.comparisons_canonicalized >= 1

    def test_equality_chain_merges_into_range_check(self):
        # The front end flattens the || chain into an or-tree of i1 values;
        # the contiguous run must collapse into a single subtract-and-
        # compare, which is what keeps wc's isspace branch-free AND cheap.
        source = ("int f(int a) { "
                  "return a == 3 || a == 4 || a == 5 || a == 6; }")
        passes = [SimplifyCFG(), PromoteMemoryToRegisters(), InstCombine(),
                  AlgebraicSimplify(), DeadCodeElimination()]
        module, _ = assert_same_behaviour(
            source, passes, "f", [[n] for n in range(0, 9)])
        function = module.get_function("f")
        from repro.ir import ICmpInst
        compares = [inst for inst in function.instructions()
                    if isinstance(inst, ICmpInst)]
        assert len(compares) == 1

    def test_double_negation_cancels(self):
        source = "int f(int a) { return -(-a); }"
        passes = self.PASSES() + [DeadCodeElimination()]
        module, _ = assert_same_behaviour(
            source, passes, "f", [[0], [9], [-9]])
        function = module.get_function("f")
        assert function.instruction_count() == 1  # just `ret a`


# ---------------------------------------------------------------------------
# Differential sweep: behaviour is invariant under the new passes
# ---------------------------------------------------------------------------
NEW_PASSES = ("sccp", "load-elim", "algebraic-simplify")


def _o2_pipeline_text(with_new_passes):
    text = LEVEL_PIPELINES[OptLevel.O2]
    if not with_new_passes:
        for name in NEW_PASSES:
            assert f"{name}," in text
            text = text.replace(f"{name},", "")
    return text


def _compile_o2_variant(source, name, with_new_passes):
    full_source = link_sources(source, CompileOptions(level=OptLevel.O2))
    unit = parse(full_source)
    analyze(unit)
    module = lower(unit, name)
    pipeline = build_pipeline_from_text(_o2_pipeline_text(with_new_passes),
                                        max_iterations=2)
    pipeline.run_until_fixpoint(module)
    verify_module(module)
    return module


class TestDifferentialWithPassesToggled:
    """Every registered workload (coreutils, buggy, and the rest — 40 of
    them) is compiled at -O2 with the new passes on and off; the two
    builds must be observationally identical to the interpreter and to the
    symbolic executor."""

    @pytest.mark.parametrize("name", workload_names())
    def test_interp_and_symex_agree(self, name):
        workload = get_workload(name)
        with_passes = _compile_o2_variant(workload.source, name, True)
        without = _compile_o2_variant(workload.source, name, False)

        concrete = {}
        for key, module in (("on", with_passes), ("off", without)):
            result = run_module(module, workload.sample_input)
            concrete[key] = (result.return_value, result.crashed)
        assert concrete["on"] == concrete["off"], (name, concrete)

        limits = SymexLimits(timeout_seconds=30)
        on = explore(with_passes, 2, limits=limits)
        off = explore(without, 2, limits=limits)
        # Path counts may differ — that is the whole point — but the
        # observable behaviour must not: same bug signatures, and every
        # test input either exploration generates must replay identically
        # on both builds.  (Per-path return-value *sets* are not compared:
        # a select-converted build merges paths, and a merged path's model
        # picks one representative return value among several.)
        assert on.bug_signatures() == off.bug_signatures(), name
        for path in on.paths + off.paths:
            if path.test_input is None:
                continue
            replay_on = run_module(with_passes, path.test_input)
            replay_off = run_module(without, path.test_input)
            assert (replay_on.return_value, replay_on.crashed) == \
                (replay_off.return_value, replay_off.crashed), \
                (name, path.test_input)
