"""Tests for the concrete interpreter and the symbolic execution engine
(expressions, solver, memory, executor)."""

import pytest

from repro.frontend import compile_to_ir
from repro.interp import ErrorKind, Interpreter, Memory, ProgramError, run_module
from repro.pipelines import CompileOptions, OptLevel, compile_source
from repro.symex import (
    BFSSearcher, DFSSearcher, ExprOp, RandomSearcher, Solver, SymbolicMemory,
    SymexLimits, binary, const, explore, ite, not_expr, sext, trunc,
    unsigned_interval, var, zext,
)


# ---------------------------------------------------------------------------
# Concrete interpreter
# ---------------------------------------------------------------------------
class TestInterpreter:
    def test_simple_arithmetic(self):
        module = compile_to_ir("int f(int a, int b) { return a * b + 1; }")
        assert Interpreter(module).run_function("f", [6, 7]).return_value == 43

    def test_memory_and_buffers(self):
        module = compile_to_ir("""
            int sum(unsigned char *data, int n) {
                int total = 0;
                for (int i = 0; i < n; i++) { total += data[i]; }
                return total;
            }
        """)
        interp = Interpreter(module)
        address = interp.allocate_buffer(bytes([1, 2, 3, 4]))
        assert interp.run_function("sum", [address, 4]).return_value == 10

    def test_run_program_entry_convention(self):
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                int total = 0;
                for (int i = 0; i < len; i++) { total += input[i]; }
                return total;
            }
        """)
        result = run_module(module, b"abc")
        assert result.return_value == ord("a") + ord("b") + ord("c")

    def test_null_dereference_detected(self):
        module = compile_to_ir("int f(int *p) { return *p; }")
        result = Interpreter(module).run_function("f", [0])
        assert result.crashed
        assert result.error.kind is ErrorKind.NULL_DEREFERENCE

    def test_out_of_bounds_detected(self):
        module = compile_to_ir("""
            unsigned char table[4];
            int f(int i) { return table[i]; }
        """)
        result = Interpreter(module).run_function("f", [100])
        assert result.crashed
        assert result.error.kind is ErrorKind.OUT_OF_BOUNDS

    def test_division_by_zero_detected(self):
        module = compile_to_ir("int f(int a, int b) { return a / b; }")
        result = Interpreter(module).run_function("f", [10, 0])
        assert result.crashed
        assert result.error.kind is ErrorKind.DIVISION_BY_ZERO

    def test_check_fail_intrinsic(self):
        module = compile_to_ir("""
            extern void __overify_check_fail(void);
            int f(int a) { if (a > 5) { __overify_check_fail(); } return a; }
        """)
        ok = Interpreter(module).run_function("f", [3])
        assert not ok.crashed and ok.return_value == 3
        bad = Interpreter(module).run_function("f", [7])
        assert bad.crashed and bad.error.kind is ErrorKind.CHECK_FAILURE

    def test_step_limit_stops_infinite_loop(self):
        module = compile_to_ir("int f() { while (1) { } return 0; }")
        result = Interpreter(module, max_steps=1_000).run_function("f", [])
        assert result.crashed
        assert result.error.kind is ErrorKind.STEP_LIMIT

    def test_stack_overflow_detected(self):
        module = compile_to_ir("int f(int n) { return f(n + 1); }")
        result = Interpreter(module, max_call_depth=32).run_function("f", [0])
        assert result.crashed
        assert result.error.kind is ErrorKind.STACK_OVERFLOW

    def test_execution_stats_collected(self):
        module = compile_to_ir(
            "int f(int n) { int t = 0; for (int i = 0; i < n; i++) t += i;"
            " return t; }")
        interp = Interpreter(module)
        result = interp.run_function("f", [10])
        assert result.stats.instructions_executed > 50
        assert result.stats.branches_executed > 10

    def test_read_only_global_write_detected(self):
        module = compile_to_ir("""
            int f() {
                unsigned char *s = (unsigned char *)"abc";
                s[0] = 'x';
                return s[0];
            }
        """)
        result = Interpreter(module).run_function("f", [])
        assert result.crashed
        assert result.error.kind is ErrorKind.OUT_OF_BOUNDS

    def test_memory_objects_padded(self):
        memory = Memory()
        a = memory.allocate(4, "a")
        b = memory.allocate(4, "b")
        assert b - a >= 4
        memory.store_int(a, 0x11223344, 4)
        assert memory.load_int(a, 4) == 0x11223344
        with pytest.raises(ProgramError):
            memory.load_bytes(a + 4, 4)


# ---------------------------------------------------------------------------
# Symbolic expressions
# ---------------------------------------------------------------------------
class TestExpressions:
    def test_constant_folding(self):
        assert binary(ExprOp.ADD, const(8, 250), const(8, 10)).value == 4
        assert binary(ExprOp.SLT, const(8, 0x80), const(8, 1)).value == 1
        assert binary(ExprOp.ULT, const(8, 0x80), const(8, 1)).value == 0

    def test_identity_simplifications(self):
        x = var(8, "x")
        assert binary(ExprOp.ADD, x, const(8, 0)) is x
        assert binary(ExprOp.MUL, x, const(8, 1)) is x
        assert binary(ExprOp.AND, x, const(8, 0)).value == 0
        assert binary(ExprOp.XOR, x, x).value == 0
        assert binary(ExprOp.EQ, x, x).is_true

    def test_not_of_comparison_flips_predicate(self):
        x = var(8, "x")
        eq = binary(ExprOp.EQ, x, const(8, 3))
        assert not_expr(eq).op is ExprOp.NE
        assert not_expr(not_expr(eq)) == eq

    def test_zext_collapse_and_narrowing(self):
        x = var(8, "x")
        wide = zext(x, 32)
        assert zext(wide, 64).operands[0] is x
        assert trunc(wide, 8) is x
        # Comparisons against zero narrow back to the original variable.
        cmp = binary(ExprOp.NE, wide, const(32, 0))
        assert x in cmp.operands or cmp.operands[0] is x

    def test_ite_simplifications(self):
        c = binary(ExprOp.EQ, var(8, "x"), const(8, 1))
        a, b = const(32, 5), const(32, 9)
        assert ite(const(1, 1), a, b) is a
        assert ite(c, a, a) is a
        assert ite(c, const(1, 1), const(1, 0)) == c

    def test_evaluate_matches_semantics(self):
        x, y = var(8, "x"), var(8, "y")
        expr = binary(ExprOp.ADD, binary(ExprOp.MUL, x, const(8, 3)), y)
        assert expr.evaluate({"x": 10, "y": 7}) == 37
        signed = binary(ExprOp.SLT, x, const(8, 0))
        assert signed.evaluate({"x": 0xFF}) == 1

    def test_variables_collected(self):
        x, y = var(8, "x"), var(8, "y")
        expr = binary(ExprOp.ADD, x, binary(ExprOp.XOR, y, const(8, 1)))
        assert expr.variables() == frozenset({"x", "y"})

    def test_unsigned_interval(self):
        x = var(8, "x")
        assert unsigned_interval(zext(x, 32)) == (0, 255)
        always_true = binary(ExprOp.ULE, zext(x, 32), const(32, 300))
        assert unsigned_interval(always_true) == (1, 1)
        always_false = binary(ExprOp.ULT, const(32, 500), zext(x, 32))
        assert unsigned_interval(always_false) == (0, 0)


# ---------------------------------------------------------------------------
# Solver
# ---------------------------------------------------------------------------
class TestSolver:
    def test_simple_sat_and_unsat(self):
        x = var(8, "x")
        solver = Solver()
        sat = solver.check([binary(ExprOp.EQ, x, const(8, 65))])
        assert sat.satisfiable
        unsat = solver.check([binary(ExprOp.EQ, x, const(8, 65)),
                              binary(ExprOp.EQ, x, const(8, 66))])
        assert not unsat.satisfiable

    def test_model_satisfies_constraints(self):
        x, y = var(8, "x"), var(8, "y")
        constraints = [
            binary(ExprOp.ULT, x, const(8, 10)),
            binary(ExprOp.EQ, binary(ExprOp.ADD, x, y), const(8, 200)),
        ]
        model = Solver().get_model(constraints)
        assert model is not None
        assert all(c.evaluate(model) == 1 for c in constraints)

    def test_independent_groups_solved_separately(self):
        solver = Solver()
        constraints = [binary(ExprOp.EQ, var(8, f"v{i}"), const(8, i))
                       for i in range(12)]
        result = solver.check(constraints)
        assert result.satisfiable
        model = solver.get_model(constraints)
        assert model["v7"] == 7

    def test_may_be_true_and_false(self):
        x = var(8, "x")
        solver = Solver()
        cond = binary(ExprOp.ULT, x, const(8, 128))
        assert solver.may_be_true([], cond)
        assert solver.may_be_false([], cond)
        pinned = [binary(ExprOp.EQ, x, const(8, 5))]
        assert solver.may_be_true(pinned, cond)
        assert not solver.may_be_false(pinned, cond)

    def test_cache_hits_on_repeated_queries(self):
        x = var(8, "x")
        solver = Solver()
        constraint = binary(ExprOp.ULT, binary(ExprOp.AND, x, const(8, 0x0F)),
                            const(8, 3))
        solver.check([constraint])
        before = solver.stats.cache_hits
        solver.check([constraint])
        assert solver.stats.cache_hits > before

    def test_fast_path_avoids_search_for_decided_constraints(self):
        x = var(8, "x")
        solver = Solver()
        tautology = binary(ExprOp.ULE, zext(x, 32), const(32, 255))
        solver.check([tautology])
        assert solver.stats.fast_path_decisions >= 1
        assert solver.stats.csp_searches == 0

    def test_signed_constraints(self):
        x = var(8, "x")
        negative = binary(ExprOp.SLT, x, const(8, 0))
        model = Solver().get_model([negative])
        assert model is not None and model["x"] >= 0x80

    def test_disabled_independence_still_correct(self):
        x, y = var(8, "x"), var(8, "y")
        solver = Solver(enable_independence=False)
        constraints = [binary(ExprOp.EQ, x, const(8, 3)),
                       binary(ExprOp.ULT, y, const(8, 2))]
        model = solver.get_model(constraints)
        assert model["x"] == 3 and model["y"] < 2


# ---------------------------------------------------------------------------
# Symbolic memory
# ---------------------------------------------------------------------------
class TestSymbolicMemory:
    def test_store_load_roundtrip_returns_same_expression(self):
        memory = SymbolicMemory()
        address = memory.allocate(8, "slot")
        value = binary(ExprOp.ADD, zext(var(8, "x"), 32), const(32, 5))
        memory.store(address, value, 4)
        assert memory.load(address, 4) == value

    def test_concrete_bytes_and_partial_reads(self):
        memory = SymbolicMemory()
        address = memory.allocate(4, "word")
        memory.store_concrete_bytes(address, bytes([1, 2, 3, 4]))
        assert memory.load(address, 4).value == 0x04030201
        assert memory.load(address + 1, 2).value == 0x0302

    def test_fork_isolates_writes(self):
        memory = SymbolicMemory()
        address = memory.allocate(1, "byte")
        memory.store_concrete_bytes(address, b"\x07")
        clone = memory.fork()
        clone.store_concrete_bytes(address, b"\x09")
        assert memory.load(address, 1).value == 7
        assert clone.load(address, 1).value == 9

    def test_bounds_checked(self):
        memory = SymbolicMemory()
        address = memory.allocate(2, "tiny")
        with pytest.raises(ProgramError):
            memory.load(address + 1, 4)
        with pytest.raises(ProgramError):
            memory.load(10, 1)  # below the null guard


# ---------------------------------------------------------------------------
# Symbolic executor
# ---------------------------------------------------------------------------
class TestExecutor:
    def test_linear_program_has_single_path(self):
        module = compile_to_ir(
            "int main(unsigned char *input, int len) { return input[0] + 1; }")
        report = explore(module, 2)
        assert report.stats.total_paths == 1
        assert not report.bugs

    def test_branch_on_input_forks(self):
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                if (input[0] == 'A') { return 1; }
                return 0;
            }
        """)
        report = explore(module, 1)
        assert report.stats.total_paths == 2
        test_inputs = {p.test_input for p in report.paths}
        assert b"A" in test_inputs

    def test_infeasible_branch_not_explored(self):
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                unsigned char c = input[0];
                if (c < 10) {
                    if (c > 200) { return 99; }   /* infeasible */
                    return 1;
                }
                return 0;
            }
        """)
        report = explore(module, 1)
        assert report.stats.total_paths == 2
        assert all(p.return_value != 99 for p in report.paths
                   if p.return_value is not None)

    def test_loop_paths_proportional_to_input_length(self):
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                int n = 0;
                while (input[n]) { n = n + 1; }
                return n;
            }
        """)
        report = explore(module, 4)
        # Strings of length 0..4 -> 5 paths.
        assert report.stats.total_paths == 5

    def test_select_does_not_fork(self):
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                int a = input[0];
                int b = a > 10 ? 1 : 2;
                int c = a > 20 ? b : 5;
                return c + len;
            }
        """)
        from repro.passes import (IfConversion, IfConversionParams,
                                  PassManager, PromoteMemoryToRegisters,
                                  SimplifyCFG)
        manager = PassManager()
        manager.extend([SimplifyCFG(), PromoteMemoryToRegisters(),
                        IfConversion(IfConversionParams(
                            max_speculated_instructions=16)), SimplifyCFG()])
        manager.run_until_fixpoint(module)
        report = explore(module, 1)
        assert report.stats.total_paths == 1

    def test_division_by_symbolic_zero_reported_as_bug(self):
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                int d = input[0] - '0';
                return 100 / d;
            }
        """)
        report = explore(module, 1)
        assert any(bug.kind is ErrorKind.DIVISION_BY_ZERO
                   for bug in report.bugs)
        trigger = [bug.test_input for bug in report.bugs
                   if bug.kind is ErrorKind.DIVISION_BY_ZERO][0]
        assert trigger[0] == ord("0")

    def test_out_of_bounds_bug_found_with_triggering_input(self):
        module = compile_to_ir("""
            unsigned char table[4];
            int main(unsigned char *input, int len) {
                int index = 0;
                if (input[0] == 'X') { index = 9; }
                return table[index];
            }
        """)
        report = explore(module, 1)
        oob = [bug for bug in report.bugs
               if bug.kind is ErrorKind.OUT_OF_BOUNDS]
        assert oob and oob[0].test_input == b"X"

    def test_check_fail_call_reported(self):
        module = compile_to_ir("""
            extern void __overify_check_fail(void);
            int main(unsigned char *input, int len) {
                if (input[0] == 'z') { __overify_check_fail(); }
                return 0;
            }
        """)
        report = explore(module, 1)
        assert any(bug.kind is ErrorKind.CHECK_FAILURE for bug in report.bugs)

    def test_limits_terminate_exploration(self):
        module = compile_to_ir("""
            int main(unsigned char *input, int len) {
                int count = 0;
                for (int i = 0; i < len; i++) {
                    if (input[i] > 10) { count += 1; }
                    if (input[i] > 20) { count += 2; }
                    if (input[i] > 30) { count += 3; }
                }
                return count;
            }
        """)
        limits = SymexLimits(max_paths=5)
        report = explore(module, 6, limits=limits)
        assert report.stats.total_paths <= 6

    def test_searchers_reach_same_paths(self):
        source = """
            int main(unsigned char *input, int len) {
                int total = 0;
                if (input[0] == 'a') { total += 1; }
                if (input[1] == 'b') { total += 2; }
                return total;
            }
        """
        counts = set()
        for strategy in ("dfs", "bfs", "random"):
            module = compile_to_ir(source)
            report = explore(module, 2, searcher=strategy)
            counts.add(report.stats.total_paths)
        assert counts == {4}

    def test_path_test_inputs_reproduce_concretely(self):
        source = """
            int main(unsigned char *input, int len) {
                if (input[0] == 'Q' && input[1] == 'R') { return 42; }
                return 7;
            }
        """
        module = compile_to_ir(source)
        report = explore(module, 2)
        # Replay every generated test input in the concrete interpreter and
        # check it is consistent with the symbolic return value.
        replay_module = compile_to_ir(source)
        for path in report.paths:
            if path.test_input is None or path.return_value is None:
                continue
            result = run_module(replay_module, path.test_input)
            assert result.return_value == path.return_value


# ---------------------------------------------------------------------------
# Searcher data structures
# ---------------------------------------------------------------------------
class TestSearchers:
    def _states(self, count):
        from repro.symex import ExecutionState
        return [ExecutionState() for _ in range(count)]

    def test_dfs_is_lifo(self):
        searcher = DFSSearcher()
        states = self._states(3)
        for state in states:
            searcher.add(state)
        assert searcher.pop() is states[-1]

    def test_bfs_is_fifo(self):
        searcher = BFSSearcher()
        states = self._states(3)
        for state in states:
            searcher.add(state)
        assert searcher.pop() is states[0]

    def test_random_searcher_returns_everything(self):
        searcher = RandomSearcher(seed=1)
        states = self._states(5)
        for state in states:
            searcher.add(state)
        popped = {searcher.pop() for _ in range(5)}
        assert popped == set(states)
        assert searcher.empty()
