"""Tests for the persistent solver-knowledge store.

Four layers are locked down here:

* the **wire codec**: expressions round-trip through their canonical
  schedule form back to the *identical* (interned) object, group
  fingerprints are order-independent, and damaged wire forms raise
  :class:`WireError` instead of materializing malformed expressions;
* the **file format**: save/load round-trips every table, and every
  corruption mode — version mismatch, truncated tail, flipped record
  bytes, junk content, a directory in the file's place — degrades to a
  cold start with the reason recorded, never an exception or a wrong
  answer;
* **concurrent writers**: read-merge-replace unions knowledge from
  racing stores, and parallel savers never produce an unparseable file;
* the **warm-vs-cold differential** over the workload registry: priming
  a fresh run from a store produced by a cold run must not change a
  single observable — bug signatures, path sets (test inputs included),
  outcomes — at any optimization level.

``STORE_DIFFERENTIAL_WORKLOADS`` selects the differential's workloads:
a comma-separated name list, or ``all`` for the full registry (the
acceptance configuration; the *cold* halves of a few solver-hard builds
dominate its ~10-minute runtime — the warm halves are near-free, which
is rather the point).  The default is a representative subset spanning
the fast, path-heavy, bug-carrying, and solver-hard categories.
``STORE_DIFFERENTIAL_BYTES`` sets the symbolic input size (default 2 —
a handful of -OVERIFY builds carry solver-hard runtime-check constraints
whose cold solve takes minutes at larger sizes).
"""

import json
import os
import random
import threading

import pytest

from repro.pipelines import CompileOptions, CompilerSession, OptLevel
from repro.service.store import (
    FORMAT_NAME, FORMAT_VERSION, SolverKnowledgeStore, WireError,
    expr_from_wire, expr_to_wire, group_fingerprint,
)
from repro.symex import (
    ExprOp, SharedSolverCaches, Solver, SolverConfig, SolverResult,
    SymexLimits, binary, const, explore, not_expr, var,
)
from repro.workloads import all_workloads, get_workload

# ---------------------------------------------------------------- wire codec


def _sample_exprs():
    a, b = var(8, "in0"), var(8, "in1")
    shared = binary(ExprOp.ADD, a, b)
    return [
        const(8, 0),
        const(32, 2**31),
        a,
        binary(ExprOp.EQ, shared, const(8, 7)),
        # The same subterm twice: the schedule must share it, and the
        # round trip must preserve the sharing.
        binary(ExprOp.AND, binary(ExprOp.ULT, shared, const(8, 9)),
               not_expr(binary(ExprOp.EQ, shared, const(8, 3)))),
        binary(ExprOp.MUL, binary(ExprOp.SUB, a, const(8, 1)),
               binary(ExprOp.XOR, b, const(8, 0x55))),
    ]


def test_expr_wire_round_trip_is_identity():
    for expr in _sample_exprs():
        wire = expr_to_wire(expr)
        json.dumps(wire)  # must be JSON-serializable as-is
        assert expr_from_wire(wire) is expr  # hash-consing: same object


def test_expr_wire_round_trip_randomized():
    rng = random.Random(20130507)
    names = ["in0", "in1", "in2"]
    ops = [ExprOp.ADD, ExprOp.SUB, ExprOp.MUL, ExprOp.AND, ExprOp.OR,
           ExprOp.XOR, ExprOp.EQ, ExprOp.NE, ExprOp.ULT, ExprOp.SLE]

    def build(depth=0):
        if depth >= 3 or rng.random() < 0.35:
            if rng.random() < 0.5:
                return var(8, rng.choice(names))
            return const(8, rng.randrange(256))
        return binary(rng.choice(ops), build(depth + 1), build(depth + 1))

    for _ in range(300):
        expr = build()
        assert expr_from_wire(expr_to_wire(expr)) is expr


def test_group_fingerprint_order_independent():
    a, b = var(8, "in0"), var(8, "in1")
    constraints = [binary(ExprOp.ULT, a, const(8, 10)),
                   binary(ExprOp.EQ, b, const(8, 3)),
                   not_expr(binary(ExprOp.EQ, a, b))]
    fingerprint = group_fingerprint(constraints)
    rng = random.Random(1)
    for _ in range(5):
        shuffled = list(constraints)
        rng.shuffle(shuffled)
        assert group_fingerprint(shuffled) == fingerprint
    assert group_fingerprint(constraints[:2]) != fingerprint


@pytest.mark.parametrize("wire", [
    None,
    [],
    "nonsense",
    [["q", 8, 0]],                      # unknown tag
    [["c", 0, 1]],                      # width out of range
    [["c", 65, 1]],                     # width out of range
    [["c", True, 1]],                   # bool masquerading as width
    [["c", 8, True]],                   # bool masquerading as value
    [["c", 8, "x"]],                    # non-integer constant
    [["v", 8, ""]],                     # empty variable name
    [["v", 8, 7]],                      # non-string variable name
    [["add", 8, [0, 1]]],               # forward/out-of-range reference
    [["c", 8, 1], ["add", 8, [0, 1]]],  # self-reference
    [["c", 8, 1], ["add", 8, []]],      # no operands
    [["c", 8, 1], ["const", 8, [0]]],   # const spelled as operator
    [["c", 8, 1], ["add", 8, 0]],       # operand list not a list
    [["c", 8, 1, 2]],                   # wrong arity
])
def test_expr_from_wire_rejects_damage(wire):
    with pytest.raises(WireError):
        expr_from_wire(wire)


# ------------------------------------------------------------ file round trip


def _populated_store(path):
    """A store holding one entry of every kind."""
    a, b = var(8, "in0"), var(8, "in1")
    sat_group = frozenset([binary(ExprOp.ULT, a, const(8, 10))])
    unsat_group = frozenset([binary(ExprOp.EQ, a, const(8, 1)),
                             binary(ExprOp.EQ, a, const(8, 2))])
    store = SolverKnowledgeStore(path)
    caches = SharedSolverCaches(num_stripes=2)
    caches.absorb_state({
        "groups": [(sat_group, SolverResult(True, {"in0": 3})),
                   (unsat_group, SolverResult(False, None))],
        "sat_sets": [(tuple(sorted(sat_group, key=str)), {"in0": 3})],
        "unsat_sets": [tuple(sorted(unsat_group, key=str))],
        "canonical_models": [(frozenset([binary(ExprOp.EQ, b, const(8, 5))]),
                              {"in1": 5})],
    })
    store.absorb(caches)
    store.memo_record("deadbeef" * 8, {"paths": 4, "errors": 0})
    return store


def test_store_round_trip(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    store = _populated_store(path)
    assert len(store) == 6  # 2 groups + sat + unsat + canonical + memo
    store.save()

    loaded = SolverKnowledgeStore(path)
    assert loaded.load() is True
    assert loaded.load_error == ""
    assert len(loaded) == len(store)
    assert loaded.memo_count == 1
    assert loaded.memo_lookup("deadbeef" * 8) == {"paths": 4, "errors": 0}

    # Priming a fresh cache set from the loaded store reproduces the
    # original solver knowledge: the sat group hits, the unsat group hits.
    caches = SharedSolverCaches(num_stripes=2)
    assert loaded.prime(caches) == 5  # 2 groups + sat + unsat + canonical
    solver = Solver(shared=caches)
    a = var(8, "in0")
    assert solver.check([binary(ExprOp.ULT, a, const(8, 10))]).satisfiable
    assert not solver.check([binary(ExprOp.EQ, a, const(8, 1)),
                             binary(ExprOp.EQ, a, const(8, 2))]).satisfiable
    assert solver.stats.store_hits == 2


def test_save_without_path_is_noop(tmp_path):
    store = SolverKnowledgeStore(None)
    store.memo_record("k", {"v": 1})
    store.save()  # must not raise, must not write anywhere
    assert store.load() is False
    # load() resets even a memory-only store
    assert store.memo_lookup("k") is None


# --------------------------------------------------------- corruption → cold


def _assert_cold(path, reason_fragment):
    store = SolverKnowledgeStore(path)
    assert store.load() is False
    assert reason_fragment in store.load_error
    assert len(store) == 0


def test_missing_file_is_cold(tmp_path):
    _assert_cold(tmp_path / "nope.jsonl", "missing")


def test_version_mismatch_is_cold(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    store = _populated_store(path)
    store.save()
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header == {"format": FORMAT_NAME, "version": FORMAT_VERSION}
    header["version"] = FORMAT_VERSION + 1
    lines[0] = json.dumps(header)
    path.write_text("\n".join(lines) + "\n")
    _assert_cold(path, "version")


def test_wrong_format_name_is_cold(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    path.write_text(json.dumps({"format": "something-else", "version": 1})
                    + "\n" + json.dumps({"kind": "end", "records": 0}) + "\n")
    _assert_cold(path, "not a solver store")


def test_truncated_file_is_cold(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    store = _populated_store(path)
    store.save()
    full = path.read_text()
    # Chop the footer (a clean line-boundary truncation)...
    lines = full.splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")
    _assert_cold(path, "truncated")
    # ...then a mid-record truncation.
    path.write_text(full[:len(full) * 2 // 3])
    store2 = SolverKnowledgeStore(path)
    assert store2.load() is False
    assert store2.load_error != ""


def test_flipped_record_byte_is_cold(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    store = _populated_store(path)
    store.save()
    lines = path.read_text().splitlines()
    # Flip a value inside a record body without touching its checksum.
    victim = json.loads(lines[1])
    for key, value in victim.items():
        if isinstance(value, bool):
            victim[key] = not value
            break
    else:
        victim["key"] = "0" * len(victim.get("key", "00"))
    lines[1] = json.dumps(victim)
    path.write_text("\n".join(lines) + "\n")
    _assert_cold(path, "checksum")


def test_junk_content_is_cold(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    path.write_text("this is not even json\n")
    store = SolverKnowledgeStore(path)
    assert store.load() is False
    assert store.load_error.startswith("corrupt")


def test_empty_file_is_cold(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    path.write_text("")
    _assert_cold(path, "empty")


def test_unreadable_path_is_cold(tmp_path):
    # A directory where the file should be: open() fails, load is cold.
    path = tmp_path / "knowledge.jsonl"
    path.mkdir()
    store = SolverKnowledgeStore(path)
    assert store.load() is False
    assert store.load_error.startswith("unreadable")


def test_damaged_stored_expression_is_skipped_not_fatal(tmp_path):
    """A record that passes the checksum but whose wire form no longer
    decodes (e.g. written by a build with an operator this build lacks)
    is skipped during priming, not fatal, and not wrong."""
    path = tmp_path / "knowledge.jsonl"
    store = _populated_store(path)
    with store._lock:
        keys = sorted(store._groups)
        store._groups[keys[0]]["constraints"] = [[["q", 8, 0]]]
    store.save()
    loaded = SolverKnowledgeStore(path)
    assert loaded.load() is True  # checksums match: the file is valid
    caches = SharedSolverCaches(num_stripes=2)
    primed = loaded.prime(caches)
    assert primed == 4  # one group dropped, everything else intact


# ------------------------------------------------------- concurrent writers


def test_read_merge_replace_unions_writers(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    first = SolverKnowledgeStore(path)
    first.memo_record("aa" * 32, {"paths": 1})
    second = SolverKnowledgeStore(path)
    second.memo_record("bb" * 32, {"paths": 2})
    first.save()
    second.save()  # must merge, not clobber, first's record

    merged = SolverKnowledgeStore(path)
    assert merged.load() is True
    assert merged.memo_lookup("aa" * 32) == {"paths": 1}
    assert merged.memo_lookup("bb" * 32) == {"paths": 2}


def test_existing_entry_wins_on_collision(tmp_path):
    path = tmp_path / "knowledge.jsonl"
    first = SolverKnowledgeStore(path)
    first.memo_record("cc" * 32, {"paths": 1})
    first.save()
    second = SolverKnowledgeStore(path)
    second.load()
    second.memo_record("cc" * 32, {"paths": 99})
    second.save()
    merged = SolverKnowledgeStore(path)
    merged.load()
    # The saver's own (newer) entry wins within its save; what matters is
    # the file stays coherent and holds exactly one record for the key.
    assert merged.memo_lookup("cc" * 32) in ({"paths": 1}, {"paths": 99})
    assert merged.memo_count == 1


def test_concurrent_savers_never_corrupt(tmp_path):
    """Many threads saving disjoint knowledge into one path: every save
    must leave a parseable file, and the final file must hold a
    consistent union (atomic replace means a whole save can lose the
    race, but the file can never interleave two writers)."""
    path = tmp_path / "knowledge.jsonl"
    errors = []

    def writer(index):
        try:
            store = SolverKnowledgeStore(path)
            store.load()
            for j in range(5):
                store.memo_record(f"{index:02d}{j:02d}" * 16, {"n": index})
            store.save()
            check = SolverKnowledgeStore(path)
            if not check.load():
                errors.append(f"writer {index} read cold: "
                              f"{check.load_error}")
        except Exception as exc:  # pragma: no cover - the test's point
            errors.append(f"writer {index}: {exc!r}")

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    final = SolverKnowledgeStore(path)
    assert final.load() is True
    assert final.memo_count >= 5  # at least one writer's records survive
    assert final.memo_count % 5 == 0  # whole saves, never partial ones


# ------------------------------------------------- warm-vs-cold differential

_LEVELS = [OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3,
           OptLevel.OVERIFY]


_DIFFERENTIAL_BYTES = int(os.environ.get("STORE_DIFFERENTIAL_BYTES", "2"))

#: The default differential subset: the parallel-determinism quartet plus
#: path-heavy (cat, cut, expand), bug-carrying (buggy_*), and solver-hard
#: (basename at -O2+ carries runtime-check constraints whose cold solve
#: takes ~10s; its warm solve must still be byte-identical) workloads.
_DEFAULT_DIFFERENTIAL = ["wc", "uniq", "buggy_div", "buggy_index",
                         "basename", "cat", "cut", "expand", "echo_args"]


def _differential_workloads():
    names = os.environ.get("STORE_DIFFERENTIAL_WORKLOADS", "")
    if names == "all":
        return list(all_workloads())
    if names:
        return [get_workload(name) for name in names.split(",") if name]
    return [get_workload(name) for name in _DEFAULT_DIFFERENTIAL]


def _path_content(record):
    """A path's observable content (state ids are scheduling artifacts)."""
    return (record.status.value, record.constraint_count,
            record.instructions, record.test_input, record.return_value)


def _observables(report):
    return {
        "bugs": sorted((bug.signature(), bug.message, bug.test_input)
                       for bug in report.bugs),
        "paths": sorted(_path_content(record) for record in report.paths),
        "outcome": (report.stats.paths_completed,
                    report.stats.paths_errored,
                    report.stats.paths_terminated,
                    report.stats.instructions_interpreted,
                    report.stats.timed_out),
    }


def test_warm_store_differential_over_registry(tmp_path):
    """The acceptance differential: for every registry workload at every
    level, a run primed from a cold run's store must be byte-identical to
    the cold run — same bug signatures, same path sets (test inputs
    included), same outcome.  The binding budget is the (deterministic)
    instruction budget, never wall clock: a warm run is faster, and a
    wall-clock cutoff would let the two runs truncate differently."""
    limits = SymexLimits(timeout_seconds=3600.0, max_instructions=60_000)
    session = CompilerSession()
    checked = 0
    store_hits = 0
    for workload in _differential_workloads():
        for level in _LEVELS:
            module = session.compile(
                workload.source, options=CompileOptions(level=level)).module
            store_path = tmp_path / f"{workload.name}-{level}.jsonl"

            cold_caches = SharedSolverCaches(num_stripes=1)
            cold = explore(module, _DIFFERENTIAL_BYTES, limits=limits,
                           solver=Solver(shared=cold_caches))
            store = SolverKnowledgeStore(store_path)
            store.absorb(cold_caches)
            store.save()

            warm_store = SolverKnowledgeStore(store_path)
            assert warm_store.load() is True or len(store) == 0
            warm_caches = SharedSolverCaches(num_stripes=1)
            warm_store.prime(warm_caches)
            warm = explore(module, _DIFFERENTIAL_BYTES, limits=limits,
                           solver=Solver(shared=warm_caches))

            assert _observables(warm) == _observables(cold), \
                f"{workload.name} at {level}: warm != cold"
            checked += 1
            store_hits += warm.solver_stats.store_hits
    assert checked == len(_differential_workloads()) * len(_LEVELS)
    # The differential must actually exercise the warm path: across the
    # sweep, plenty of groups must have been answered by primed entries.
    assert store_hits > checked
