"""repro.symex — a KLEE-style symbolic execution engine for the repro IR."""

from .expr import (
    Expr, ExprOp, bounded_interval, mask, to_signed, unsigned_interval,
)
from .simplify import (
    binary, bitwise_not, concat_bytes, const, extract_byte, false_expr, ite,
    not_expr, rebuild, sext, substitute, true_expr, trunc, var, zext,
)
from .memory import SymbolicMemory, SymbolicMemoryObject
from .solver import (
    SharedSolverCaches, Solver, SolverConfig, SolverResult, SolverStats,
)
from .ubtree import UBTree
from .state import ExecutionState, StackFrame, StateStatus
from .searcher import (
    BFSSearcher, DFSSearcher, RandomSearcher, Searcher,
    WorkStealingFrontier, make_searcher,
)
from .executor import (
    BugReport, ExplorationBudget, PathRecord, SymbolicExecutor, SymexLimits,
    SymexReport, SymexStats, explore,
)
from .parallel import ParallelExecutor, explore_parallel
from .backend import SymexBackend

__all__ = [
    "Expr", "ExprOp", "bounded_interval", "mask", "to_signed",
    "unsigned_interval",
    "binary", "bitwise_not", "concat_bytes", "const", "extract_byte",
    "false_expr", "ite", "not_expr", "rebuild", "sext", "substitute",
    "true_expr", "trunc", "var", "zext",
    "SymbolicMemory", "SymbolicMemoryObject",
    "SharedSolverCaches", "Solver", "SolverConfig", "SolverResult",
    "SolverStats", "UBTree",
    "ExecutionState", "StackFrame", "StateStatus",
    "BFSSearcher", "DFSSearcher", "RandomSearcher", "Searcher",
    "WorkStealingFrontier", "make_searcher",
    "BugReport", "ExplorationBudget", "PathRecord", "SymbolicExecutor",
    "SymexLimits", "SymexReport", "SymexStats", "explore",
    "ParallelExecutor", "explore_parallel",
    "SymexBackend",
]
