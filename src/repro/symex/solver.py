"""The constraint solver used by the symbolic executor.

KLEE delegates to STP; this reproduction ships its own solver tuned for the
constraint shapes symbolic execution of byte-oriented programs produces:
conjunctions of comparisons over a handful of 8-bit input variables.

The solver combines, in order of increasing cost:

1. expression-level simplification (done by the smart constructors),
2. an interval fast path that decides constraints whose truth value does not
   depend on the variables at all,
3. independent-constraint decomposition (KLEE's ``--use-independent-solver``):
   constraints are partitioned by shared variables so each group is solved
   separately,
4. a **UBTree (set-trie) counterexample index** over cached results: a
   cached UNSAT set that is a subset of the query proves it unsatisfiable, a
   cached SAT set that is a superset hands over its model, and models of
   cached subsets are cheap candidate assignments (KLEE's counterexample
   cache, indexed as in Hoffmann & Koehler's UBTrees).  With the index
   disabled, a linear scan over recent models provides the same reuse,
5. a backtracking CSP search over the byte domains of the variables in a
   group, with unary-constraint domain pruning and early constraint checking;
   groups containing **wide (>16-bit) variables** are instead solved by
   **branch-and-prune**: the variable box is recursively split, sub-boxes
   are pruned through :func:`~repro.symex.expr.bounded_interval`, and only
   leaf boxes small enough to enumerate are searched concretely — a sound
   and (budget permitting) exact decision procedure where the previous
   sparse-domain fallback could only answer "maybe satisfiable",
6. query caching (both full queries and per-group results, models included,
   so :meth:`Solver.get_model` never re-solves a decided query).

Branch feasibility uses :meth:`Solver.check_branch`, which shares work
between the two sides of a fork: when one side is proved unsatisfiable, the
other side follows from the satisfiability of the base path condition and
needs no new query.

Every optimization layer sits behind a :class:`SolverConfig` feature flag
(default on) so each can be toggled and tested differentially against the
naive configuration; ``make_backend("symex<ubtree=off>")`` reaches them from
the pipeline syntax.

The solver is complete for the expression language as long as the search
budget is not exhausted; when it is, the query conservatively reports
"maybe satisfiable" so that the executor never prunes a feasible path.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..faults import SolverError, site as _fault_site
from .expr import Expr, ExprOp, bounded_interval, mask, unsigned_interval
from .simplify import const, not_expr
from .ubtree import UBTree

#: Fault site covering every top-level solver query (``docs/robustness.md``).
_SOLVER_CHECK = _fault_site("solver.check", SolverError)

#: How many recent models the model-reuse cache keeps (LRU) when the UBTree
#: index is disabled.
MODEL_CACHE_SIZE = 64

#: How many cached subset models the UBTree lookup tries as candidate
#: assignments before giving up and searching.
SUBSET_MODEL_TRIALS = 8

#: A branch-and-prune box is enumerated concretely once it contains at most
#: this many points.
BNP_LEAF_ENUMERATION = 2048

#: Interval-split budget per branch-and-prune search; exceeding it yields
#: the conservative "maybe satisfiable" answer.
BNP_MAX_SPLITS = 20_000

#: UNSAT groups larger than this skip core minimization: the deletion
#: filter re-solves the group once per dropped constraint, and the
#: quadratic worst case is not worth it for huge groups (which rarely
#: recur as subsets of later queries anyway).
CORE_MINIMIZATION_LIMIT = 16


@dataclass(frozen=True)
class SolverConfig:
    """Feature flags of the solver's optimization layers (all default on).

    ``cache`` is the master switch for every caching layer; ``ubtree``,
    ``rewrite_equalities`` and ``branch_and_prune`` gate the Solver-v2
    layers individually so each can be differentially tested.
    ``rewrite_equalities`` is consumed by
    :meth:`repro.symex.state.ExecutionState.add_constraint` (the executor
    copies it onto the states it creates).
    """

    max_assignments: int = 200_000
    independence: bool = True
    cache: bool = True
    ubtree: bool = True
    rewrite_equalities: bool = True
    branch_and_prune: bool = True
    #: Branch-and-prune splits bisect toward constants mentioned in the
    #: constraints instead of interval midpoints (isolates the satisfying
    #: band of equality/ordering constraints in O(1) splits instead of
    #: O(log range)).
    seeded_splits: bool = True
    #: Size cap per UBTree counterexample index (stored sets, LRU-by-hit
    #: eviction); 0 = unbounded.  Bounds the memory of very long runs.
    ubtree_capacity: int = 0
    #: Shrink UNSAT groups to a minimal core (greedy deletion filter)
    #: before inserting them into the UBTree UNSAT index — smaller cores
    #: are subsets of more future queries, so each one subsumes more.
    minimize_cores: bool = True
    #: Per-query wall-clock deadline in seconds (0 = none).  An expiring
    #: query is interrupted at its next budget checkpoint (the
    #: branch-and-prune split loop / the CSP assignment loop) and answers
    #: the same conservative "maybe satisfiable" an exhausted assignment
    #: budget does, counted in :attr:`SolverStats.query_deadlines`.
    query_deadline_seconds: float = 0.0


@dataclass
class SolverStats:
    """Counters describing solver work (reported by the harness)."""

    queries: int = 0
    cache_hits: int = 0
    fast_path_decisions: int = 0
    csp_searches: int = 0
    assignments_tried: int = 0
    unknown_results: int = 0
    time_seconds: float = 0.0
    #: Independent-group sub-queries issued (cache hits included).
    group_queries: int = 0
    #: Group queries answered by re-using a model from a previous SAT answer.
    model_cache_hits: int = 0
    #: Two-sided branch feasibility checks (:meth:`Solver.check_branch`).
    branch_checks: int = 0
    #: Branch sides answered for free from the other side's UNSAT proof.
    branch_sides_free: int = 0
    #: Group queries answered by the UBTree counterexample index (UNSAT
    #: subset, SAT superset, or a subset model that extended).
    ubtree_hits: int = 0
    #: UBTree lookups that fell through to a search.
    ubtree_misses: int = 0
    #: Constraints rewritten against an equality at ``add_constraint`` time
    #: (counted by the execution states sharing this stats object).
    equality_rewrites: int = 0
    #: Interval splits performed by branch-and-prune searches.
    prune_splits: int = 0
    #: UNSAT groups whose cores were shrunk before insertion into the
    #: UNSAT index (:attr:`SolverConfig.minimize_cores`).
    cores_minimized: int = 0
    #: Group-cache and concretization-model hits answered by entries that
    #: were primed from a persistent knowledge store
    #: (:class:`repro.service.store.SolverKnowledgeStore`) rather than
    #: solved in this run.  UBTree containment hits on primed sets are
    #: counted as ordinary ``ubtree_hits``.
    store_hits: int = 0
    #: Queries interrupted by :attr:`SolverConfig.query_deadline_seconds`
    #: (each also counts as an ``unknown_results`` entry).
    query_deadlines: int = 0

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)

    def merge(self, other: "SolverStats") -> None:
        """Accumulate ``other`` into this object (summing every counter).

        The parallel executor gives each worker its own stats object —
        lock-free increments stay race-free because no two workers share
        one — and merges them deterministically at the end of the run.
        Note ``time_seconds`` sums *per-worker* solver time, so the merged
        value can exceed wall-clock time."""
        for field_info in fields(self):
            name = field_info.name
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class SolverResult:
    """Outcome of a satisfiability query."""

    satisfiable: bool
    model: Optional[Dict[str, int]] = None
    #: True when the search budget was exhausted and the result is the
    #: conservative answer rather than a proof.
    exact: bool = True


class _NullLock:
    """A no-op context manager: the lock of a single-owner cache stripe.

    A private (non-shared) solver routes through the same stripe code as a
    shared one; swapping the lock out for this keeps the sequential hot
    path free of real lock traffic."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


class _CacheStripe:
    """One shard of the solver's group-level caches.

    Everything a group query touches lives together on its stripe — the
    exact group-result cache, the SAT/UNSAT UBTree counterexample indices,
    and the linear model-reuse list used when the UBTree is disabled — so
    one lock acquisition covers a whole lookup or insertion."""

    __slots__ = ("lock", "group_cache", "sat_index", "unsat_index", "models",
                 "canonical_models", "from_store", "canonical_from_store")

    def __init__(self, lock: object, ubtree_capacity: int) -> None:
        self.lock = lock
        self.group_cache: Dict[FrozenSet[Expr], SolverResult] = {}
        self.sat_index = UBTree(capacity=ubtree_capacity)
        self.unsat_index = UBTree(capacity=ubtree_capacity)
        #: Recently used satisfying assignments, most recent first (the
        #: linear scan used when the UBTree index is disabled).
        self.models: List[Dict[str, int]] = []
        #: Group -> the model a *fresh deterministic search* finds — a pure
        #: function of the group, unlike the reuse-layer models above,
        #: whose identity depends on what happened to be cached first.
        #: Backs :meth:`Solver.concretization_model`.
        self.canonical_models: Dict[FrozenSet[Expr], Dict[str, int]] = {}
        #: Group-cache keys primed from a persistent store (provenance
        #: accounting only: a hit on one bumps ``SolverStats.store_hits``).
        self.from_store: set = set()
        #: Same, for primed canonical-model keys.
        self.canonical_from_store: set = set()


class SharedSolverCaches:
    """The solver's group caches, sharded into lock stripes.

    The parallel executor builds one of these and hands it to every
    worker's :class:`Solver`: a constraint group is routed to the stripe
    selected by its fingerprint (the hash of its interned constraint set),
    so the same group always lands on the same stripe and a result solved
    by one worker answers every other worker's queries about it — the
    cross-worker reuse is what keeps the parallel run's total solver work
    close to the sequential run's.  Lock striping bounds contention: two
    workers only serialize when their groups collide on a stripe, and the
    expensive searches themselves run outside the stripe lock (two workers
    racing to solve the same group merely duplicate that one search; both
    arrive at the same deterministic result).
    """

    def __init__(self, num_stripes: int = 1, ubtree_capacity: int = 0,
                 locked: bool = True) -> None:
        if num_stripes < 1:
            raise ValueError("num_stripes must be >= 1")
        make_lock = threading.Lock if locked else _NullLock
        self.stripes: List[_CacheStripe] = [
            _CacheStripe(make_lock(), ubtree_capacity)
            for _ in range(num_stripes)]
        self._num_stripes = num_stripes

    def stripe_for(self, group_key: FrozenSet[Expr]) -> _CacheStripe:
        """The stripe owning ``group_key`` (stable within a process:
        interning makes the constraint set's hash reproducible for the
        lifetime of its expressions)."""
        if self._num_stripes == 1:
            return self.stripes[0]
        return self.stripes[hash(group_key) % self._num_stripes]

    # ------------------------------------------------- persistence support
    # The knowledge store (repro.service.store) speaks in terms of these
    # two methods: export_state() snapshots everything worth persisting at
    # the Expr level, absorb_state() injects a (possibly deserialized)
    # snapshot back.  Keeping the stripe layout private here means the
    # store never touches locks or routing.

    def export_state(self) -> Dict[str, list]:
        """Snapshot the persistable cache contents across all stripes.

        Returns Expr-level entries: exact group results, SAT index sets
        with their models, UNSAT index sets (minimized cores included),
        and canonical concretization models.  Inexact (budget-exhausted)
        group results are excluded — they are conservative answers, not
        knowledge worth re-using."""
        state: Dict[str, list] = {"groups": [], "sat_sets": [],
                                  "unsat_sets": [], "canonical_models": []}
        for stripe in self.stripes:
            with stripe.lock:
                for key, result in stripe.group_cache.items():
                    if result.exact:
                        model = None if result.model is None \
                            else dict(result.model)
                        state["groups"].append(
                            (key, SolverResult(result.satisfiable, model)))
                for elements, model in stripe.sat_index.items():
                    state["sat_sets"].append((elements, dict(model)))
                for elements, _payload in stripe.unsat_index.items():
                    state["unsat_sets"].append(elements)
                for key, model in stripe.canonical_models.items():
                    state["canonical_models"].append((key, dict(model)))
        return state

    def absorb_state(self, state: Dict[str, list],
                     from_store: bool = False) -> int:
        """Inject a snapshot produced by :meth:`export_state` (possibly in
        another process, deserialized from disk).  Existing entries win:
        absorption never overwrites what this run already solved.  With
        ``from_store`` the injected keys are tagged so later hits count as
        ``SolverStats.store_hits``.  Returns the number of entries added."""
        absorbed = 0
        for key, result in state.get("groups", ()):
            key = frozenset(key)
            stripe = self.stripe_for(key)
            with stripe.lock:
                if key not in stripe.group_cache:
                    stripe.group_cache[key] = result
                    if from_store:
                        stripe.from_store.add(key)
                    absorbed += 1
        for elements, model in state.get("sat_sets", ()):
            elements = tuple(elements)
            stripe = self.stripe_for(frozenset(elements))
            with stripe.lock:
                if not stripe.sat_index.contains(elements):
                    stripe.sat_index.insert(elements, dict(model))
                    absorbed += 1
        for elements in state.get("unsat_sets", ()):
            elements = tuple(elements)
            stripe = self.stripe_for(frozenset(elements))
            with stripe.lock:
                if not stripe.unsat_index.contains(elements):
                    stripe.unsat_index.insert(elements, True)
                    absorbed += 1
        for key, model in state.get("canonical_models", ()):
            key = frozenset(key)
            stripe = self.stripe_for(key)
            with stripe.lock:
                if key not in stripe.canonical_models:
                    stripe.canonical_models[key] = dict(model)
                    if from_store:
                        stripe.canonical_from_store.add(key)
                    absorbed += 1
        return absorbed


class Solver:
    """A small, self-contained constraint solver for bitvector conjunctions."""

    def __init__(self, max_assignments: Optional[int] = None,
                 enable_independence: Optional[bool] = None,
                 enable_cache: Optional[bool] = None,
                 config: Optional[SolverConfig] = None,
                 shared: Optional[SharedSolverCaches] = None) -> None:
        config = config or SolverConfig()
        if max_assignments is not None:
            config = replace(config, max_assignments=max_assignments)
        if enable_independence is not None:
            config = replace(config, independence=enable_independence)
        if enable_cache is not None:
            config = replace(config, cache=enable_cache)
        self.config = config
        self.stats = SolverStats()
        #: Full-query result cache.  Worker-local even under a shared cache
        #: set: full queries are path-shaped and rarely collide across
        #: workers, so sharing them would buy little and cost a lock.
        self._cache: Dict[FrozenSet[Expr], SolverResult] = {}
        #: The group-level caches (exact results, UBTree counterexample
        #: indices, linear model list), possibly shared with other solvers
        #: via lock stripes.  A private solver gets a single stripe with a
        #: no-op lock, so the sequential path pays no lock traffic.
        self._shared = shared or SharedSolverCaches(
            1, ubtree_capacity=config.ubtree_capacity, locked=False)
        #: Unary constraint -> frozenset of satisfying variable values.
        #: Hash-consing makes the constraint expression itself the key.
        #: Worker-local: it is a memo (cheap to recompute), and keeping it
        #: off the stripes removes it from every lock footprint.
        self._unary_sat: Dict[Tuple[Expr, int], FrozenSet[int]] = {}
        #: Wall-clock instant the running query must stop at (0.0 = no
        #: deadline).  Set on entry to each top-level query when
        #: :attr:`SolverConfig.query_deadline_seconds` is enabled.
        self._deadline = 0.0

    def _begin_query(self, start: float) -> None:
        """Arm the per-query deadline (a no-op when the feature is off)."""
        if self.config.query_deadline_seconds > 0.0:
            self._deadline = start + self.config.query_deadline_seconds

    # The pre-SolverConfig attribute spellings, kept as read-only views so
    # the flag state has a single source of truth (``self.config``).
    @property
    def max_assignments(self) -> int:
        return self.config.max_assignments

    @property
    def enable_independence(self) -> bool:
        return self.config.independence

    @property
    def enable_cache(self) -> bool:
        """Gates all caching layers: the full-query cache, the per-group
        cache, and the counterexample caches (UBTree or linear)."""
        return self.config.cache

    # ------------------------------------------------------------------ API
    def check(self, constraints: Sequence[Expr]) -> SolverResult:
        """Is the conjunction of ``constraints`` satisfiable?"""
        start = time.perf_counter()
        self.stats.queries += 1
        self._begin_query(start)
        if _SOLVER_CHECK.armed:
            _SOLVER_CHECK.fire()
        try:
            return self._check(list(constraints))
        finally:
            self.stats.time_seconds += time.perf_counter() - start

    def is_satisfiable(self, constraints: Sequence[Expr]) -> bool:
        return self.check(constraints).satisfiable

    def get_model(self, constraints: Sequence[Expr]) -> Optional[Dict[str, int]]:
        """A satisfying assignment covering every variable in the query, or
        None if the constraints are unsatisfiable."""
        result = self.check(constraints)
        if not result.satisfiable:
            return None
        if not result.exact or result.model is None:
            # "Maybe satisfiable" (budget-exhausted) answers carry no
            # trustworthy witness: independent groups that did decide may
            # have contributed a partial model, but completing it would
            # fabricate values for the undecided group's variables.
            # Re-searching would deterministically repeat the same bounded
            # search, so report "no witness" directly.
            return None
        # Constraints dropped by the interval fast path hold under *any*
        # assignment, so completing with zeros keeps the model satisfying
        # while covering every variable of the query.
        completed = dict(result.model)
        for constraint in constraints:
            for name in constraint.variables():
                if name not in completed:
                    completed[name] = 0
        return completed

    def may_be_true(self, constraints: Sequence[Expr], condition: Expr) -> bool:
        """Can ``condition`` be true under ``constraints``?"""
        if condition.is_constant:
            return bool(condition.value)
        return self.is_satisfiable(list(constraints) + [condition])

    def may_be_false(self, constraints: Sequence[Expr], condition: Expr) -> bool:
        if condition.is_constant:
            return not condition.value
        return self.is_satisfiable(list(constraints) + [not_expr(condition)])

    def check_branch(self, constraints: Sequence[Expr], condition: Expr,
                     assume_base_satisfiable: bool = True
                     ) -> Tuple[bool, bool]:
        """Feasibility of both sides of a branch: ``(can_true, can_false)``.

        Shares work between the two sides: if ``constraints + [condition]``
        is proved unsatisfiable, every model of the base path condition makes
        ``condition`` false, so the false side is exactly the satisfiability
        of the base.  With ``assume_base_satisfiable`` (the executor's state
        invariant: a state's path condition is satisfiable) that side costs
        no query at all; otherwise the base is re-checked, which hits the
        per-group caches.
        """
        if condition.is_constant:
            truth = bool(condition.value)
            return truth, not truth
        self.stats.branch_checks += 1
        base = list(constraints)
        true_result = self.check(base + [condition])
        if not true_result.satisfiable and true_result.exact:
            self.stats.branch_sides_free += 1
            if assume_base_satisfiable:
                return False, True
            return False, self.check(base).satisfiable
        false_result = self.check(base + [not_expr(condition)])
        return true_result.satisfiable, false_result.satisfiable

    # ------------------------------------------------- partitioned queries
    # The execution state already maintains its path condition as
    # variable-disjoint groups; these entry points accept that partition
    # directly, so the solver never re-derives it with a union-find.  The
    # only coupling a query's extra constraints can introduce is between
    # themselves and the groups sharing their variables, which one pass of
    # set intersections finds.

    def check_partition(self, varfree: Sequence[Expr],
                        groups: Sequence[Sequence[Expr]],
                        extras: Sequence[Expr] = ()) -> SolverResult:
        """Satisfiability of ``varfree + groups + extras``, where ``groups``
        are known variable-disjoint (a state's constraint partition)."""
        start = time.perf_counter()
        self.stats.queries += 1
        self._begin_query(start)
        if _SOLVER_CHECK.armed:
            _SOLVER_CHECK.fire()
        try:
            return self._check_partition(varfree, groups, extras)
        finally:
            self.stats.time_seconds += time.perf_counter() - start

    def _filter_constraints(self, constraints: Sequence[Expr]
                            ) -> Optional[List[Expr]]:
        """Drop constraints decided by constant folding or the interval
        fast path; ``None`` means one of them is provably false."""
        remaining: List[Expr] = []
        for constraint in constraints:
            if constraint.is_constant:
                if constraint.value == 0:
                    self.stats.fast_path_decisions += 1
                    return None
                continue
            low, high = unsigned_interval(constraint)
            if high == 0:
                self.stats.fast_path_decisions += 1
                return None
            if low >= 1:
                self.stats.fast_path_decisions += 1
                continue
            remaining.append(constraint)
        return remaining

    def _check_partition(self, varfree: Sequence[Expr],
                         groups: Sequence[Sequence[Expr]],
                         extras: Sequence[Expr]) -> SolverResult:
        group_list = list(groups)
        for constraint in varfree:
            if constraint.is_constant:
                if constraint.value == 0:
                    self.stats.fast_path_decisions += 1
                    return SolverResult(False)
            else:  # pragma: no cover - constructors fold variable-free exprs
                group_list.append((constraint,))
        extra_remaining = self._filter_constraints(extras)
        if extra_remaining is None:
            return SolverResult(False)
        filtered_groups: List[List[Expr]] = []
        remaining_all: List[Expr] = list(extra_remaining)
        for group in group_list:
            filtered = self._filter_constraints(group)
            if filtered is None:
                return SolverResult(False)
            if filtered:
                filtered_groups.append(filtered)
                remaining_all.extend(filtered)
        if not remaining_all:
            return SolverResult(True, model={})
        key = frozenset(remaining_all)
        if self.enable_cache:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
        solve_groups: List[List[Expr]]
        if extra_remaining:
            extra_vars: set = set()
            for constraint in extra_remaining:
                extra_vars |= constraint.variables()
            bridged: List[Expr] = list(extra_remaining)
            solve_groups = []
            for group in filtered_groups:
                if any(constraint.variables() & extra_vars
                       for constraint in group):
                    bridged.extend(group)
                else:
                    solve_groups.append(group)
            solve_groups.append(bridged)
        else:
            solve_groups = filtered_groups
        combined_model: Dict[str, int] = {}
        exact = True
        for group in solve_groups:
            result = self._solve_group(group)
            if not result.satisfiable:
                final = SolverResult(False, exact=result.exact)
                if self.enable_cache and result.exact:
                    self._cache[key] = final
                return final
            exact &= result.exact
            if result.model:
                combined_model.update(result.model)
        final = SolverResult(True, model=combined_model, exact=exact)
        if self.enable_cache and exact:
            self._cache[key] = final
        return final

    def may_be_true_partition(self, varfree: Sequence[Expr],
                              groups: Sequence[Sequence[Expr]],
                              condition: Expr) -> bool:
        """Partitioned :meth:`may_be_true`."""
        if condition.is_constant:
            return bool(condition.value)
        return self.check_partition(varfree, groups, (condition,)).satisfiable

    def check_branch_partition(self, varfree: Sequence[Expr],
                               groups: Sequence[Sequence[Expr]],
                               condition: Expr,
                               assume_base_satisfiable: bool = True
                               ) -> Tuple[bool, bool]:
        """Partitioned :meth:`check_branch` (same work sharing between the
        two sides of the fork)."""
        if condition.is_constant:
            truth = bool(condition.value)
            return truth, not truth
        self.stats.branch_checks += 1
        true_result = self.check_partition(varfree, groups, (condition,))
        if not true_result.satisfiable and true_result.exact:
            self.stats.branch_sides_free += 1
            if assume_base_satisfiable:
                return False, True
            return False, self.check_partition(varfree, groups).satisfiable
        false_result = self.check_partition(varfree, groups,
                                            (not_expr(condition),))
        return true_result.satisfiable, false_result.satisfiable

    def concretization_model(self, varfree: Sequence[Expr],
                             groups: Sequence[Sequence[Expr]]
                             ) -> Optional[Dict[str, int]]:
        """A satisfying assignment whose *identity* depends only on the
        query — never on cache contents or worker scheduling.

        Satisfiability answers are deterministic everywhere (caches only
        return answers a fresh search would also reach), but the reuse
        layers may hand back *different models* for the same query
        depending on what another query cached first.  That is fine for
        witnesses, but the executor feeds one model back into control
        flow — address concretization pins ``address == model value`` —
        so it must come from this entry point: each group is solved by a
        fresh deterministic search, memoized per group on its stripe
        (the memoized value is a pure function of the group, so a race
        merely duplicates the search)."""
        start = time.perf_counter()
        self.stats.queries += 1
        self._begin_query(start)
        if _SOLVER_CHECK.armed:
            _SOLVER_CHECK.fire()
        try:
            for constraint in varfree:
                if constraint.is_constant and constraint.value == 0:
                    return None
            completed: Dict[str, int] = {}
            for group in groups:
                filtered = self._filter_constraints(group)
                if filtered is None:
                    return None
                if not filtered:
                    continue
                key = frozenset(filtered)
                stripe = self._shared.stripe_for(key)
                with stripe.lock:
                    model = stripe.canonical_models.get(key)
                    if model is not None and \
                            key in stripe.canonical_from_store:
                        self.stats.store_hits += 1
                if model is None:
                    result = self._solve_group_uncached(filtered)
                    if not result.satisfiable or not result.exact or \
                            result.model is None:
                        return None
                    model = dict(result.model)
                    if self.enable_cache:
                        with stripe.lock:
                            stripe.canonical_models[key] = model
                completed.update(model)
            for group in groups:
                for constraint in group:
                    for name in constraint.variables():
                        if name not in completed:
                            completed[name] = 0
            return completed
        finally:
            self.stats.time_seconds += time.perf_counter() - start

    def model_for_partition(self, varfree: Sequence[Expr],
                            groups: Sequence[Sequence[Expr]]
                            ) -> Optional[Dict[str, int]]:
        """Partitioned :meth:`get_model`: a satisfying assignment covering
        every variable of the partition, or None.  Per-group results come
        straight from the group caches, so a fully explored state's model
        costs one dict union.  The model's identity may depend on cache
        state; when the model feeds back into control flow, use
        :meth:`concretization_model` instead."""
        result = self.check_partition(varfree, groups)
        if not result.satisfiable or not result.exact or result.model is None:
            return None
        completed = dict(result.model)
        for group in groups:
            for constraint in group:
                for name in constraint.variables():
                    if name not in completed:
                        completed[name] = 0
        return completed

    # ------------------------------------------------------------ internals
    def _check(self, constraints: List[Expr]) -> SolverResult:
        # 1. Trivial filtering.
        filtered: List[Expr] = []
        for constraint in constraints:
            if constraint.is_constant:
                if constraint.value == 0:
                    self.stats.fast_path_decisions += 1
                    return SolverResult(False)
                continue
            filtered.append(constraint)
        if not filtered:
            return SolverResult(True, model={})

        # 2. Interval fast path per constraint.
        remaining: List[Expr] = []
        for constraint in filtered:
            low, high = unsigned_interval(constraint)
            if high == 0:
                self.stats.fast_path_decisions += 1
                return SolverResult(False)
            if low >= 1:
                self.stats.fast_path_decisions += 1
                continue
            remaining.append(constraint)
        if not remaining:
            return SolverResult(True, model={})

        # 3. Cache.
        key = frozenset(remaining)
        if self.enable_cache:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached

        result = self._solve_groups(remaining)
        if self.enable_cache and result.exact:
            self._cache[key] = result
        return result

    # ------------------------------------------------------- group solving
    def _solve_groups(self, constraints: List[Expr]) -> SolverResult:
        groups = self._independent_groups(constraints) \
            if self.enable_independence else [constraints]
        combined_model: Dict[str, int] = {}
        exact = True
        for group in groups:
            result = self._solve_group(group)
            if not result.satisfiable:
                return SolverResult(False, exact=result.exact)
            exact &= result.exact
            if result.model:
                combined_model.update(result.model)
        return SolverResult(True, model=combined_model, exact=exact)

    def _independent_groups(self, constraints: List[Expr]) -> List[List[Expr]]:
        """Partition constraints into groups that share no variables."""
        parent: Dict[str, str] = {}

        def find(name: str) -> str:
            while parent.get(name, name) != name:
                parent[name] = parent.get(parent[name], parent[name])
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for constraint in constraints:
            names = sorted(constraint.variables())
            for name in names:
                parent.setdefault(name, name)
            for a, b in zip(names, names[1:]):
                union(a, b)

        groups: Dict[str, List[Expr]] = {}
        no_vars: List[Expr] = []
        for constraint in constraints:
            names = constraint.variables()
            if not names:
                no_vars.append(constraint)
                continue
            root = find(sorted(names)[0])
            groups.setdefault(root, []).append(constraint)
        result = list(groups.values())
        if no_vars:
            result.append(no_vars)
        return result

    def _solve_group(self, constraints: List[Expr]) -> SolverResult:
        self.stats.group_queries += 1
        group_key = frozenset(constraints)
        stripe = self._shared.stripe_for(group_key)
        if self.enable_cache:
            with stripe.lock:
                cached = stripe.group_cache.get(group_key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    if group_key in stripe.from_store:
                        self.stats.store_hits += 1
                    return cached
                if self.config.ubtree:
                    # Under the lock: only the trie walks (they read the
                    # shared structure).  Candidate-model *evaluations*
                    # happen outside, below.
                    unsat, superset_model, candidates = \
                        self._ubtree_snapshot(stripe, constraints)
                else:
                    unsat, superset_model = False, None
                    candidates = list(stripe.models)
            result, winner = self._resolve_model_candidates(
                constraints, unsat, superset_model, candidates,
                counted_as_ubtree=self.config.ubtree)
            if result is not None:
                with stripe.lock:
                    if not self.config.ubtree and winner >= 0:
                        # LRU bump of the winning source model (candidates
                        # snapshot order == stripe.models order).
                        source = candidates[winner]
                        try:
                            index = stripe.models.index(source)
                        except ValueError:
                            index = -1  # evicted meanwhile; nothing to bump
                        if index > 0:
                            stripe.models.insert(
                                0, stripe.models.pop(index))
                    stripe.group_cache[group_key] = result
                return result
        # The search itself runs outside the stripe lock: it can be orders
        # of magnitude more expensive than a lookup, and duplicating it in
        # the (rare) event of two workers racing on one group is cheaper
        # than serializing every colliding query behind it.
        result = self._solve_group_uncached(constraints)
        if self.enable_cache and result.exact:
            core = constraints
            if not result.satisfiable and self.config.ubtree and \
                    self.config.minimize_cores and \
                    1 < len(constraints) <= CORE_MINIMIZATION_LIMIT:
                core = self._minimize_unsat_core(constraints)
            with stripe.lock:
                stripe.group_cache[group_key] = result
                if self.config.ubtree:
                    if result.satisfiable:
                        if result.model:
                            stripe.sat_index.insert(constraints,
                                                    dict(result.model))
                    else:
                        stripe.unsat_index.insert(core, True)
                elif result.satisfiable and result.model:
                    self._remember_model(stripe, result.model)
        return result

    def _minimize_unsat_core(self, constraints: List[Expr]) -> List[Expr]:
        """Shrink an UNSAT group to a minimal core by a greedy deletion
        filter: drop each constraint in turn and keep the deletion whenever
        the remainder is still provably UNSAT.  The result is subset-
        minimal with respect to single deletions, so the UNSAT index entry
        subsumes every future query containing just the core.

        The probe solves are bookkeeping, not query work: they run against
        a scratch stats object so ``csp_searches``/``assignments_tried``
        keep measuring what the workload itself cost."""
        core = list(constraints)
        saved_stats = self.stats
        self.stats = SolverStats()
        try:
            index = 0
            while len(core) > 1 and index < len(core):
                candidate = core[:index] + core[index + 1:]
                probe = self._solve_group_uncached(candidate)
                if probe.exact and not probe.satisfiable:
                    core = candidate
                else:
                    index += 1
        finally:
            self.stats = saved_stats
        if len(core) < len(constraints):
            self.stats.cores_minimized += 1
        return core

    # ---------------------------------------------------------- model reuse
    @staticmethod
    def _ubtree_snapshot(stripe: _CacheStripe, constraints: List[Expr]
                         ) -> Tuple[bool, Optional[Dict[str, int]],
                                    List[Dict[str, int]]]:
        """The trie walks of a counterexample-cache lookup (caller holds
        the stripe lock): whether a cached UNSAT subset proves the query
        UNSAT, a cached SAT superset's model if any, and up to
        ``SUBSET_MODEL_TRIALS`` cached subset models to try as candidates.
        Candidate *evaluation* is the expensive part and happens outside
        the lock (:meth:`_resolve_model_candidates`)."""
        if stripe.unsat_index.find_subset(constraints) is not None:
            return True, None, []
        superset_model = stripe.sat_index.find_superset(constraints)
        if superset_model is not None:
            return False, superset_model, []
        candidates = []
        for trial, model in enumerate(
                stripe.sat_index.iter_subsets(constraints)):
            if trial >= SUBSET_MODEL_TRIALS:
                break
            candidates.append(model)
        return False, None, candidates

    def _resolve_model_candidates(self, constraints: List[Expr],
                                  unsat: bool,
                                  superset_model: Optional[Dict[str, int]],
                                  candidates: List[Dict[str, int]],
                                  counted_as_ubtree: bool
                                  ) -> Tuple[Optional[SolverResult], int]:
        """Turn a lookup snapshot into ``(result, winning candidate index)``
        — candidate evaluation runs outside any stripe lock; the index is
        -1 unless a candidate model won (the linear mode's LRU bump needs
        it).

        Three containment rules, in order of strength: a cached UNSAT set
        contained in the query proves UNSAT; a cached SAT superset's model
        satisfies every queried constraint outright; a cached subset's (or,
        with the UBTree disabled, any recent) model satisfies part of the
        query by construction and is tried as a candidate for the rest
        (unmentioned variables default to zero).
        """
        if unsat:
            self.stats.ubtree_hits += 1
            return SolverResult(False), -1
        variables: set = set()
        for constraint in constraints:
            variables |= constraint.variables()
        if superset_model is not None:
            self.stats.ubtree_hits += 1
            self.stats.model_cache_hits += 1
            candidate = {name: superset_model.get(name, 0)
                         for name in variables}
            return SolverResult(True, model=candidate), -1
        for index, model in enumerate(candidates):
            candidate = {name: model.get(name, 0) for name in variables}
            if all(c.evaluate(candidate) == 1 for c in constraints):
                if counted_as_ubtree:
                    self.stats.ubtree_hits += 1
                self.stats.model_cache_hits += 1
                return SolverResult(True, model=candidate), index
        if not counted_as_ubtree:
            # The linear scan exhausted the recent models: a plain miss.
            return None, -1
        # The all-zeros assignment is the cache's implicit first entry: it
        # is what every cached model defaults unmentioned variables to, so
        # trying it keeps the disjoint-variable hits the linear scan got
        # from zero-extending unrelated models.  It is not a set-trie
        # lookup, so it counts as a model-cache hit only — ``ubtree_hits``
        # measures genuine containment hits.
        zeros = dict.fromkeys(variables, 0)
        if all(c.evaluate(zeros) == 1 for c in constraints):
            self.stats.model_cache_hits += 1
            return SolverResult(True, model=zeros), -1
        self.stats.ubtree_misses += 1
        return None, -1

    @staticmethod
    def _remember_model(stripe: _CacheStripe, model: Dict[str, int]) -> None:
        if not model:
            return
        stripe.models.insert(0, model)
        del stripe.models[MODEL_CACHE_SIZE:]

    # ----------------------------------------------------------- CSP search
    def _solve_group_uncached(self, constraints: List[Expr]) -> SolverResult:
        self.stats.csp_searches += 1
        variables = sorted(set(itertools.chain.from_iterable(
            c.variables() for c in constraints)))
        if not variables:
            # Variable-free constraints fold to constants during
            # simplification; anything left is treated as satisfiable.
            return SolverResult(True, model={})

        widths: Dict[str, int] = {}
        for constraint in constraints:
            self._collect_widths(constraint, widths)

        if self.config.branch_and_prune and \
                any(widths.get(name, 8) > 16 for name in variables):
            return self._branch_and_prune(constraints, variables, widths)

        # Unary-constraint domain pruning.
        domains: Dict[str, List[int]] = {}
        unary: Dict[str, List[Expr]] = {}
        multi: List[Expr] = []
        for constraint in constraints:
            names = constraint.variables()
            if len(names) == 1:
                unary.setdefault(next(iter(names)), []).append(constraint)
            else:
                multi.append(constraint)
        sparse = False
        for name in variables:
            width = widths.get(name, 8)
            sparse_domain = width > 16
            if sparse_domain:
                # Wide variables cannot be enumerated; fall back to a sparse
                # candidate set: boundary values plus every constant
                # mentioned in the constraints (and its neighbours), which
                # catches the common equality/ordering shapes.  The search
                # is no longer a decision procedure, so a failure below must
                # report "maybe satisfiable", never UNSAT.
                sparse = True
                candidates = {0, 1, 2, 255, mask(width) - 1, mask(width)}
                for seed in self._constant_seeds(constraints):
                    candidates.update({seed & mask(width),
                                       (seed - 1) & mask(width),
                                       (seed + 1) & mask(width)})
                domain = sorted(candidates)
                for constraint in unary.get(name, []):
                    domain = [value for value in domain
                              if constraint.evaluate({name: value}) == 1]
                    self.stats.assignments_tried += len(domain)
            else:
                domain = list(range(mask(width) + 1))
                for constraint in unary.get(name, []):
                    allowed = self._unary_satisfying_values(constraint, name,
                                                            width)
                    domain = [value for value in domain if value in allowed]
            if not domain:
                if sparse_domain:
                    # The emptied domain was not exhaustive: no UNSAT proof.
                    self.stats.unknown_results += 1
                    return SolverResult(True, model=None, exact=False)
                return SolverResult(False)
            domains[name] = domain

        # Order variables: smallest domain first (most constrained first).
        order = sorted(variables, key=lambda name: len(domains[name]))
        constraint_vars = [(c, c.variables()) for c in multi]

        assignment: Dict[str, int] = {}
        budget = [self.max_assignments]
        deadline = self._deadline
        deadline_hit = [False]
        if deadline and time.perf_counter() > deadline:
            # Already past deadline before searching (queueing delays, a
            # slow group earlier in the same query): answer conservatively
            # now instead of starting a search we must abandon.
            self.stats.unknown_results += 1
            self.stats.query_deadlines += 1
            return SolverResult(True, model=None, exact=False)

        def backtrack(index: int) -> Optional[Dict[str, int]]:
            if index == len(order):
                return dict(assignment)
            name = order[index]
            assigned_after = set(order[:index + 1])
            relevant = [c for c, names in constraint_vars
                        if name in names and names <= assigned_after]
            for value in domains[name]:
                if budget[0] <= 0:
                    return None
                budget[0] -= 1
                if deadline and (budget[0] & 0xFF) == 0 and \
                        time.perf_counter() > deadline:
                    # Deadline expiry reuses the budget-exhaustion exit:
                    # same conservative "maybe satisfiable" downstream.
                    deadline_hit[0] = True
                    budget[0] = 0
                    return None
                self.stats.assignments_tried += 1
                assignment[name] = value
                if all(c.evaluate(assignment) == 1 for c in relevant):
                    result = backtrack(index + 1)
                    if result is not None:
                        return result
                del assignment[name]
            return None

        model = backtrack(0)
        if model is not None:
            return SolverResult(True, model=model)
        if budget[0] <= 0 or sparse:
            # Budget exhausted, or the candidate sets were sparse and thus
            # not exhaustive: be conservative (never prune a feasible path).
            self.stats.unknown_results += 1
            if deadline_hit[0]:
                self.stats.query_deadlines += 1
            return SolverResult(True, model=None, exact=False)
        return SolverResult(False)

    # ------------------------------------------------------ branch-and-prune
    def _branch_and_prune(self, constraints: List[Expr],
                          variables: List[str],
                          widths: Dict[str, int]) -> SolverResult:
        """Interval branch-and-prune for groups with wide (>16-bit)
        variables, replacing the inexact sparse-domain fallback.

        The search maintains a box of per-variable intervals.  At each box
        every constraint is evaluated in interval arithmetic
        (:func:`bounded_interval`): a constraint whose interval is exactly 0
        prunes the box, a box where every constraint's interval is exactly 1
        yields a model immediately, and boxes small enough are enumerated
        concretely.  Otherwise the widest interval is split and both halves
        are searched.  Interval arithmetic is conservative, so pruning
        never loses a solution: an UNSAT answer is exact unless the
        split/assignment budget ran out, in which case the result is the
        conservative "maybe satisfiable".

        With ``SolverConfig.seeded_splits`` (default on) the split point
        bisects toward a constant mentioned in the constraints instead of
        the interval midpoint.  The satisfying band of an equality or
        ordering constraint starts or ends at such a constant, so splitting
        at ``c``/``c - 1`` makes one half decidable by the interval
        transfer almost immediately — an equality-heavy query resolves in
        O(#constants) splits where midpoint bisection needs O(log range)
        per constant.  Midpoints remain the fallback when no constant lies
        strictly inside the interval.
        """
        box = {name: (0, mask(widths.get(name, 8))) for name in variables}
        budget = [self.max_assignments]
        splits = [BNP_MAX_SPLITS]
        exhausted = [False]
        deadline = self._deadline
        deadline_hit = [False]
        split_seeds: List[int] = []
        if self.config.seeded_splits:
            # c ends the satisfying band of "x <= c"/"x == c"; c - 1 ends
            # the band of "x < c" and isolates c itself on the next split.
            # The signed boundary of each variable width joins the seeds:
            # it is the one point the unsigned interval transfer cannot
            # reason across, so splitting exactly there turns a
            # sign-crossing box into two sign-pure (decidable) halves —
            # and a seed split elsewhere must not knock later bisection
            # off that alignment.
            points = {point for seed in self._constant_seeds(constraints)
                      for point in (seed - 1, seed)}
            points.update((1 << (widths.get(name, 8) - 1)) - 1
                          for name in variables)
            split_seeds = sorted(points)

        def split_point(low: int, high: int) -> int:
            mid = (low + high) // 2
            best = mid
            best_distance = None
            for point in split_seeds:
                if low <= point < high:
                    distance = abs(point - mid)
                    if best_distance is None or distance < best_distance:
                        best, best_distance = point, distance
                elif point >= high:
                    break
            return best

        def enumerate_box(current: Dict[str, Tuple[int, int]],
                          undecided: List[Expr]
                          ) -> Optional[Dict[str, int]]:
            names = list(current)
            ranges = [range(low, high + 1) for low, high in current.values()]
            for point in itertools.product(*ranges):
                if budget[0] <= 0:
                    exhausted[0] = True
                    return None
                budget[0] -= 1
                self.stats.assignments_tried += 1
                assignment = dict(zip(names, point))
                if all(c.evaluate(assignment) == 1 for c in undecided):
                    return assignment
            return None

        def search(current: Dict[str, Tuple[int, int]]
                   ) -> Optional[Dict[str, int]]:
            if deadline and time.perf_counter() > deadline:
                # One clock read per box, only when a deadline is armed:
                # the split loop is the interruption point the per-query
                # deadline rides on.
                exhausted[0] = True
                deadline_hit[0] = True
                return None
            undecided: List[Expr] = []
            for constraint in constraints:
                low, high = bounded_interval(constraint, current)
                if high == 0:
                    return None  # no point of this box can satisfy it
                if low == 0:
                    undecided.append(constraint)
            if not undecided:
                # Every constraint holds on the whole box: any corner works.
                return {name: low for name, (low, _) in current.items()}
            points = 1
            for low, high in current.values():
                points *= high - low + 1
                if points > BNP_LEAF_ENUMERATION:
                    break
            if points <= BNP_LEAF_ENUMERATION:
                return enumerate_box(current, undecided)
            if splits[0] <= 0 or budget[0] <= 0:
                exhausted[0] = True
                return None
            splits[0] -= 1
            self.stats.prune_splits += 1
            name = max(current, key=lambda n: current[n][1] - current[n][0])
            low, high = current[name]
            mid = split_point(low, high)
            for half in ((low, mid), (mid + 1, high)):
                result = search({**current, name: half})
                if result is not None:
                    return result
            return None

        model = search(box)
        if model is not None:
            return SolverResult(True, model=model)
        if exhausted[0]:
            self.stats.unknown_results += 1
            if deadline_hit[0]:
                self.stats.query_deadlines += 1
            return SolverResult(True, model=None, exact=False)
        return SolverResult(False)

    @staticmethod
    def _constant_seeds(constraints: List[Expr]) -> FrozenSet[int]:
        """Every constant value appearing in the constraint expressions
        (candidate seeds for sparse wide-variable domains)."""
        seeds: set = set()
        stack: List[Expr] = list(constraints)
        while stack:
            node = stack.pop()
            if node.op is ExprOp.CONST:
                seeds.add(node.value)
            stack.extend(node.operands)
        return frozenset(seeds)

    def _unary_satisfying_values(self, constraint: Expr, name: str,
                                 width: int) -> FrozenSet[int]:
        """The set of values of ``name`` satisfying a single-variable
        constraint, built once per unique (interned) constraint and cached
        for every later query that mentions it.

        Construction is a one-dimensional branch-and-prune rather than a
        full-domain sweep: a subrange the interval transfer decides is
        accepted or rejected wholesale without evaluating a single point,
        and only undecidable leaves are enumerated concretely."""
        key = (constraint, width)
        cached = self._unary_sat.get(key)
        if cached is not None:
            return cached
        values: List[int] = []
        evaluate = constraint.evaluate
        tried = 0

        def collect(low_value: int, high_value: int) -> None:
            nonlocal tried
            low, high = bounded_interval(constraint,
                                         {name: (low_value, high_value)})
            if high == 0:
                return
            if low >= 1:
                values.extend(range(low_value, high_value + 1))
                return
            if high_value - low_value < 16:
                for value in range(low_value, high_value + 1):
                    tried += 1
                    if evaluate({name: value}) == 1:
                        values.append(value)
                return
            mid = (low_value + high_value) // 2
            collect(low_value, mid)
            collect(mid + 1, high_value)

        collect(0, mask(width))
        self.stats.assignments_tried += tried
        cached = frozenset(values)
        self._unary_sat[key] = cached
        return cached

    @staticmethod
    def _collect_widths(expr: Expr, widths: Dict[str, int]) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if node.op is ExprOp.VAR:
                widths[node.name] = max(widths.get(node.name, 0), node.width)
            stack.extend(node.operands)
