"""The constraint solver used by the symbolic executor.

KLEE delegates to STP; this reproduction ships its own solver tuned for the
constraint shapes symbolic execution of byte-oriented programs produces:
conjunctions of comparisons over a handful of 8-bit input variables.

The solver combines, in order of increasing cost:

1. expression-level simplification (done by the smart constructors),
2. an interval fast path that decides constraints whose truth value does not
   depend on the variables at all,
3. independent-constraint decomposition (KLEE's ``--use-independent-solver``):
   constraints are partitioned by shared variables so each group is solved
   separately,
4. a backtracking CSP search over the byte domains of the variables in a
   group, with unary-constraint domain pruning and early constraint checking,
5. query caching (both full queries and per-group results).

The solver is complete for the expression language as long as the search
budget is not exhausted; when it is, the query conservatively reports
"maybe satisfiable" so that the executor never prunes a feasible path.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .expr import Expr, ExprOp, mask, unsigned_interval
from .simplify import const, not_expr


@dataclass
class SolverStats:
    """Counters describing solver work (reported by the harness)."""

    queries: int = 0
    cache_hits: int = 0
    fast_path_decisions: int = 0
    csp_searches: int = 0
    assignments_tried: int = 0
    unknown_results: int = 0
    time_seconds: float = 0.0


@dataclass
class SolverResult:
    """Outcome of a satisfiability query."""

    satisfiable: bool
    model: Optional[Dict[str, int]] = None
    #: True when the search budget was exhausted and the result is the
    #: conservative answer rather than a proof.
    exact: bool = True


class Solver:
    """A small, self-contained constraint solver for bitvector conjunctions."""

    def __init__(self, max_assignments: int = 200_000,
                 enable_independence: bool = True,
                 enable_cache: bool = True) -> None:
        self.max_assignments = max_assignments
        self.enable_independence = enable_independence
        self.enable_cache = enable_cache
        self.stats = SolverStats()
        self._cache: Dict[FrozenSet[Expr], SolverResult] = {}
        self._group_cache: Dict[FrozenSet[Expr], SolverResult] = {}

    # ------------------------------------------------------------------ API
    def check(self, constraints: Sequence[Expr]) -> SolverResult:
        """Is the conjunction of ``constraints`` satisfiable?"""
        start = time.perf_counter()
        self.stats.queries += 1
        try:
            return self._check(list(constraints))
        finally:
            self.stats.time_seconds += time.perf_counter() - start

    def is_satisfiable(self, constraints: Sequence[Expr]) -> bool:
        return self.check(constraints).satisfiable

    def get_model(self, constraints: Sequence[Expr]) -> Optional[Dict[str, int]]:
        """A satisfying assignment covering every variable in the query, or
        None if the constraints are unsatisfiable."""
        result = self.check(constraints)
        if not result.satisfiable:
            return None
        if result.model is not None:
            return result.model
        # The fast path may answer without building a model; fall back to the
        # full search for one.
        return self._solve_groups(list(constraints), need_model=True).model

    def may_be_true(self, constraints: Sequence[Expr], condition: Expr) -> bool:
        """Can ``condition`` be true under ``constraints``?"""
        if condition.is_constant:
            return bool(condition.value)
        return self.is_satisfiable(list(constraints) + [condition])

    def may_be_false(self, constraints: Sequence[Expr], condition: Expr) -> bool:
        if condition.is_constant:
            return not condition.value
        return self.is_satisfiable(list(constraints) + [not_expr(condition)])

    # ------------------------------------------------------------ internals
    def _check(self, constraints: List[Expr]) -> SolverResult:
        # 1. Trivial filtering.
        filtered: List[Expr] = []
        for constraint in constraints:
            if constraint.is_constant:
                if constraint.value == 0:
                    self.stats.fast_path_decisions += 1
                    return SolverResult(False)
                continue
            filtered.append(constraint)
        if not filtered:
            return SolverResult(True, model={})

        # 2. Interval fast path per constraint.
        remaining: List[Expr] = []
        for constraint in filtered:
            low, high = unsigned_interval(constraint)
            if high == 0:
                self.stats.fast_path_decisions += 1
                return SolverResult(False)
            if low >= 1:
                self.stats.fast_path_decisions += 1
                continue
            remaining.append(constraint)
        if not remaining:
            return SolverResult(True, model={})

        # 3. Cache.
        key = frozenset(remaining)
        if self.enable_cache:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached

        result = self._solve_groups(remaining, need_model=False)
        if self.enable_cache and result.exact:
            self._cache[key] = result
        return result

    # ------------------------------------------------------- group solving
    def _solve_groups(self, constraints: List[Expr],
                      need_model: bool) -> SolverResult:
        groups = self._independent_groups(constraints) \
            if self.enable_independence else [constraints]
        combined_model: Dict[str, int] = {}
        exact = True
        for group in groups:
            result = self._solve_group(group)
            if not result.satisfiable:
                return SolverResult(False, exact=result.exact)
            exact &= result.exact
            if result.model:
                combined_model.update(result.model)
        return SolverResult(True, model=combined_model, exact=exact)

    def _independent_groups(self, constraints: List[Expr]) -> List[List[Expr]]:
        """Partition constraints into groups that share no variables."""
        parent: Dict[str, str] = {}

        def find(name: str) -> str:
            while parent.get(name, name) != name:
                parent[name] = parent.get(parent[name], parent[name])
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for constraint in constraints:
            names = sorted(constraint.variables())
            for name in names:
                parent.setdefault(name, name)
            for a, b in zip(names, names[1:]):
                union(a, b)

        groups: Dict[str, List[Expr]] = {}
        no_vars: List[Expr] = []
        for constraint in constraints:
            names = constraint.variables()
            if not names:
                no_vars.append(constraint)
                continue
            root = find(sorted(names)[0])
            groups.setdefault(root, []).append(constraint)
        result = list(groups.values())
        if no_vars:
            result.append(no_vars)
        return result

    def _solve_group(self, constraints: List[Expr]) -> SolverResult:
        group_key = frozenset(constraints)
        if self.enable_cache:
            cached = self._group_cache.get(group_key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
        result = self._solve_group_uncached(constraints)
        if self.enable_cache and result.exact:
            self._group_cache[group_key] = result
        return result

    def _solve_group_uncached(self, constraints: List[Expr]) -> SolverResult:
        self.stats.csp_searches += 1
        variables = sorted(set(itertools.chain.from_iterable(
            c.variables() for c in constraints)))
        if not variables:
            # Variable-free constraints fold to constants during
            # simplification; anything left is treated as satisfiable.
            return SolverResult(True, model={})

        widths: Dict[str, int] = {}
        for constraint in constraints:
            self._collect_widths(constraint, widths)

        # Unary-constraint domain pruning.
        domains: Dict[str, List[int]] = {}
        unary: Dict[str, List[Expr]] = {}
        multi: List[Expr] = []
        for constraint in constraints:
            names = constraint.variables()
            if len(names) == 1:
                unary.setdefault(next(iter(names)), []).append(constraint)
            else:
                multi.append(constraint)
        for name in variables:
            width = widths.get(name, 8)
            if width > 16:
                # Wide variables cannot be enumerated; fall back to a sparse
                # candidate set (boundary values); exactness is dropped.
                domain = [0, 1, 2, 255, mask(width) - 1, mask(width)]
            else:
                domain = list(range(mask(width) + 1))
            for constraint in unary.get(name, []):
                domain = [value for value in domain
                          if constraint.evaluate({name: value}) == 1]
                self.stats.assignments_tried += len(domain)
            if not domain:
                return SolverResult(False)
            domains[name] = domain

        # Order variables: smallest domain first (most constrained first).
        order = sorted(variables, key=lambda name: len(domains[name]))
        constraint_vars = [(c, c.variables()) for c in multi]

        assignment: Dict[str, int] = {}
        budget = [self.max_assignments]

        def backtrack(index: int) -> Optional[Dict[str, int]]:
            if index == len(order):
                return dict(assignment)
            name = order[index]
            assigned_after = set(order[:index + 1])
            relevant = [c for c, names in constraint_vars
                        if name in names and names <= assigned_after]
            for value in domains[name]:
                if budget[0] <= 0:
                    return None
                budget[0] -= 1
                self.stats.assignments_tried += 1
                assignment[name] = value
                if all(c.evaluate(assignment) == 1 for c in relevant):
                    result = backtrack(index + 1)
                    if result is not None:
                        return result
                del assignment[name]
            return None

        model = backtrack(0)
        if model is not None:
            return SolverResult(True, model=model)
        if budget[0] <= 0:
            # Budget exhausted: be conservative (never prune a feasible path).
            self.stats.unknown_results += 1
            return SolverResult(True, model=None, exact=False)
        return SolverResult(False)

    @staticmethod
    def _collect_widths(expr: Expr, widths: Dict[str, int]) -> None:
        if expr.op is ExprOp.VAR:
            widths[expr.name] = max(widths.get(expr.name, 0), expr.width)
        for operand in expr.operands:
            Solver._collect_widths(operand, widths)
