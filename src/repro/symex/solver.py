"""The constraint solver used by the symbolic executor.

KLEE delegates to STP; this reproduction ships its own solver tuned for the
constraint shapes symbolic execution of byte-oriented programs produces:
conjunctions of comparisons over a handful of 8-bit input variables.

The solver combines, in order of increasing cost:

1. expression-level simplification (done by the smart constructors),
2. an interval fast path that decides constraints whose truth value does not
   depend on the variables at all,
3. independent-constraint decomposition (KLEE's ``--use-independent-solver``):
   constraints are partitioned by shared variables so each group is solved
   separately,
4. a **model-reuse (counterexample) cache**: models from previously
   satisfiable queries are tried against new queries before any search —
   a superset query's model satisfies every subset query, and a subset
   query's model frequently extends to the superset (KLEE's counterexample
   cache),
5. a backtracking CSP search over the byte domains of the variables in a
   group, with unary-constraint domain pruning and early constraint checking,
6. query caching (both full queries and per-group results, models included,
   so :meth:`Solver.get_model` never re-solves a decided query).

Branch feasibility uses :meth:`Solver.check_branch`, which shares work
between the two sides of a fork: when one side is proved unsatisfiable, the
other side follows from the satisfiability of the base path condition and
needs no new query.

The solver is complete for the expression language as long as the search
budget is not exhausted; when it is, the query conservatively reports
"maybe satisfiable" so that the executor never prunes a feasible path.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import asdict, dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .expr import Expr, ExprOp, mask, unsigned_interval
from .simplify import const, not_expr

#: How many recent models the model-reuse cache keeps (LRU).
MODEL_CACHE_SIZE = 64


@dataclass
class SolverStats:
    """Counters describing solver work (reported by the harness)."""

    queries: int = 0
    cache_hits: int = 0
    fast_path_decisions: int = 0
    csp_searches: int = 0
    assignments_tried: int = 0
    unknown_results: int = 0
    time_seconds: float = 0.0
    #: Independent-group sub-queries issued (cache hits included).
    group_queries: int = 0
    #: Group queries answered by re-using a model from a previous SAT answer.
    model_cache_hits: int = 0
    #: Two-sided branch feasibility checks (:meth:`Solver.check_branch`).
    branch_checks: int = 0
    #: Branch sides answered for free from the other side's UNSAT proof.
    branch_sides_free: int = 0

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)


@dataclass
class SolverResult:
    """Outcome of a satisfiability query."""

    satisfiable: bool
    model: Optional[Dict[str, int]] = None
    #: True when the search budget was exhausted and the result is the
    #: conservative answer rather than a proof.
    exact: bool = True


class Solver:
    """A small, self-contained constraint solver for bitvector conjunctions."""

    def __init__(self, max_assignments: int = 200_000,
                 enable_independence: bool = True,
                 enable_cache: bool = True) -> None:
        self.max_assignments = max_assignments
        self.enable_independence = enable_independence
        #: Gates all caching layers: the full-query cache, the per-group
        #: cache, and the model-reuse cache.
        self.enable_cache = enable_cache
        self.stats = SolverStats()
        self._cache: Dict[FrozenSet[Expr], SolverResult] = {}
        self._group_cache: Dict[FrozenSet[Expr], SolverResult] = {}
        #: Recently used satisfying assignments, most recent first.
        self._models: List[Dict[str, int]] = []
        #: Unary constraint -> frozenset of satisfying variable values.
        #: Hash-consing makes the constraint expression itself the key.
        self._unary_sat: Dict[Tuple[Expr, int], FrozenSet[int]] = {}

    # ------------------------------------------------------------------ API
    def check(self, constraints: Sequence[Expr]) -> SolverResult:
        """Is the conjunction of ``constraints`` satisfiable?"""
        start = time.perf_counter()
        self.stats.queries += 1
        try:
            return self._check(list(constraints))
        finally:
            self.stats.time_seconds += time.perf_counter() - start

    def is_satisfiable(self, constraints: Sequence[Expr]) -> bool:
        return self.check(constraints).satisfiable

    def get_model(self, constraints: Sequence[Expr]) -> Optional[Dict[str, int]]:
        """A satisfying assignment covering every variable in the query, or
        None if the constraints are unsatisfiable."""
        result = self.check(constraints)
        if not result.satisfiable:
            return None
        model = result.model
        if model is None:
            # Only inexact answers (budget-exhausted or sparse wide-variable
            # domains) carry no model; every cached or fast-path decision
            # stores one.  Re-searching would deterministically repeat the
            # same bounded search, so report "no witness" directly.
            return None
        # Constraints dropped by the interval fast path hold under *any*
        # assignment, so completing with zeros keeps the model satisfying
        # while covering every variable of the query.
        completed = dict(model)
        for constraint in constraints:
            for name in constraint.variables():
                if name not in completed:
                    completed[name] = 0
        return completed

    def may_be_true(self, constraints: Sequence[Expr], condition: Expr) -> bool:
        """Can ``condition`` be true under ``constraints``?"""
        if condition.is_constant:
            return bool(condition.value)
        return self.is_satisfiable(list(constraints) + [condition])

    def may_be_false(self, constraints: Sequence[Expr], condition: Expr) -> bool:
        if condition.is_constant:
            return not condition.value
        return self.is_satisfiable(list(constraints) + [not_expr(condition)])

    def check_branch(self, constraints: Sequence[Expr], condition: Expr,
                     assume_base_satisfiable: bool = True
                     ) -> Tuple[bool, bool]:
        """Feasibility of both sides of a branch: ``(can_true, can_false)``.

        Shares work between the two sides: if ``constraints + [condition]``
        is proved unsatisfiable, every model of the base path condition makes
        ``condition`` false, so the false side is exactly the satisfiability
        of the base.  With ``assume_base_satisfiable`` (the executor's state
        invariant: a state's path condition is satisfiable) that side costs
        no query at all; otherwise the base is re-checked, which hits the
        per-group caches.
        """
        if condition.is_constant:
            truth = bool(condition.value)
            return truth, not truth
        self.stats.branch_checks += 1
        base = list(constraints)
        true_result = self.check(base + [condition])
        if not true_result.satisfiable and true_result.exact:
            self.stats.branch_sides_free += 1
            if assume_base_satisfiable:
                return False, True
            return False, self.check(base).satisfiable
        false_result = self.check(base + [not_expr(condition)])
        return true_result.satisfiable, false_result.satisfiable

    # ------------------------------------------------------------ internals
    def _check(self, constraints: List[Expr]) -> SolverResult:
        # 1. Trivial filtering.
        filtered: List[Expr] = []
        for constraint in constraints:
            if constraint.is_constant:
                if constraint.value == 0:
                    self.stats.fast_path_decisions += 1
                    return SolverResult(False)
                continue
            filtered.append(constraint)
        if not filtered:
            return SolverResult(True, model={})

        # 2. Interval fast path per constraint.
        remaining: List[Expr] = []
        for constraint in filtered:
            low, high = unsigned_interval(constraint)
            if high == 0:
                self.stats.fast_path_decisions += 1
                return SolverResult(False)
            if low >= 1:
                self.stats.fast_path_decisions += 1
                continue
            remaining.append(constraint)
        if not remaining:
            return SolverResult(True, model={})

        # 3. Cache.
        key = frozenset(remaining)
        if self.enable_cache:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached

        result = self._solve_groups(remaining)
        if self.enable_cache and result.exact:
            self._cache[key] = result
        return result

    # ------------------------------------------------------- group solving
    def _solve_groups(self, constraints: List[Expr]) -> SolverResult:
        groups = self._independent_groups(constraints) \
            if self.enable_independence else [constraints]
        combined_model: Dict[str, int] = {}
        exact = True
        for group in groups:
            result = self._solve_group(group)
            if not result.satisfiable:
                return SolverResult(False, exact=result.exact)
            exact &= result.exact
            if result.model:
                combined_model.update(result.model)
        return SolverResult(True, model=combined_model, exact=exact)

    def _independent_groups(self, constraints: List[Expr]) -> List[List[Expr]]:
        """Partition constraints into groups that share no variables."""
        parent: Dict[str, str] = {}

        def find(name: str) -> str:
            while parent.get(name, name) != name:
                parent[name] = parent.get(parent[name], parent[name])
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for constraint in constraints:
            names = sorted(constraint.variables())
            for name in names:
                parent.setdefault(name, name)
            for a, b in zip(names, names[1:]):
                union(a, b)

        groups: Dict[str, List[Expr]] = {}
        no_vars: List[Expr] = []
        for constraint in constraints:
            names = constraint.variables()
            if not names:
                no_vars.append(constraint)
                continue
            root = find(sorted(names)[0])
            groups.setdefault(root, []).append(constraint)
        result = list(groups.values())
        if no_vars:
            result.append(no_vars)
        return result

    def _solve_group(self, constraints: List[Expr]) -> SolverResult:
        self.stats.group_queries += 1
        group_key = frozenset(constraints)
        if self.enable_cache:
            cached = self._group_cache.get(group_key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
            reused = self._try_model_reuse(constraints)
            if reused is not None:
                result = SolverResult(True, model=reused)
                self._group_cache[group_key] = result
                return result
        result = self._solve_group_uncached(constraints)
        if self.enable_cache and result.exact:
            self._group_cache[group_key] = result
            if result.satisfiable and result.model:
                self._remember_model(result.model)
        return result

    # ---------------------------------------------------------- model reuse
    def _try_model_reuse(self, constraints: List[Expr]
                         ) -> Optional[Dict[str, int]]:
        """Try recently seen models against the query before searching.

        A hit covers both cache directions at once: the model of a superset
        query trivially satisfies a subset query, and a subset query's model
        extends to a superset query whenever the extra constraints happen to
        hold under it (unmentioned variables default to zero).
        """
        if not self._models:
            return None
        variables: set = set()
        for constraint in constraints:
            variables |= constraint.variables()
        for index, model in enumerate(self._models):
            candidate = {name: model.get(name, 0) for name in variables}
            if all(c.evaluate(candidate) == 1 for c in constraints):
                self.stats.model_cache_hits += 1
                if index:
                    self._models.insert(0, self._models.pop(index))
                return candidate
        return None

    def _remember_model(self, model: Dict[str, int]) -> None:
        if not model:
            return
        self._models.insert(0, model)
        del self._models[MODEL_CACHE_SIZE:]

    # ----------------------------------------------------------- CSP search
    def _solve_group_uncached(self, constraints: List[Expr]) -> SolverResult:
        self.stats.csp_searches += 1
        variables = sorted(set(itertools.chain.from_iterable(
            c.variables() for c in constraints)))
        if not variables:
            # Variable-free constraints fold to constants during
            # simplification; anything left is treated as satisfiable.
            return SolverResult(True, model={})

        widths: Dict[str, int] = {}
        for constraint in constraints:
            self._collect_widths(constraint, widths)

        # Unary-constraint domain pruning.
        domains: Dict[str, List[int]] = {}
        unary: Dict[str, List[Expr]] = {}
        multi: List[Expr] = []
        for constraint in constraints:
            names = constraint.variables()
            if len(names) == 1:
                unary.setdefault(next(iter(names)), []).append(constraint)
            else:
                multi.append(constraint)
        sparse = False
        for name in variables:
            width = widths.get(name, 8)
            sparse_domain = width > 16
            if sparse_domain:
                # Wide variables cannot be enumerated; fall back to a sparse
                # candidate set: boundary values plus every constant
                # mentioned in the constraints (and its neighbours), which
                # catches the common equality/ordering shapes.  The search
                # is no longer a decision procedure, so a failure below must
                # report "maybe satisfiable", never UNSAT.
                sparse = True
                candidates = {0, 1, 2, 255, mask(width) - 1, mask(width)}
                for seed in self._constant_seeds(constraints):
                    candidates.update({seed & mask(width),
                                       (seed - 1) & mask(width),
                                       (seed + 1) & mask(width)})
                domain = sorted(candidates)
                for constraint in unary.get(name, []):
                    domain = [value for value in domain
                              if constraint.evaluate({name: value}) == 1]
                    self.stats.assignments_tried += len(domain)
            else:
                domain = list(range(mask(width) + 1))
                for constraint in unary.get(name, []):
                    allowed = self._unary_satisfying_values(constraint, name,
                                                            width)
                    domain = [value for value in domain if value in allowed]
            if not domain:
                if sparse_domain:
                    # The emptied domain was not exhaustive: no UNSAT proof.
                    self.stats.unknown_results += 1
                    return SolverResult(True, model=None, exact=False)
                return SolverResult(False)
            domains[name] = domain

        # Order variables: smallest domain first (most constrained first).
        order = sorted(variables, key=lambda name: len(domains[name]))
        constraint_vars = [(c, c.variables()) for c in multi]

        assignment: Dict[str, int] = {}
        budget = [self.max_assignments]

        def backtrack(index: int) -> Optional[Dict[str, int]]:
            if index == len(order):
                return dict(assignment)
            name = order[index]
            assigned_after = set(order[:index + 1])
            relevant = [c for c, names in constraint_vars
                        if name in names and names <= assigned_after]
            for value in domains[name]:
                if budget[0] <= 0:
                    return None
                budget[0] -= 1
                self.stats.assignments_tried += 1
                assignment[name] = value
                if all(c.evaluate(assignment) == 1 for c in relevant):
                    result = backtrack(index + 1)
                    if result is not None:
                        return result
                del assignment[name]
            return None

        model = backtrack(0)
        if model is not None:
            return SolverResult(True, model=model)
        if budget[0] <= 0 or sparse:
            # Budget exhausted, or the candidate sets were sparse and thus
            # not exhaustive: be conservative (never prune a feasible path).
            self.stats.unknown_results += 1
            return SolverResult(True, model=None, exact=False)
        return SolverResult(False)

    @staticmethod
    def _constant_seeds(constraints: List[Expr]) -> FrozenSet[int]:
        """Every constant value appearing in the constraint expressions
        (candidate seeds for sparse wide-variable domains)."""
        seeds: set = set()
        stack: List[Expr] = list(constraints)
        while stack:
            node = stack.pop()
            if node.op is ExprOp.CONST:
                seeds.add(node.value)
            stack.extend(node.operands)
        return frozenset(seeds)

    def _unary_satisfying_values(self, constraint: Expr, name: str,
                                 width: int) -> FrozenSet[int]:
        """The set of values of ``name`` satisfying a single-variable
        constraint, enumerated once per unique (interned) constraint and
        cached for every later query that mentions it."""
        key = (constraint, width)
        cached = self._unary_sat.get(key)
        if cached is None:
            evaluate = constraint.evaluate
            cached = frozenset(value for value in range(mask(width) + 1)
                               if evaluate({name: value}) == 1)
            self.stats.assignments_tried += mask(width) + 1
            self._unary_sat[key] = cached
        return cached

    @staticmethod
    def _collect_widths(expr: Expr, widths: Dict[str, int]) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if node.op is ExprOp.VAR:
                widths[node.name] = max(widths.get(node.name, 0), node.width)
            stack.extend(node.operands)
