"""Execution states of the symbolic executor."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..interp.errors import ProgramError
from ..ir import Argument, BasicBlock, Function, Instruction, Value
from .expr import Expr
from .memory import SymbolicMemory


class StateStatus(enum.Enum):
    """Lifecycle of an execution state."""

    RUNNING = "running"
    COMPLETED = "completed"     # returned from the entry function
    ERROR = "error"             # a bug was detected on this path
    TERMINATED = "terminated"   # killed by a resource limit


@dataclass
class StackFrame:
    """One activation record in a state's call stack."""

    function: Function
    #: SSA value bindings: id(Value) -> expression.
    values: Dict[int, Expr] = field(default_factory=dict)
    block: Optional[BasicBlock] = None
    previous_block: Optional[BasicBlock] = None
    #: Index of the next instruction to execute within ``block``.
    index: int = 0
    #: The call instruction to bind the return value to in the caller.
    call_site: Optional[Instruction] = None

    def fork(self) -> "StackFrame":
        clone = StackFrame(self.function, dict(self.values), self.block,
                           self.previous_block, self.index, self.call_site)
        return clone


class ExecutionState:
    """A single path being explored: call stack + memory + path constraints."""

    _next_id = 0

    def __init__(self, memory: Optional[SymbolicMemory] = None) -> None:
        ExecutionState._next_id += 1
        self.state_id = ExecutionState._next_id
        self.stack: List[StackFrame] = []
        self.memory = memory or SymbolicMemory()
        self.constraints: List[Expr] = []
        self.status = StateStatus.RUNNING
        self.error: Optional[ProgramError] = None
        self.return_value: Optional[Expr] = None
        #: Instructions this state has executed (for depth heuristics).
        self.instructions_executed = 0
        self.forks = 0
        self.depth = 0  # number of branch decisions taken

    # ------------------------------------------------------------- frames
    @property
    def frame(self) -> StackFrame:
        return self.stack[-1]

    def push_frame(self, frame: StackFrame) -> None:
        self.stack.append(frame)

    def pop_frame(self) -> StackFrame:
        return self.stack.pop()

    # ------------------------------------------------------------- values
    def bind(self, value: Value, expr: Expr) -> None:
        self.frame.values[id(value)] = expr

    def lookup(self, value: Value) -> Expr:
        return self.frame.values[id(value)]

    # ------------------------------------------------------------- forking
    def fork(self) -> "ExecutionState":
        """Create an identical copy of this state (new id)."""
        clone = ExecutionState(self.memory.fork())
        clone.stack = [frame.fork() for frame in self.stack]
        clone.constraints = list(self.constraints)
        clone.status = self.status
        clone.instructions_executed = self.instructions_executed
        clone.depth = self.depth
        self.forks += 1
        return clone

    def add_constraint(self, constraint: Expr) -> None:
        if not constraint.is_true:
            self.constraints.append(constraint)

    # ------------------------------------------------------------- control
    def jump_to(self, block: BasicBlock) -> None:
        frame = self.frame
        frame.previous_block = frame.block
        frame.block = block
        frame.index = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = ""
        if self.stack and self.frame.block is not None:
            where = f" @{self.frame.function.name}:{self.frame.block.name}"
        return (f"<State {self.state_id} {self.status.value}{where} "
                f"constraints={len(self.constraints)}>")
