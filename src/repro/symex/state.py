"""Execution states of the symbolic executor.

The path condition of a state is kept in two synchronized forms: the flat
``constraints`` list (append order, used for reporting and full-model
queries) and a partition into **variable-disjoint constraint groups**,
maintained incrementally by :meth:`ExecutionState.add_constraint`.  A branch
query only needs the groups that share variables with the branch condition
(:meth:`relevant_constraints`), which keeps solver queries proportional to
the coupled part of the path condition instead of its whole length.

When ``rewrite_equalities`` is on (KLEE's ``--rewrite-equalities``,
:class:`~repro.symex.solver.SolverConfig` flag), :meth:`add_constraint`
additionally **rewrites the path condition against equalities**: a new
``lhs == const`` constraint (``lhs`` any expression — hash-consing makes
subtree occurrence checks O(1)) or ``var == var`` constraint is
substituted through the other constraints of its group, and every later
constraint is substituted against all recorded equalities on arrival.  The
equality itself is kept, so the rewritten state is *equivalent* — same
models — while its groups shrink, more branch queries fold to constants,
and the solver's cache keys get smaller and more reusable.  Both forms of
the path condition (flat list and groups) are rewritten in lockstep,
preserving the partition invariant.

Forking is copy-on-write throughout: stack frames share their SSA binding
dicts until one side writes, the symbolic memory shares its byte dict the
same way, and the constraint groups are immutable tuples shared by
reference.

**Ownership under parallel exploration.**  A state is owned by exactly one
worker at a time: the worker that pops it from the frontier runs it until
it forks, completes, or errors, and forking happens only on the owning
worker's thread.  The COW invariant that makes this safe is that a shared
structure (a binding dict, the memory's byte dict, a constraint-group
tuple) is *never mutated in place* once it is marked shared — each side
copies before its first write — so a stolen child can read the structures
it shares with a still-running parent without synchronization.  The only
cross-thread mutation is the state-id counter, which is an atomic
``itertools.count``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..interp.errors import ProgramError
from ..ir import Argument, BasicBlock, Function, Instruction, Value
from .expr import Expr, ExprOp
from .memory import SymbolicMemory
from .simplify import substitute


class StateStatus(enum.Enum):
    """Lifecycle of an execution state."""

    RUNNING = "running"
    COMPLETED = "completed"     # returned from the entry function
    ERROR = "error"             # a bug was detected on this path
    TERMINATED = "terminated"   # killed by a resource limit
    ENGINE_ERROR = "engine-error"  # the engine (not the program) failed


@dataclass
class StackFrame:
    """One activation record in a state's call stack.

    ``values`` is copy-on-write: :meth:`fork` shares the dict between the
    two frames and the first ``bind``/``bind_many`` on either side makes a
    private copy.  All writes must go through those methods.
    """

    function: Function
    #: SSA value bindings: id(Value) -> expression.
    values: Dict[int, Expr] = field(default_factory=dict)
    block: Optional[BasicBlock] = None
    previous_block: Optional[BasicBlock] = None
    #: Index of the next instruction to execute within ``block``.
    index: int = 0
    #: The call instruction to bind the return value to in the caller.
    call_site: Optional[Instruction] = None
    #: True while ``values`` is shared with a forked sibling.
    values_shared: bool = field(default=False, repr=False, compare=False)

    def fork(self) -> "StackFrame":
        clone = StackFrame(self.function, self.values, self.block,
                           self.previous_block, self.index, self.call_site)
        clone.values_shared = True
        self.values_shared = True
        return clone

    def _own_values(self) -> None:
        if self.values_shared:
            self.values = dict(self.values)
            self.values_shared = False

    def bind(self, key: int, expr: Expr) -> None:
        self._own_values()
        self.values[key] = expr

    def bind_many(self, items: Dict[int, Expr]) -> None:
        self._own_values()
        self.values.update(items)


class ExecutionState:
    """A single path being explored: call stack + memory + path constraints."""

    #: Id allocator.  ``next()`` on an ``itertools.count`` is atomic in
    #: CPython, so concurrently forking workers never mint duplicate ids
    #: (the *values* still depend on scheduling; nothing may key
    #: deterministic output on them).
    _next_id = itertools.count(1)

    def __init__(self, memory: Optional[SymbolicMemory] = None,
                 rewrite_equalities: bool = True,
                 solver_stats: Optional[object] = None) -> None:
        self.state_id = next(ExecutionState._next_id)
        self.stack: List[StackFrame] = []
        self.memory = memory or SymbolicMemory()
        self.constraints: List[Expr] = []
        #: Variable-disjoint partition of ``constraints``: representative
        #: variable -> (variables of the group, constraints of the group).
        #: Values are immutable tuples so forks share them by reference.
        self._groups: Dict[str, Tuple[FrozenSet[str], Tuple[Expr, ...]]] = {}
        #: Variable name -> representative (key into ``_groups``).
        self._var_group: Dict[str, str] = {}
        #: Variable-free constraints (a literal false, or a constraint that
        #: equality rewriting folded to one).
        self._varfree: Tuple[Expr, ...] = ()
        #: KLEE's --rewrite-equalities (see the module docstring).
        self.rewrite_equalities = rewrite_equalities
        #: Substitution recorded from ``lhs == const`` / ``var == var``
        #: path constraints: interned expression -> replacement.  Kept
        #: canonical (values never contain a mapped expression).
        self._rewrites: Dict[Expr, Expr] = {}
        #: Union of the variables of the mapping's keys (the quick
        #: can-this-expression-be-affected check for ``substitute``).
        self._rewrite_vars: FrozenSet[str] = frozenset()
        #: Rewrites applied on this path (cumulative across forks).
        self.rewrites_applied = 0
        #: Shared :class:`~repro.symex.solver.SolverStats` to aggregate
        #: ``equality_rewrites`` into (attached by the executor).
        self._solver_stats = solver_stats
        self.status = StateStatus.RUNNING
        self.error: Optional[ProgramError] = None
        self.return_value: Optional[Expr] = None
        #: Instructions this state has executed (for depth heuristics).
        self.instructions_executed = 0
        self.forks = 0
        self.depth = 0  # number of branch decisions taken
        #: The fork decisions that produced this state, one element per
        #: *queueing* fork point (branch: 1 = true side, 0 = false side;
        #: switch: index into the feasible-target list).  Replaying the
        #: trace in a fresh process deterministically reconstructs the
        #: state — the process-pool escape hatch ships traces, not states.
        #: Recorded only by executors built with ``record_traces=True``
        #: (the process-mode bootstrap); everywhere else it stays ``()``.
        self.trace: Tuple[int, ...] = ()
        #: Times a worker crashed while holding this state and a pristine
        #: snapshot was re-queued (the parallel executor's retry-once
        #: recovery, ``docs/robustness.md``).
        self.retries = 0

    # ------------------------------------------------------------- frames
    @property
    def frame(self) -> StackFrame:
        return self.stack[-1]

    def push_frame(self, frame: StackFrame) -> None:
        self.stack.append(frame)

    def pop_frame(self) -> StackFrame:
        return self.stack.pop()

    # ------------------------------------------------------------- values
    def bind(self, value: Value, expr: Expr) -> None:
        self.frame.bind(id(value), expr)

    def lookup(self, value: Value) -> Expr:
        return self.frame.values[id(value)]

    # ------------------------------------------------------------- forking
    def fork(self) -> "ExecutionState":
        """Create an identical copy of this state (new id).

        Copy-on-write: frames and memory share structure with the clone
        until either side writes.
        """
        clone = ExecutionState(self.memory.fork(), self.rewrite_equalities,
                               self._solver_stats)
        clone.stack = [frame.fork() for frame in self.stack]
        clone.constraints = list(self.constraints)
        clone._groups = dict(self._groups)
        clone._var_group = dict(self._var_group)
        clone._varfree = self._varfree
        clone._rewrites = dict(self._rewrites)
        clone._rewrite_vars = self._rewrite_vars
        clone.rewrites_applied = self.rewrites_applied
        clone.status = self.status
        clone.instructions_executed = self.instructions_executed
        clone.depth = self.depth
        clone.trace = self.trace
        clone.retries = self.retries
        self.forks += 1
        return clone

    def add_constraint(self, constraint: Expr) -> None:
        if self.rewrite_equalities and self._rewrites and \
                (constraint.variables() & self._rewrite_vars):
            rewritten = substitute(constraint, self._rewrites,
                                   self._rewrite_vars)
            if rewritten is not constraint:
                self._count_rewrites(1)
                constraint = rewritten
        if constraint.is_true:
            return
        self.constraints.append(constraint)
        names = constraint.variables()
        if not names:
            self._varfree = self._varfree + (constraint,)
            return
        # Merge every group that shares a variable with the new constraint.
        keys = {self._var_group[name] for name in names
                if name in self._var_group}
        merged_vars = set(names)
        merged_constraints: List[Expr] = []
        for key in sorted(keys):
            group_vars, group_constraints = self._groups.pop(key)
            merged_vars |= group_vars
            merged_constraints.extend(group_constraints)
        merged_constraints.append(constraint)
        if self.rewrite_equalities:
            merged_constraints = self._rewrite_group(constraint,
                                                     merged_constraints)
        representative = min(merged_vars)
        self._groups[representative] = (frozenset(merged_vars),
                                        tuple(merged_constraints))
        for name in merged_vars:
            self._var_group[name] = representative

    # ------------------------------------------------------ equality rewrite
    @staticmethod
    def _equality_substitution(constraint: Expr
                               ) -> Optional[Tuple[Expr, Expr]]:
        """The substitution an equality induces: (expression to replace,
        replacement), or None.

        ``lhs == const`` replaces the whole left-hand expression by the
        constant (thanks to hash-consing the occurrence check costs one
        dict lookup whatever the shape of ``lhs``); ``var == var``
        replaces the lexicographically larger variable by the smaller,
        matching the group-representative convention."""
        if constraint.op is not ExprOp.EQ:
            return None
        lhs, rhs = constraint.operands
        if rhs.op is ExprOp.CONST and lhs.op is not ExprOp.CONST:
            return (lhs, rhs)
        if lhs.op is ExprOp.CONST and rhs.op is not ExprOp.CONST:
            return (rhs, lhs)
        if lhs.op is ExprOp.VAR and rhs.op is ExprOp.VAR and \
                lhs.name != rhs.name:
            if lhs.name < rhs.name:
                return (rhs, lhs)
            return (lhs, rhs)
        return None

    def _rewrite_group(self, constraint: Expr,
                       merged: List[Expr]) -> List[Expr]:
        """If the just-added ``constraint`` is an equality, substitute it
        through the other constraints of its (merged) group and record it
        for future additions.  The flat ``constraints`` list is rewritten in
        lockstep, so both forms of the path condition stay equivalent and
        the partition invariant is preserved.  The equality itself is kept,
        making the rewritten state equivalent to (not merely equisatisfiable
        with) the unrewritten one."""
        entry = self._equality_substitution(constraint)
        if entry is None:
            return merged
        key, replacement = entry
        mapping = {key: replacement}
        key_vars = key.variables()
        # Keep the recorded substitution canonical: values never contain a
        # mapped expression, so one substitution pass is always enough.
        # (The incoming constraint was itself already rewritten, so its
        # left-hand side cannot contain a previously mapped expression.)
        self._rewrites = {old_key: substitute(value, mapping, key_vars)
                          for old_key, value in self._rewrites.items()}
        self._rewrites[key] = replacement
        self._rewrite_vars = self._rewrite_vars | key_vars
        rewritten_group: List[Expr] = []
        #: id(old constraint) -> replacement (None: dropped as trivial).
        replaced: Dict[int, Optional[Expr]] = {}
        changed = 0
        for member in merged:
            if member is constraint:
                rewritten_group.append(member)
                continue
            rewritten = substitute(member, mapping, key_vars)
            if rewritten is member:
                rewritten_group.append(member)
                continue
            changed += 1
            if rewritten.is_true:
                replaced[id(member)] = None
            elif not rewritten.variables():
                # Folded to a variable-free constant (a literal false):
                # route it to ``_varfree`` like an arriving one, so the
                # contradiction is visible to queries on any variable.
                replaced[id(member)] = rewritten
                self._varfree = self._varfree + (rewritten,)
            else:
                replaced[id(member)] = rewritten
                rewritten_group.append(rewritten)
        if changed:
            self._count_rewrites(changed)
            self.constraints = [
                new for new in
                (replaced.get(id(old), old) for old in self.constraints)
                if new is not None
            ]
        return rewritten_group

    def rewrite(self, expr: Expr) -> Expr:
        """``expr`` with the state's recorded equalities substituted in
        (the identity when rewriting is off or nothing overlaps).  The
        executor runs branch conditions, switch scrutinees, divisors and
        addresses through this before querying the solver, so queries the
        path condition already decides fold to constants and never reach
        it."""
        if not (self.rewrite_equalities and self._rewrites) or \
                not (expr.variables() & self._rewrite_vars):
            return expr
        return substitute(expr, self._rewrites, self._rewrite_vars)

    def _count_rewrites(self, count: int) -> None:
        self.rewrites_applied += count
        stats = self._solver_stats
        if stats is not None:
            stats.equality_rewrites += count

    def attach_stats(self, solver_stats: Optional[object]) -> None:
        """Point ``equality_rewrites`` accounting at ``solver_stats``.

        The parallel executor re-attaches a state to the stats object of
        the worker that popped it, so a stolen state never does a
        read-modify-write on another worker's counters."""
        self._solver_stats = solver_stats

    def relevant_constraints(self, expr: Expr) -> List[Expr]:
        """The subset of the path condition that can influence ``expr``:
        every group sharing a variable with it, plus variable-free
        constraints.  Groups disjoint from ``expr`` cannot change the
        satisfiability of a query about it (given the state invariant that
        the path condition is satisfiable)."""
        keys = {self._var_group[name] for name in expr.variables()
                if name in self._var_group}
        relevant: List[Expr] = list(self._varfree)
        for key in sorted(keys):
            relevant.extend(self._groups[key][1])
        return relevant

    def relevant_partition(self, expr: Expr
                           ) -> Tuple[Tuple[Expr, ...],
                                      List[Tuple[Expr, ...]]]:
        """Like :meth:`relevant_constraints`, but preserving the partition:
        ``(variable-free constraints, [group, ...])``.  Feeding the solver
        the partition the state already maintains lets it skip re-deriving
        the independent groups with a union-find on every query
        (:meth:`repro.symex.solver.Solver.check_branch_partition`)."""
        keys = {self._var_group[name] for name in expr.variables()
                if name in self._var_group}
        return self._varfree, [self._groups[key][1] for key in sorted(keys)]

    def full_partition(self) -> Tuple[Tuple[Expr, ...],
                                      List[Tuple[Expr, ...]]]:
        """The whole path condition as ``(variable-free constraints,
        [group, ...])`` — the input shape of
        :meth:`repro.symex.solver.Solver.model_for_partition`."""
        return self._varfree, [group for _, group in self._groups.values()]

    def constraint_groups(self) -> List[Tuple[Expr, ...]]:
        """The current partition (for tests/diagnostics)."""
        groups = [group for _, group in self._groups.values()]
        if self._varfree:
            groups.append(self._varfree)
        return groups

    # ------------------------------------------------------------- control
    def jump_to(self, block: BasicBlock) -> None:
        frame = self.frame
        frame.previous_block = frame.block
        frame.block = block
        frame.index = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = ""
        if self.stack and self.frame.block is not None:
            where = f" @{self.frame.function.name}:{self.frame.block.name}"
        return (f"<State {self.state_id} {self.status.value}{where} "
                f"constraints={len(self.constraints)}>")
