"""Execution states of the symbolic executor.

The path condition of a state is kept in two synchronized forms: the flat
``constraints`` list (append order, used for reporting and full-model
queries) and a partition into **variable-disjoint constraint groups**,
maintained incrementally by :meth:`ExecutionState.add_constraint`.  A branch
query only needs the groups that share variables with the branch condition
(:meth:`relevant_constraints`), which keeps solver queries proportional to
the coupled part of the path condition instead of its whole length.

Forking is copy-on-write throughout: stack frames share their SSA binding
dicts until one side writes, the symbolic memory shares its byte dict the
same way, and the constraint groups are immutable tuples shared by
reference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..interp.errors import ProgramError
from ..ir import Argument, BasicBlock, Function, Instruction, Value
from .expr import Expr
from .memory import SymbolicMemory


class StateStatus(enum.Enum):
    """Lifecycle of an execution state."""

    RUNNING = "running"
    COMPLETED = "completed"     # returned from the entry function
    ERROR = "error"             # a bug was detected on this path
    TERMINATED = "terminated"   # killed by a resource limit


@dataclass
class StackFrame:
    """One activation record in a state's call stack.

    ``values`` is copy-on-write: :meth:`fork` shares the dict between the
    two frames and the first ``bind``/``bind_many`` on either side makes a
    private copy.  All writes must go through those methods.
    """

    function: Function
    #: SSA value bindings: id(Value) -> expression.
    values: Dict[int, Expr] = field(default_factory=dict)
    block: Optional[BasicBlock] = None
    previous_block: Optional[BasicBlock] = None
    #: Index of the next instruction to execute within ``block``.
    index: int = 0
    #: The call instruction to bind the return value to in the caller.
    call_site: Optional[Instruction] = None
    #: True while ``values`` is shared with a forked sibling.
    values_shared: bool = field(default=False, repr=False, compare=False)

    def fork(self) -> "StackFrame":
        clone = StackFrame(self.function, self.values, self.block,
                           self.previous_block, self.index, self.call_site)
        clone.values_shared = True
        self.values_shared = True
        return clone

    def _own_values(self) -> None:
        if self.values_shared:
            self.values = dict(self.values)
            self.values_shared = False

    def bind(self, key: int, expr: Expr) -> None:
        self._own_values()
        self.values[key] = expr

    def bind_many(self, items: Dict[int, Expr]) -> None:
        self._own_values()
        self.values.update(items)


class ExecutionState:
    """A single path being explored: call stack + memory + path constraints."""

    _next_id = 0

    def __init__(self, memory: Optional[SymbolicMemory] = None) -> None:
        ExecutionState._next_id += 1
        self.state_id = ExecutionState._next_id
        self.stack: List[StackFrame] = []
        self.memory = memory or SymbolicMemory()
        self.constraints: List[Expr] = []
        #: Variable-disjoint partition of ``constraints``: representative
        #: variable -> (variables of the group, constraints of the group).
        #: Values are immutable tuples so forks share them by reference.
        self._groups: Dict[str, Tuple[FrozenSet[str], Tuple[Expr, ...]]] = {}
        #: Variable name -> representative (key into ``_groups``).
        self._var_group: Dict[str, str] = {}
        #: Variable-free constraints (only a literal false ever lands here).
        self._varfree: Tuple[Expr, ...] = ()
        self.status = StateStatus.RUNNING
        self.error: Optional[ProgramError] = None
        self.return_value: Optional[Expr] = None
        #: Instructions this state has executed (for depth heuristics).
        self.instructions_executed = 0
        self.forks = 0
        self.depth = 0  # number of branch decisions taken

    # ------------------------------------------------------------- frames
    @property
    def frame(self) -> StackFrame:
        return self.stack[-1]

    def push_frame(self, frame: StackFrame) -> None:
        self.stack.append(frame)

    def pop_frame(self) -> StackFrame:
        return self.stack.pop()

    # ------------------------------------------------------------- values
    def bind(self, value: Value, expr: Expr) -> None:
        self.frame.bind(id(value), expr)

    def lookup(self, value: Value) -> Expr:
        return self.frame.values[id(value)]

    # ------------------------------------------------------------- forking
    def fork(self) -> "ExecutionState":
        """Create an identical copy of this state (new id).

        Copy-on-write: frames and memory share structure with the clone
        until either side writes.
        """
        clone = ExecutionState(self.memory.fork())
        clone.stack = [frame.fork() for frame in self.stack]
        clone.constraints = list(self.constraints)
        clone._groups = dict(self._groups)
        clone._var_group = dict(self._var_group)
        clone._varfree = self._varfree
        clone.status = self.status
        clone.instructions_executed = self.instructions_executed
        clone.depth = self.depth
        self.forks += 1
        return clone

    def add_constraint(self, constraint: Expr) -> None:
        if constraint.is_true:
            return
        self.constraints.append(constraint)
        names = constraint.variables()
        if not names:
            self._varfree = self._varfree + (constraint,)
            return
        # Merge every group that shares a variable with the new constraint.
        keys = {self._var_group[name] for name in names
                if name in self._var_group}
        merged_vars = set(names)
        merged_constraints: List[Expr] = []
        for key in sorted(keys):
            group_vars, group_constraints = self._groups.pop(key)
            merged_vars |= group_vars
            merged_constraints.extend(group_constraints)
        merged_constraints.append(constraint)
        representative = min(merged_vars)
        self._groups[representative] = (frozenset(merged_vars),
                                        tuple(merged_constraints))
        for name in merged_vars:
            self._var_group[name] = representative

    def relevant_constraints(self, expr: Expr) -> List[Expr]:
        """The subset of the path condition that can influence ``expr``:
        every group sharing a variable with it, plus variable-free
        constraints.  Groups disjoint from ``expr`` cannot change the
        satisfiability of a query about it (given the state invariant that
        the path condition is satisfiable)."""
        keys = {self._var_group[name] for name in expr.variables()
                if name in self._var_group}
        relevant: List[Expr] = list(self._varfree)
        for key in sorted(keys):
            relevant.extend(self._groups[key][1])
        return relevant

    def constraint_groups(self) -> List[Tuple[Expr, ...]]:
        """The current partition (for tests/diagnostics)."""
        groups = [group for _, group in self._groups.values()]
        if self._varfree:
            groups.append(self._varfree)
        return groups

    # ------------------------------------------------------------- control
    def jump_to(self, block: BasicBlock) -> None:
        frame = self.frame
        frame.previous_block = frame.block
        frame.block = block
        frame.index = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = ""
        if self.stack and self.frame.block is not None:
            where = f" @{self.frame.function.name}:{self.frame.block.name}"
        return (f"<State {self.state_id} {self.status.value}{where} "
                f"constraints={len(self.constraints)}>")
