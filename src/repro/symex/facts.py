"""Unary-fact refutation: cheap, exact pruning of conditions that the
path's single-variable constraints already decide.

The solver's CSP enumeration is exact on small per-variable domains but
concedes "maybe satisfiable" once several input bytes couple into one
group and the assignment budget runs out.  The engine then forks both
ways, materializing *phantom* paths whose condition is actually
infeasible.  Most of those conditions are not genuinely hard: they are
ite-chains (if-conversion residue) and pointer-arithmetic checks whose
leaf conditions compare one input byte each — and the path condition
usually carries a unary fact (``ne(in_2, 47)``, ...) that decides every
leaf.  Checking a leaf against only the facts over its own variables
keeps the query in the solver's exact regime, and UNSAT against a
*subset* of the path constraints is UNSAT against all of them, so every
resolution and refutation here is sound.

Both the executor's opt-in ``fact_pruning`` mode and the relcheck
product driver (:mod:`repro.relcheck.product`) build on these helpers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .expr import Expr, ExprOp
from .simplify import not_expr, rebuild
from .solver import Solver

__all__ = ["unary_facts", "resolve_selects", "decide_with_facts"]


def unary_facts(constraints: Iterable[Expr]) -> Dict[str, Tuple[Expr, ...]]:
    """The single-variable constraints among ``constraints``, grouped per
    variable — the always-exactly-decidable slice of a path condition."""
    facts: Dict[str, List[Expr]] = {}
    for constraint in constraints:
        names = constraint.variables()
        if len(names) == 1:
            (name,) = tuple(names)
            facts.setdefault(name, []).append(constraint)
    return {name: tuple(items) for name, items in facts.items()}


def _refuted(condition: Expr, facts: Dict[str, Tuple[Expr, ...]],
             solver: Solver) -> bool:
    """True when ``condition`` conjoined with the facts over its own
    variables is *exactly* unsatisfiable."""
    groups = [facts[name] for name in sorted(condition.variables())
              if name in facts]
    if not groups:
        return False
    result = solver.check_partition((), groups, (condition,))
    return not result.satisfiable and result.exact


def resolve_selects(expr: Expr, facts: Dict[str, Tuple[Expr, ...]],
                    solver: Solver, cache: Dict[Expr, Expr],
                    on_resolve: Optional[Callable[[], None]] = None) -> Expr:
    """Simplify ``expr`` under a path condition by resolving ITE nodes
    whose condition the path's unary facts decide.

    Each resolution costs at most two tiny per-variable queries (cached,
    shared across paths).  Pruning only happens on an *exact* UNSAT
    answer, so the result is equivalent to ``expr`` on every model of
    the path condition the facts were drawn from."""
    cached = cache.get(expr)
    if cached is not None:
        return cached
    if expr.op is ExprOp.CONST or expr.op is ExprOp.VAR:
        cache[expr] = expr
        return expr
    operands = tuple(resolve_selects(operand, facts, solver, cache,
                                     on_resolve)
                     for operand in expr.operands)
    result: Optional[Expr] = None
    if expr.op is ExprOp.ITE:
        condition, then, otherwise = operands
        if condition.is_constant:
            result = then if condition.value else otherwise
        elif _refuted(condition, facts, solver):
            result = otherwise
        elif _refuted(not_expr(condition), facts, solver):
            result = then
        if result is not None and not condition.is_constant \
                and on_resolve is not None:
            on_resolve()
    if result is None:
        result = expr if operands == expr.operands \
            else rebuild(expr.op, expr.width, operands)
    cache[expr] = result
    return result


def decide_with_facts(condition: Expr, facts: Dict[str, Tuple[Expr, ...]],
                      solver: Solver, cache: Dict[Expr, Expr],
                      on_resolve: Optional[Callable[[], None]] = None
                      ) -> Optional[bool]:
    """Decide ``condition`` under the facts when cheaply possible.

    Returns True/False when the condition provably takes that value on
    every model of the path condition, None when the facts leave it
    open.  Sound both ways: a non-None answer is backed by exact UNSAT
    of the opposite polarity."""
    if not facts:
        return None
    resolved = resolve_selects(condition, facts, solver, cache, on_resolve)
    if resolved.is_constant:
        return bool(resolved.value)
    if _refuted(resolved, facts, solver):
        return False
    if _refuted(not_expr(resolved), facts, solver):
        return True
    return None
