"""Parallel path exploration: a worker pool draining the searcher frontier.

-OVERIFY's program is to drive verification lag down like compile time;
after the solver became cache-dominated, single-threaded exploration is the
remaining wall-clock bottleneck.  The ingredients the sequential engine
already has make a worker pool a composition exercise rather than a
rewrite:

* **states are copy-on-write** and owned by exactly one worker at a time,
  so workers never synchronize on a state (see :mod:`repro.symex.state`);
* **the solver caches are the only shared mutable structure**, and they
  shard by constraint-group fingerprint into lock stripes
  (:class:`~repro.symex.solver.SharedSolverCaches`) — the same group
  always lands on the same stripe, so results cross between workers;
* the frontier becomes a :class:`~repro.symex.searcher.WorkStealingFrontier`
  (per-worker DFS stacks, steal-the-shallowest), and every worker runs a
  private :class:`~repro.symex.executor.SymbolicExecutor` engine over the
  shared module and globals.

**Threads first.**  Workers are threads by default: state stepping is
pure-Python and the CPython GIL serializes it, but cache hits are cheap,
nothing is copied, and on free-threaded builds (or for any future
GIL-releasing solver kernel) the same code scales with cores.  A
**process pool** is the escape hatch (``use_processes=True``): execution
states cannot cross a process boundary (their binding maps key on object
identity), so the pool ships **fork-decision traces** instead — the
bootstrap engine explores until the frontier is wide enough, each pending
state's trace is replayed in a worker process
(:meth:`~repro.symex.executor.SymbolicExecutor.replay_run`), and the
subtree reports come back by value, Cloud9-style.

**Determinism.**  Exhaustive exploration visits a schedule-independent
path set as long as the solver's influence on control flow is
deterministic.  Satisfiability *answers* are (caches only return answers
an uncached search would also reach); cached *models* are not — which
model answers a query depends on what some other query cached first.
The one place a model feeds back into control flow, address
concretization, therefore uses
:meth:`~repro.symex.solver.Solver.concretization_model`, a fresh
deterministic per-group search memoized by group content.  Worker count
and scheduling then cannot change path counts, bug signatures, error
counts, or interpreted instructions; they *can* change which worker finds
what and which cached model witnesses a path record's test input.  The
merged report is made order-independent: per-worker stats merge by
summation, paths are sorted by content, and bug reports are deduplicated
by signature.
"""

from __future__ import annotations

import pickle
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import WorkerCrash, site as _fault_site
from ..ir import Module
from .executor import (
    BugReport, ExplorationBudget, PathRecord, SymbolicExecutor, SymexLimits,
    SymexReport, SymexStats,
)
from .searcher import Searcher, WorkStealingFrontier
from .solver import SharedSolverCaches, Solver, SolverConfig, SolverStats
from .state import ExecutionState, StateStatus

#: Frontier states the process-mode bootstrap aims for per worker before
#: farming subtrees out (more seeds -> better load balance, longer
#: sequential warm-up).
PROCESS_SEEDS_PER_WORKER = 4

#: Fault site hit once per frontier pop, before the state is stepped;
#: raises :class:`~repro.faults.WorkerCrash`, handled by the pool's
#: retry-once recovery (``docs/robustness.md``).
_WORKER_RUN = _fault_site("worker.run", WorkerCrash)


class _SwitchIntervalGuard:
    """Refcounted coarsening of the interpreter's thread switch interval.

    ``sys.setswitchinterval`` is process-global: two overlapping pools
    naively saving/restoring would race and could leave the coarse value
    behind permanently.  The guard coarsens on the first concurrent
    enter, restores the original on the last exit."""

    def __init__(self, interval: float) -> None:
        self._interval = interval
        self._lock = threading.Lock()
        self._depth = 0
        self._saved = 0.0

    def __enter__(self) -> None:
        with self._lock:
            self._depth += 1
            if self._depth == 1:
                self._saved = sys.getswitchinterval()
                sys.setswitchinterval(self._interval)

    def __exit__(self, *exc: object) -> None:
        with self._lock:
            self._depth -= 1
            if self._depth == 0:
                sys.setswitchinterval(self._saved)


#: On a GIL build the workers are CPU-bound peers: the default 5 ms switch
#: interval makes them trade the GIL thousands of times per second for
#: nothing.  Blocked workers are woken by the frontier's condition
#: variable, not by GIL switches, so responsiveness is unharmed.
_COARSE_SWITCHING = _SwitchIntervalGuard(0.05)


class _FrontierView(Searcher):
    """Adapter binding one worker's engine to the shared frontier: the
    engine's fork handler calls ``searcher.add``, which must land on the
    forking worker's own deque."""

    def __init__(self, frontier: WorkStealingFrontier, worker: int) -> None:
        self._frontier = frontier
        self._worker = worker

    def add(self, state: ExecutionState) -> None:
        self._frontier.add(state, self._worker)

    def __len__(self) -> int:
        return len(self._frontier)

    def pop(self) -> ExecutionState:  # pragma: no cover - workers pop
        raise NotImplementedError(   # from the frontier directly
            "worker engines pop from the frontier, not the view")


def _path_sort_key(record: PathRecord) -> tuple:
    """Content-based ordering: identical path sets sort identically
    whatever worker count or schedule produced them (state ids are
    scheduling artifacts and deliberately excluded)."""
    return (record.status.value,
            record.instructions,
            record.constraint_count,
            record.test_input is None,
            record.test_input or b"",
            record.return_value is None,
            record.return_value or 0)


def _merge_reports(stats: SymexStats, solver_stats: SolverStats,
                   reports: Sequence[SymexReport]) -> SymexReport:
    """Deterministic union of per-worker reports: paths sorted by content,
    bugs deduplicated by signature (first per signature in signature
    order), so the output is independent of worker count and schedule."""
    merged = SymexReport(stats=stats, solver_stats=solver_stats)
    paths: List[PathRecord] = []
    bugs: List[BugReport] = []
    for report in reports:
        paths.extend(report.paths)
        bugs.extend(report.bugs)
    merged.paths = sorted(paths, key=_path_sort_key)
    by_signature: Dict[tuple, BugReport] = {}
    for bug in sorted(bugs, key=lambda b: (b.signature(), b.message,
                                           b.test_input is None,
                                           b.test_input or b"")):
        by_signature.setdefault(bug.signature(), bug)
    merged.bugs = [by_signature[signature]
                   for signature in sorted(by_signature)]
    diagnostics: List[str] = []
    for report in reports:
        diagnostics.extend(report.diagnostics)
    merged.diagnostics = sorted(set(diagnostics))
    return merged


class ParallelExecutor:
    """Explores a module's entry function with a pool of workers.

    Mirrors :class:`~repro.symex.executor.SymbolicExecutor`'s ``run`` API
    and report shape; ``workers=1`` runs the same machinery inline on the
    calling thread (no pool), which the determinism tests use as the
    reference point.
    """

    def __init__(self, module: Module, entry: str = "main",
                 searcher: str = "dfs", workers: int = 4,
                 solver_config: Optional[SolverConfig] = None,
                 limits: Optional[SymexLimits] = None,
                 use_processes: bool = False,
                 shared_caches: Optional[SharedSolverCaches] = None,
                 state_sink: Optional[Callable[[ExecutionState], None]]
                 = None,
                 fact_pruning: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if searcher not in ("dfs", "bfs", "random"):
            raise ValueError(f"unknown search strategy '{searcher}'")
        if state_sink is not None and use_processes:
            raise ValueError("state_sink needs thread workers: states "
                             "cannot cross a process boundary")
        self.module = module
        self.entry = entry
        self.searcher = searcher
        self.workers = workers
        self.solver_config = solver_config or SolverConfig()
        self.limits = limits or SymexLimits()
        self.use_processes = use_processes
        #: Caller-provided solver caches (the verification service injects
        #: one set shared across jobs, possibly primed from a persistent
        #: store).  Must be built with ``locked=True`` when ``workers > 1``.
        #: ``None``: the run builds its own, one stripe per worker.
        self.shared_caches = shared_caches
        #: Observer handed every finished state, forwarded to each worker
        #: engine (see :class:`SymbolicExecutor`).  Called concurrently
        #: from worker threads — the callback must synchronize itself.
        self.state_sink = state_sink
        #: Forwarded to each worker engine (see :class:`SymbolicExecutor`):
        #: refute conservative fork conditions against unary facts before
        #: forking.  Content-deterministic, so the determinism contract is
        #: unaffected.
        self.fact_pruning = fact_pruning

    # ------------------------------------------------------------- threads
    def run(self, num_input_bytes: int) -> SymexReport:
        """Explore exhaustively and return the merged report."""
        if self.use_processes:
            # Honored even at workers=1 (one worker process): asking for
            # process isolation and silently running inline would be a
            # config lie.
            return self._run_processes(num_input_bytes)
        return self._run_threads(num_input_bytes)

    def _run_threads(self, num_input_bytes: int) -> SymexReport:
        workers = self.workers
        config = self.solver_config
        shared = self.shared_caches or SharedSolverCaches(
            num_stripes=workers,
            ubtree_capacity=config.ubtree_capacity,
            locked=workers > 1)
        frontier = WorkStealingFrontier(workers, mode=self.searcher)
        # Worker 0 doubles as the bootstrap engine: it builds the globals
        # and the initial state; the other engines share both read-only.
        stats_list = [SymexStats(states_created=1 if index == 0 else 0)
                      for index in range(workers)]
        budget = ExplorationBudget(self.limits, stats_list)
        engines: List[SymbolicExecutor] = [SymbolicExecutor(
            self.module, entry=self.entry,
            searcher=_FrontierView(frontier, 0),
            solver=Solver(config=config, shared=shared),
            limits=self.limits, stats=stats_list[0], budget=budget,
            state_sink=self.state_sink,
            fact_pruning=self.fact_pruning)]
        # The bootstrap populates its globals map and input-variable list;
        # build the sibling engines only afterwards so they share the
        # populated objects (make_initial_state rebinds them).
        initial = engines[0].make_initial_state(num_input_bytes)
        for index in range(1, workers):
            engines.append(SymbolicExecutor(
                self.module, entry=self.entry,
                searcher=_FrontierView(frontier, index),
                solver=Solver(config=config, shared=shared),
                limits=self.limits, stats=stats_list[index], budget=budget,
                globals_map=engines[0]._globals,
                input_variables=engines[0]._input_variables,
                state_sink=self.state_sink,
                fact_pruning=self.fact_pruning))
        frontier.add(initial, 0)

        failures: List[BaseException] = []
        #: Retry-once worker recovery, enabled only while the worker.run
        #: fault site is armed: an unarmed run pays nothing (no snapshot
        #: fork per pop) and behaves exactly as before.
        recovery = _WORKER_RUN.armed

        def worker_loop(index: int) -> None:
            engine = engines[index]
            while True:
                state = frontier.pop(index)
                if state is None:
                    return
                backup = None
                try:
                    try:
                        if engine._out_of_budget():
                            state.status = StateStatus.TERMINATED
                            engine.stats.paths_terminated += 1
                        else:
                            # A stolen state books its equality rewrites to
                            # the thief's counters — never another thread's.
                            state.attach_stats(engine.solver.stats)
                            if recovery:
                                backup = state.fork()
                            if _WORKER_RUN.armed:
                                _WORKER_RUN.fire()
                            engine._run_state(state)
                    except WorkerCrash as crash:
                        # The worker is lost, not the run.  The crash fires
                        # *before* the state is stepped (mid-state failures
                        # are engine-error containment, not crashes), so
                        # the pristine snapshot can be re-queued for a
                        # sibling without double-counting any path work.
                        if backup is not None and state.retries < 1:
                            backup.retries = state.retries + 1
                            frontier.add(backup, index)
                        else:
                            state.status = StateStatus.TERMINATED
                            engine.stats.paths_terminated += 1
                            engine.report.diagnostics.append(
                                f"worker crash at "
                                f"{crash.site or 'worker.run'} "
                                f"not retried: {crash}")
                        frontier.retire(index)
                        return
                    except BaseException as exc:  # noqa: BLE001 - re-raised
                        failures.append(exc)
                        frontier.drain()
                        return
                finally:
                    frontier.task_done(index)

        if workers == 1:
            worker_loop(0)
        else:
            threads = [threading.Thread(target=worker_loop, args=(index,),
                                        name=f"symex-worker-{index}")
                       for index in range(workers)]
            with _COARSE_SWITCHING:
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        if failures:
            raise failures[0]

        # With every worker retired (crash-path degradation), pending
        # states have nobody left to run them: account each as terminated,
        # like budget-exhaustion leftovers.
        leftovers = frontier.drain() if frontier.live_workers == 0 else []
        for state in leftovers:
            state.status = StateStatus.TERMINATED
            stats_list[0].paths_terminated += 1

        merged_stats = SymexStats(states_created=0)
        for stats in stats_list:
            merged_stats.merge(stats)
        if leftovers and not merged_stats.termination_reason:
            merged_stats.termination_reason = "worker-loss"
        merged_stats.max_live_states = max(merged_stats.max_live_states,
                                           frontier.high_water)
        merged_stats.wall_seconds = time.perf_counter() - budget.start_time
        merged_solver_stats = SolverStats()
        for engine in engines:
            merged_solver_stats.merge(engine.solver.stats)
        return _merge_reports(merged_stats, merged_solver_stats,
                              [engine.report for engine in engines])

    # ------------------------------------------------------------ processes
    def _run_processes(self, num_input_bytes: int) -> SymexReport:
        """The escape hatch: farm subtrees to worker processes by
        fork-decision trace (states themselves cannot cross the process
        boundary)."""
        import concurrent.futures

        try:
            module_bytes = pickle.dumps(self.module)
        except Exception as exc:
            raise RuntimeError(
                "process-pool exploration needs a picklable module; "
                f"use threads instead ({exc})") from exc

        # Phase 1 (sequential bootstrap): widen the frontier breadth-first
        # until there is a seed subtree per worker, recording traces.
        config = self.solver_config
        boot = SymbolicExecutor(self.module, entry=self.entry,
                                searcher="bfs",
                                solver=Solver(config=config),
                                limits=self.limits, record_traces=True)
        boot._budget = ExplorationBudget(self.limits, [boot.stats])
        boot.searcher.add(boot.make_initial_state(num_input_bytes))
        target = self.workers * PROCESS_SEEDS_PER_WORKER
        while not boot.searcher.empty() and len(boot.searcher) < target:
            if boot._out_of_budget():
                break
            boot._run_state(boot.searcher.pop())
            boot.stats.max_live_states = max(boot.stats.max_live_states,
                                             len(boot.searcher) + 1)
        pending: List[ExecutionState] = []
        while not boot.searcher.empty():
            pending.append(boot.searcher.pop())
        traces = [state.trace for state in pending]

        reports: List[SymexReport] = [boot.report]
        if traces:
            # Workers get the *remaining* wall budget, not a fresh one —
            # otherwise a budget-bound bootstrap plus full worker budgets
            # could double the requested timeout.  (Instruction/fork
            # limits stay per-worker: they bound memory/work per process,
            # and the bootstrap's aggregate check caps the total.)
            import dataclasses
            elapsed = time.perf_counter() - boot._budget.start_time
            remaining = max(0.0, self.limits.timeout_seconds - elapsed)
            worker_limits = dataclasses.replace(self.limits,
                                                timeout_seconds=remaining)
            shards: List[List[Tuple[int, ...]]] = [
                [] for _ in range(min(self.workers, len(traces)))]
            for index, trace in enumerate(traces):
                shards[index % len(shards)].append(trace)
            payloads = [
                (module_bytes, self.entry, self.searcher, config,
                 worker_limits, num_input_bytes, shard)
                for shard in shards]
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=len(shards)) as pool:
                reports.extend(pool.map(_explore_traced_subtrees, payloads))

        merged_stats = SymexStats(states_created=0)
        merged_solver_stats = SolverStats()
        for report in reports:
            merged_stats.merge(report.stats)
            merged_solver_stats.merge(report.solver_stats)
        merged_stats.wall_seconds = \
            time.perf_counter() - boot._budget.start_time
        return _merge_reports(merged_stats, merged_solver_stats, reports)


def _explore_traced_subtrees(payload: tuple) -> SymexReport:
    """Process-pool worker: rebuild the module, replay each trace, explore
    its subtree, and return the (picklable) report."""
    (module_bytes, entry, searcher, config, limits, num_input_bytes,
     traces) = payload
    module = pickle.loads(module_bytes)
    engine = SymbolicExecutor(module, entry=entry, searcher=searcher,
                              solver=Solver(config=config), limits=limits,
                              stats=SymexStats(states_created=0))
    return engine.replay_run(num_input_bytes, traces)


def explore_parallel(module: Module, num_input_bytes: int,
                     entry: str = "main", searcher: str = "dfs",
                     workers: int = 4,
                     solver_config: Optional[SolverConfig] = None,
                     limits: Optional[SymexLimits] = None,
                     use_processes: bool = False) -> SymexReport:
    """Convenience wrapper mirroring :func:`repro.symex.executor.explore`."""
    executor = ParallelExecutor(module, entry=entry, searcher=searcher,
                                workers=workers, solver_config=solver_config,
                                limits=limits, use_processes=use_processes)
    return executor.run(num_input_bytes)
