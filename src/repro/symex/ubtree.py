"""A UBTree (set-trie) index over constraint sets.

KLEE's counterexample cache answers a query from previous results via two
set-containment lookups: a cached **UNSAT** constraint set that is a *subset*
of the query proves the query unsatisfiable, and a cached **SAT** set that is
a *superset* of the query provides a model outright (every constraint of the
query is satisfied by it).  In between, models of cached *subsets* of the
query are cheap candidate assignments: they satisfy part of the query by
construction and frequently extend to all of it.

The index that makes those lookups sublinear is the UBTree of Hoffmann &
Koehler (IJCAI'99): sets are stored as sorted element sequences along trie
paths, so subset search only descends edges labelled with query elements and
superset search may additionally skip over non-query elements.

Elements here are hash-consed :class:`~repro.symex.expr.Expr` constraints.
Each tree assigns dense integer ids to elements on first insertion, giving a
stable, deterministic path order that is independent of the caller's
iteration order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .expr import Expr


class _Node:
    """One trie node: children keyed by element id, plus the payload of the
    set ending here (``value`` is meaningful only when ``terminal``)."""

    __slots__ = ("children", "terminal", "value")

    def __init__(self) -> None:
        self.children: Dict[int, "_Node"] = {}
        self.terminal = False
        self.value: object = None


class UBTree:
    """A set-trie mapping frozen constraint sets to payloads.

    Supports exact insertion plus the two containment lookups the
    counterexample cache needs: :meth:`find_subset` (a stored set contained
    in the query) and :meth:`find_superset` (a stored set containing the
    query).  :meth:`iter_subsets` enumerates every stored subset for
    candidate-model trials.

    ``capacity`` bounds the number of stored sets so a very long run's
    counterexample index cannot grow without limit: inserting beyond the
    cap evicts the least-recently-*hit* set (insertion refreshes, and so
    does every containment lookup that returns the set's payload).
    ``capacity=0`` means unbounded.  Evicting an entry only costs the
    cache a future re-solve, never an answer, so any eviction policy is
    sound; LRU-by-hit keeps the sets that are actually subsuming queries.
    """

    def __init__(self, capacity: int = 0) -> None:
        self._root = _Node()
        self._element_ids: Dict[Expr, int] = {}
        self._size = 0
        self.capacity = capacity
        self.evictions = 0
        #: Insertion/hit recency: id-path tuple -> None, oldest first.
        self._recency: "OrderedDict[Tuple[int, ...], None]" = OrderedDict()

    def __len__(self) -> int:
        """Number of stored sets."""
        return self._size

    # ------------------------------------------------------------- helpers
    def _ids_for_insert(self, elements: Iterable[Expr]) -> List[int]:
        ids = self._element_ids
        result = set()
        for element in elements:
            element_id = ids.get(element)
            if element_id is None:
                element_id = len(ids)
                ids[element] = element_id
            result.add(element_id)
        return sorted(result)

    def _ids_for_lookup(self, elements: Iterable[Expr]
                        ) -> Optional[List[int]]:
        """Sorted ids of the query elements, or None when an element has
        never been inserted (no stored superset can exist then)."""
        ids = self._element_ids
        result = set()
        for element in elements:
            element_id = ids.get(element)
            if element_id is None:
                return None
            result.add(element_id)
        return sorted(result)

    def _known_ids(self, elements: Iterable[Expr]) -> List[int]:
        """Sorted ids of the query elements the tree has seen (unknown
        elements cannot occur in any stored set, so subset search may
        simply drop them)."""
        ids = self._element_ids
        return sorted({ids[element] for element in elements
                       if element in ids})

    # ------------------------------------------------------------- mutation
    def insert(self, elements: Iterable[Expr], value: object = True) -> None:
        """Store ``elements`` as one set with ``value`` as its payload.

        Re-inserting an existing set replaces its payload (and refreshes
        its recency).  When a capacity is set and exceeded, the
        least-recently-hit set is evicted.
        """
        path = tuple(self._ids_for_insert(elements))
        node = self._root
        for element_id in path:
            child = node.children.get(element_id)
            if child is None:
                child = _Node()
                node.children[element_id] = child
            node = child
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.value = value
        if self.capacity:
            self._recency[path] = None
            self._recency.move_to_end(path)
            while self._size > self.capacity:
                oldest, _ = self._recency.popitem(last=False)
                self._remove_path(oldest)

    def _remove_path(self, path: Tuple[int, ...]) -> None:
        """Drop the stored set whose sorted id sequence is ``path``,
        pruning trie nodes that no longer lead anywhere."""
        chain: List[Tuple[_Node, int]] = []
        node = self._root
        for element_id in path:
            child = node.children.get(element_id)
            if child is None:
                return  # already gone
            chain.append((node, element_id))
            node = child
        if not node.terminal:
            return
        node.terminal = False
        node.value = None
        self._size -= 1
        self.evictions += 1
        while chain and not node.terminal and not node.children:
            parent, element_id = chain.pop()
            del parent.children[element_id]
            node = parent

    def _refresh(self, path: Tuple[int, ...]) -> None:
        if self.capacity and path in self._recency:
            self._recency.move_to_end(path)

    # -------------------------------------------------------------- lookup
    def contains(self, elements: Iterable[Expr]) -> bool:
        """Exact membership."""
        ids = self._ids_for_lookup(elements)
        if ids is None:
            return False
        node = self._root
        for element_id in ids:
            node = node.children.get(element_id)
            if node is None:
                return False
        return node.terminal

    def find_subset(self, elements: Iterable[Expr]) -> Optional[object]:
        """The payload of some stored set that is a **subset** of the query,
        or None.  (The empty stored set qualifies for every query.)"""
        query = self._known_ids(elements)
        path: List[int] = []

        def search(node: _Node, start: int) -> Optional[_Node]:
            if node.terminal:
                return node
            # Only edges labelled with query elements can stay a subset.
            for index in range(start, len(query)):
                child = node.children.get(query[index])
                if child is not None:
                    path.append(query[index])
                    found = search(child, index + 1)
                    if found is not None:
                        return found
                    path.pop()
            return None

        found = search(self._root, 0)
        if found is None:
            return None
        self._refresh(tuple(path))
        return found.value

    def find_superset(self, elements: Iterable[Expr]) -> Optional[object]:
        """The payload of some stored set that is a **superset** of the
        query, or None."""
        query = self._ids_for_lookup(elements)
        if query is None:
            return None
        path: List[int] = []

        def any_terminal(node: _Node) -> Optional[_Node]:
            if node.terminal:
                return node
            for element_id, child in node.children.items():
                path.append(element_id)
                found = any_terminal(child)
                if found is not None:
                    return found
                path.pop()
            return None

        def search(node: _Node, index: int) -> Optional[_Node]:
            if index == len(query):
                # Every query element is matched; any stored set below
                # here contains them all.
                return any_terminal(node)
            needed = query[index]
            # Ids along a path are strictly increasing, so children labelled
            # above the next needed element can never match it.
            for element_id, child in node.children.items():
                if element_id > needed:
                    continue
                path.append(element_id)
                found = search(child, index + 1 if element_id == needed
                               else index)
                if found is not None:
                    return found
                path.pop()
            return None

        found = search(self._root, 0)
        if found is None:
            return None
        self._refresh(tuple(path))
        return found.value

    def items(self) -> Iterator[Tuple[Tuple[Expr, ...], object]]:
        """Every stored set with its payload, in id-lexicographic trie
        order: ``(elements, value)`` pairs, elements sorted by this tree's
        internal ids.  This is the persistence layer's export path — the
        pairs round-trip through :meth:`insert` on another tree (ids are
        tree-local, so only the element *sets* transfer, which is exactly
        the part containment lookups depend on)."""
        by_id = {element_id: element
                 for element, element_id in self._element_ids.items()}
        path: List[int] = []

        def walk(node: _Node) -> Iterator[Tuple[Tuple[Expr, ...], object]]:
            if node.terminal:
                yield tuple(by_id[eid] for eid in path), node.value
            for element_id in sorted(node.children):
                path.append(element_id)
                yield from walk(node.children[element_id])
                path.pop()

        yield from walk(self._root)

    def iter_subsets(self, elements: Iterable[Expr]) -> Iterator[object]:
        """Payloads of every stored subset of the query, largest-first is
        *not* guaranteed — iteration follows trie order.  Enumerated
        candidates do not refresh eviction recency (most are merely
        *tried* against the query; only a decisive containment answer —
        :meth:`find_subset` / :meth:`find_superset` — counts as a hit)."""
        query = self._known_ids(elements)

        def search(node: _Node, start: int) -> Iterator[object]:
            if node.terminal:
                yield node.value
            for index in range(start, len(query)):
                child = node.children.get(query[index])
                if child is not None:
                    yield from search(child, index + 1)

        yield from search(self._root, 0)


__all__ = ["UBTree"]
