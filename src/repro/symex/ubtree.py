"""A UBTree (set-trie) index over constraint sets.

KLEE's counterexample cache answers a query from previous results via two
set-containment lookups: a cached **UNSAT** constraint set that is a *subset*
of the query proves the query unsatisfiable, and a cached **SAT** set that is
a *superset* of the query provides a model outright (every constraint of the
query is satisfied by it).  In between, models of cached *subsets* of the
query are cheap candidate assignments: they satisfy part of the query by
construction and frequently extend to all of it.

The index that makes those lookups sublinear is the UBTree of Hoffmann &
Koehler (IJCAI'99): sets are stored as sorted element sequences along trie
paths, so subset search only descends edges labelled with query elements and
superset search may additionally skip over non-query elements.

Elements here are hash-consed :class:`~repro.symex.expr.Expr` constraints.
Each tree assigns dense integer ids to elements on first insertion, giving a
stable, deterministic path order that is independent of the caller's
iteration order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .expr import Expr


class _Node:
    """One trie node: children keyed by element id, plus the payload of the
    set ending here (``value`` is meaningful only when ``terminal``)."""

    __slots__ = ("children", "terminal", "value")

    def __init__(self) -> None:
        self.children: Dict[int, "_Node"] = {}
        self.terminal = False
        self.value: object = None


class UBTree:
    """A set-trie mapping frozen constraint sets to payloads.

    Supports exact insertion plus the two containment lookups the
    counterexample cache needs: :meth:`find_subset` (a stored set contained
    in the query) and :meth:`find_superset` (a stored set containing the
    query).  :meth:`iter_subsets` enumerates every stored subset for
    candidate-model trials.
    """

    def __init__(self) -> None:
        self._root = _Node()
        self._element_ids: Dict[Expr, int] = {}
        self._size = 0

    def __len__(self) -> int:
        """Number of stored sets."""
        return self._size

    # ------------------------------------------------------------- helpers
    def _ids_for_insert(self, elements: Iterable[Expr]) -> List[int]:
        ids = self._element_ids
        result = set()
        for element in elements:
            element_id = ids.get(element)
            if element_id is None:
                element_id = len(ids)
                ids[element] = element_id
            result.add(element_id)
        return sorted(result)

    def _ids_for_lookup(self, elements: Iterable[Expr]
                        ) -> Optional[List[int]]:
        """Sorted ids of the query elements, or None when an element has
        never been inserted (no stored superset can exist then)."""
        ids = self._element_ids
        result = set()
        for element in elements:
            element_id = ids.get(element)
            if element_id is None:
                return None
            result.add(element_id)
        return sorted(result)

    def _known_ids(self, elements: Iterable[Expr]) -> List[int]:
        """Sorted ids of the query elements the tree has seen (unknown
        elements cannot occur in any stored set, so subset search may
        simply drop them)."""
        ids = self._element_ids
        return sorted({ids[element] for element in elements
                       if element in ids})

    # ------------------------------------------------------------- mutation
    def insert(self, elements: Iterable[Expr], value: object = True) -> None:
        """Store ``elements`` as one set with ``value`` as its payload.

        Re-inserting an existing set replaces its payload.
        """
        node = self._root
        for element_id in self._ids_for_insert(elements):
            child = node.children.get(element_id)
            if child is None:
                child = _Node()
                node.children[element_id] = child
            node = child
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.value = value

    # -------------------------------------------------------------- lookup
    def contains(self, elements: Iterable[Expr]) -> bool:
        """Exact membership."""
        ids = self._ids_for_lookup(elements)
        if ids is None:
            return False
        node = self._root
        for element_id in ids:
            node = node.children.get(element_id)
            if node is None:
                return False
        return node.terminal

    def find_subset(self, elements: Iterable[Expr]) -> Optional[object]:
        """The payload of some stored set that is a **subset** of the query,
        or None.  (The empty stored set qualifies for every query.)"""
        query = self._known_ids(elements)

        def search(node: _Node, start: int) -> Optional[_Node]:
            if node.terminal:
                return node
            # Only edges labelled with query elements can stay a subset.
            for index in range(start, len(query)):
                child = node.children.get(query[index])
                if child is not None:
                    found = search(child, index + 1)
                    if found is not None:
                        return found
            return None

        found = search(self._root, 0)
        return found.value if found is not None else None

    def find_superset(self, elements: Iterable[Expr]) -> Optional[object]:
        """The payload of some stored set that is a **superset** of the
        query, or None."""
        query = self._ids_for_lookup(elements)
        if query is None:
            return None

        def any_terminal(node: _Node) -> Optional[_Node]:
            if node.terminal:
                return node
            for child in node.children.values():
                found = any_terminal(child)
                if found is not None:
                    return found
            return None

        def search(node: _Node, index: int) -> Optional[_Node]:
            if index == len(query):
                # Every query element is matched; any stored set below
                # here contains them all.
                return any_terminal(node)
            needed = query[index]
            # Ids along a path are strictly increasing, so children labelled
            # above the next needed element can never match it.
            for element_id, child in node.children.items():
                if element_id > needed:
                    continue
                found = search(child, index + 1 if element_id == needed
                               else index)
                if found is not None:
                    return found
            return None

        found = search(self._root, 0)
        return found.value if found is not None else None

    def iter_subsets(self, elements: Iterable[Expr]) -> Iterator[object]:
        """Payloads of every stored subset of the query, largest-first is
        *not* guaranteed — iteration follows trie order."""
        query = self._known_ids(elements)

        def search(node: _Node, start: int) -> Iterator[object]:
            if node.terminal:
                yield node.value
            for index in range(start, len(query)):
                child = node.children.get(query[index])
                if child is not None:
                    yield from search(child, index + 1)

        yield from search(self._root, 0)


__all__ = ["UBTree"]
