"""Symbolic expressions over bitvectors.

Expressions are immutable, **hash-consed** DAG nodes: ``Expr.__new__`` interns
every node in a global weak table, so structurally-equal expressions are the
*same object*.  That makes equality and hashing identity-based (O(1)), lets
per-node analyses (``variables()``, :func:`unsigned_interval`, the evaluation
schedule) be memoized once per unique node, and turns state forking into pure
structure sharing.  The constructors in :mod:`repro.symex.simplify` perform
light canonicalization/constant folding; the solver consumes expressions
directly.

Widths follow the IR: 1, 8, 16, 32, 64 bit unsigned bitvectors with two's
complement signed interpretations where needed.
"""

from __future__ import annotations

import enum
import threading
import weakref
from typing import Dict, FrozenSet, List, Optional, Tuple


class ExprOp(enum.Enum):
    """Operators of the expression language."""

    CONST = "const"
    VAR = "var"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    SDIV = "sdiv"
    UREM = "urem"
    SREM = "srem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    SLT = "slt"
    SLE = "sle"
    ZEXT = "zext"
    SEXT = "sext"
    TRUNC = "trunc"
    ITE = "ite"
    NOT = "not"  # bitwise not


COMPARISON_OPS = {ExprOp.EQ, ExprOp.NE, ExprOp.ULT, ExprOp.ULE,
                  ExprOp.SLT, ExprOp.SLE}
COMMUTATIVE_OPS = {ExprOp.ADD, ExprOp.MUL, ExprOp.AND, ExprOp.OR, ExprOp.XOR,
                   ExprOp.EQ, ExprOp.NE}

# Classification flags as plain member attributes: ``op.is_comparison`` is
# an attribute read where ``op in COMPARISON_OPS`` pays an enum hash — the
# membership tests in the smart constructors and the interval transfer are
# among the hottest expressions in the interpreter loop.
for _member in ExprOp:
    _member.is_comparison = _member in COMPARISON_OPS
    _member.is_commutative = _member in COMMUTATIVE_OPS
del _member


def mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def truncdiv(a: int, b: int) -> int:
    """C-style signed division: truncate toward zero.

    Exact for any width — ``int(a / b)`` goes through a float and
    mis-rounds 64-bit quotients; ``a // b`` floors instead of truncating.
    """
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


class Expr:
    """An immutable, interned bitvector expression.

    Because every node goes through the intern table, ``a is b`` whenever
    ``a`` and ``b`` are structurally equal; ``==`` and ``hash`` are the
    (default) identity operations.  Per-node caches (``_vars``, ``_interval``,
    ``_schedule``) are therefore shared by every user of the node.

    Nodes are safe to share across the parallel executor's worker threads:
    they are immutable after construction, interning misses are serialized
    by ``_intern_lock``, and the lazy per-node memos are pure functions of
    the node, so a duplicated concurrent computation writes the same value.
    """

    __slots__ = ("op", "width", "operands", "value", "name",
                 "is_constant", "is_symbolic",
                 "_vars", "_interval", "_schedule", "__weakref__")

    #: The global intern table.  Keys hold strong references to the operand
    #: tuple, values are weak: a node (and its intern entry) dies as soon as
    #: no state, constraint, or parent node references it.
    _intern: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    #: Guards the miss path of the intern table.  Identity equality only
    #: holds if two threads can never intern the same key concurrently
    #: (the parallel executor's workers share the table); the hit path is a
    #: plain read and stays lock-free — double-checked locking is sound
    #: here because a key is published only after the node is fully built.
    _intern_lock = threading.Lock()

    def __new__(cls, op: ExprOp, width: int,
                operands: Tuple["Expr", ...] = (),
                value: int = 0, name: str = "") -> "Expr":
        if op is ExprOp.CONST:
            value &= mask(width)
        key = (op, width, value, name, operands)
        self = cls._intern.get(key)
        if self is not None:
            return self
        with cls._intern_lock:
            self = cls._intern.get(key)
            if self is not None:
                return self
            self = super().__new__(cls)
            self.op = op
            self.width = width
            self.operands = operands
            self.value = value
            self.name = name
            # Materialized flags: reading an attribute beats a property
            # call in the constructors' constant-folding checks, which run
            # for every expression the interpreter builds.
            self.is_constant = op is ExprOp.CONST
            self.is_symbolic = op is not ExprOp.CONST
            self._vars: Optional[FrozenSet[str]] = None
            self._interval: Optional[Tuple[int, int]] = None
            self._schedule: Optional[List[tuple]] = None
            cls._intern[key] = self
        return self

    # ------------------------------------------------------------- identity
    # Hash-consing makes structural equality identity: inherit object's
    # identity-based __eq__/__hash__ on purpose.

    @classmethod
    def intern_table_size(cls) -> int:
        """Number of live unique expressions (diagnostics/tests)."""
        return len(cls._intern)

    # ----------------------------------------------------------- queries
    # (``is_constant`` / ``is_symbolic`` are materialized slots, see above.)
    @property
    def is_true(self) -> bool:
        return self.op is ExprOp.CONST and self.width == 1 and self.value == 1

    @property
    def is_false(self) -> bool:
        return self.op is ExprOp.CONST and self.width == 1 and self.value == 0

    def variables(self) -> FrozenSet[str]:
        """Names of the symbolic variables the expression depends on.

        Iterative over the (persistent) per-node memo, so a cold deep
        dependent chain does not hit the recursion limit."""
        cached = self._vars
        if cached is not None:
            return cached
        stack: List["Expr"] = [self]
        while stack:
            node = stack[-1]
            if node._vars is not None:
                stack.pop()
                continue
            if node.op is ExprOp.VAR:
                node._vars = frozenset((node.name,))
                stack.pop()
                continue
            pending = [operand for operand in node.operands
                       if operand._vars is None]
            if pending:
                stack.extend(pending)
                continue
            names: set = set()
            for operand in node.operands:
                names |= operand._vars
            node._vars = frozenset(names)
            stack.pop()
        return self._vars

    def size(self) -> int:
        """Number of unique nodes in the expression DAG."""
        return len(self._evaluation_schedule())

    # ----------------------------------------------------------- evaluation
    def _evaluation_schedule(self) -> List[tuple]:
        """A topologically-ordered flattening of the DAG, built once per
        unique node: ``(op, width, operand_width, operand_indices, value,
        name)`` tuples with children before parents.  Shared subexpressions
        appear exactly once."""
        schedule = self._schedule
        if schedule is not None:
            return schedule
        index: Dict[int, int] = {}
        schedule = []
        stack: List[Tuple["Expr", bool]] = [(self, False)]
        while stack:
            node, ready = stack.pop()
            if id(node) in index:
                continue
            if ready or not node.operands:
                index[id(node)] = len(schedule)
                operand_width = node.operands[0].width if node.operands \
                    else node.width
                schedule.append((node.op, node.width, operand_width,
                                 tuple(index[id(o)] for o in node.operands),
                                 node.value, node.name))
            else:
                stack.append((node, True))
                for operand in node.operands:
                    stack.append((operand, False))
        self._schedule = schedule
        return schedule

    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Evaluate under a concrete assignment of every variable.

        Iterative (no recursion) over the memoized DAG schedule, so deeply
        nested expressions evaluate without hitting the recursion limit and
        shared subexpressions are computed once.
        """
        schedule = self._schedule or self._evaluation_schedule()
        values: List[int] = [0] * len(schedule)
        # Bind the hot names locally: this loop runs once per tried
        # assignment in the solver's CSP search.
        op_const, op_var, op_ite = ExprOp.CONST, ExprOp.VAR, ExprOp.ITE
        op_zext, op_trunc, op_sext = ExprOp.ZEXT, ExprOp.TRUNC, ExprOp.SEXT
        op_not, op_add, op_sub = ExprOp.NOT, ExprOp.ADD, ExprOp.SUB
        op_mul, op_and, op_or = ExprOp.MUL, ExprOp.AND, ExprOp.OR
        op_xor, op_shl, op_lshr = ExprOp.XOR, ExprOp.SHL, ExprOp.LSHR
        op_ashr, op_udiv, op_urem = ExprOp.ASHR, ExprOp.UDIV, ExprOp.UREM
        op_sdiv, op_srem = ExprOp.SDIV, ExprOp.SREM
        op_eq, op_ne = ExprOp.EQ, ExprOp.NE
        op_ult, op_ule = ExprOp.ULT, ExprOp.ULE
        op_slt, op_sle = ExprOp.SLT, ExprOp.SLE
        signed = to_signed
        for i, (op, width, opw, idxs, const_value, name) in enumerate(schedule):
            if op is op_const:
                values[i] = const_value
                continue
            if op is op_var:
                try:
                    values[i] = assignment[name] & ((1 << width) - 1)
                except KeyError as exc:
                    raise KeyError(
                        f"no value for symbolic variable {name}") from exc
                continue
            if op is op_ite:
                values[i] = values[idxs[1]] if values[idxs[0]] \
                    else values[idxs[2]]
                continue
            if op is op_zext or op is op_trunc:
                values[i] = values[idxs[0]] & ((1 << width) - 1)
                continue
            if op is op_sext:
                values[i] = signed(values[idxs[0]], opw) & ((1 << width) - 1)
                continue
            if op is op_not:
                values[i] = (~values[idxs[0]]) & ((1 << width) - 1)
                continue
            lhs = values[idxs[0]]
            rhs = values[idxs[1]]
            if op is op_eq:
                values[i] = 1 if lhs == rhs else 0
            elif op is op_ne:
                values[i] = 1 if lhs != rhs else 0
            elif op is op_ult:
                values[i] = 1 if lhs < rhs else 0
            elif op is op_ule:
                values[i] = 1 if lhs <= rhs else 0
            elif op is op_slt:
                values[i] = 1 if signed(lhs, opw) < signed(rhs, opw) else 0
            elif op is op_sle:
                values[i] = 1 if signed(lhs, opw) <= signed(rhs, opw) else 0
            elif op is op_add:
                values[i] = (lhs + rhs) & ((1 << width) - 1)
            elif op is op_sub:
                values[i] = (lhs - rhs) & ((1 << width) - 1)
            elif op is op_mul:
                values[i] = (lhs * rhs) & ((1 << width) - 1)
            elif op is op_and:
                values[i] = lhs & rhs
            elif op is op_or:
                values[i] = lhs | rhs
            elif op is op_xor:
                values[i] = lhs ^ rhs
            elif op is op_shl:
                values[i] = (lhs << (rhs % width)) & ((1 << width) - 1)
            elif op is op_lshr:
                values[i] = lhs >> (rhs % width)
            elif op is op_ashr:
                values[i] = (signed(lhs, opw) >> (rhs % width)) & \
                    ((1 << width) - 1)
            elif op is op_udiv:
                values[i] = (lhs // rhs) & ((1 << width) - 1) if rhs else 0
            elif op is op_urem:
                values[i] = (lhs % rhs) & ((1 << width) - 1) if rhs else lhs
            elif op is op_sdiv:
                if rhs == 0:
                    values[i] = 0
                else:
                    values[i] = truncdiv(signed(lhs, opw),
                                         signed(rhs, opw)) & ((1 << width) - 1)
            elif op is op_srem:
                if rhs == 0:
                    values[i] = lhs
                else:
                    slhs, srhs = signed(lhs, opw), signed(rhs, opw)
                    values[i] = (slhs - truncdiv(slhs, srhs) * srhs) & \
                        ((1 << width) - 1)
            else:
                raise ValueError(f"cannot evaluate {op}")
        return values[-1]

    # ----------------------------------------------------------- rendering
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Expr {self.render()}>"

    def render(self) -> str:
        """Human-readable rendering (prefix form)."""
        if self.op is ExprOp.CONST:
            return f"{self.value}:{self.width}"
        if self.op is ExprOp.VAR:
            return f"{self.name}:{self.width}"
        inner = " ".join(op.render() for op in self.operands)
        return f"({self.op.value}.{self.width} {inner})"


# --------------------------------------------------------------------------
# Interval analysis over expressions (used by the solver's fast path and by
# the branch-and-prune search, which re-runs it under per-variable bounds).
# --------------------------------------------------------------------------
def unsigned_interval(expr: Expr) -> Tuple[int, int]:
    """A conservative [low, high] unsigned interval for ``expr`` assuming all
    variables are unconstrained.

    Memoized per interned node: thanks to hash-consing the interval of a
    subexpression is computed once per process, not once per solver query.
    Iterative over the persistent memo, so a cold deep dependent chain
    does not hit the recursion limit.
    """
    cached = expr._interval
    if cached is not None:
        return cached
    stack: List[Expr] = [expr]
    while stack:
        node = stack[-1]
        if node._interval is not None:
            stack.pop()
            continue
        pending = [operand for operand in node.operands
                   if operand._interval is None]
        if pending:
            stack.extend(pending)
            continue
        node._interval = _interval_transfer(node, _memoized_interval)
        stack.pop()
    return expr._interval


def _memoized_interval(node: Expr) -> Tuple[int, int]:
    """Child accessor for :func:`unsigned_interval`'s bottom-up walk (every
    operand's interval is already in the per-node memo)."""
    return node._interval


def bounded_interval(expr: Expr,
                     bounds: Dict[str, Tuple[int, int]]) -> Tuple[int, int]:
    """A conservative [low, high] unsigned interval for ``expr`` given
    per-variable bounds (the branch-and-prune search's box).

    Variables missing from ``bounds`` fall back to their full range.  Not
    memoized on the node (the answer depends on the box); shared
    subexpressions are still computed once per call via a local memo.  The
    walk is iterative, like :meth:`Expr.evaluate`, so deep dependent
    chains do not hit the recursion limit.
    """
    memo: Dict[Expr, Tuple[int, int]] = {}
    stack: List[Expr] = [expr]
    while stack:
        node = stack[-1]
        if node in memo:
            stack.pop()
            continue
        if node.op is ExprOp.VAR:
            memo[node] = bounds.get(node.name) or (0, mask(node.width))
            stack.pop()
            continue
        pending = [operand for operand in node.operands
                   if operand not in memo]
        if pending:
            stack.extend(pending)
            continue
        memo[node] = _interval_transfer(node, memo.__getitem__)
        stack.pop()
    return memo[expr]


def _signed_bounds(low: int, high: int, width: int
                   ) -> Optional[Tuple[int, int]]:
    """The signed range of an unsigned interval, or None when the interval
    crosses the sign boundary (so its signed image is not an interval)."""
    half = 1 << (width - 1)
    if high < half:
        return (low, high)
    if low >= half:
        return (low - (1 << width), high - (1 << width))
    return None


def _interval_transfer(expr: Expr, child) -> Tuple[int, int]:
    """One transfer step: the interval of ``expr`` from its operands'
    intervals, obtained via ``child(operand)``."""
    op = expr.op
    full = (0, mask(expr.width))
    if op is ExprOp.CONST:
        return (expr.value, expr.value)
    if op is ExprOp.VAR:
        return full
    if op is ExprOp.ZEXT:
        return child(expr.operands[0])
    if op is ExprOp.ITE:
        cond_low, cond_high = child(expr.operands[0])
        if cond_low >= 1:
            return child(expr.operands[1])
        if cond_high == 0:
            return child(expr.operands[2])
        low1, high1 = child(expr.operands[1])
        low2, high2 = child(expr.operands[2])
        return (min(low1, low2), max(high1, high2))
    if op.is_comparison:
        # The comparison's own value is a boolean; try to decide it from the
        # operand intervals.
        lhs_low, lhs_high = child(expr.operands[0])
        rhs_low, rhs_high = child(expr.operands[1])
        if op is ExprOp.ULT:
            if lhs_high < rhs_low:
                return (1, 1)
            if lhs_low >= rhs_high:
                return (0, 0)
        elif op is ExprOp.ULE:
            if lhs_high <= rhs_low:
                return (1, 1)
            if lhs_low > rhs_high:
                return (0, 0)
        elif op is ExprOp.EQ:
            if lhs_low == lhs_high == rhs_low == rhs_high:
                return (1, 1)
            if lhs_high < rhs_low or rhs_high < lhs_low:
                return (0, 0)
        elif op is ExprOp.NE:
            if lhs_high < rhs_low or rhs_high < lhs_low:
                return (1, 1)
            if lhs_low == lhs_high == rhs_low == rhs_high:
                return (0, 0)
        elif op in (ExprOp.SLT, ExprOp.SLE):
            # Decidable when neither operand interval crosses the sign
            # boundary: the unsigned->signed map is then monotone.
            operand_width = expr.operands[0].width
            lhs_signed = _signed_bounds(lhs_low, lhs_high, operand_width)
            rhs_signed = _signed_bounds(rhs_low, rhs_high, operand_width)
            if lhs_signed is not None and rhs_signed is not None:
                if op is ExprOp.SLT:
                    if lhs_signed[1] < rhs_signed[0]:
                        return (1, 1)
                    if lhs_signed[0] >= rhs_signed[1]:
                        return (0, 0)
                else:
                    if lhs_signed[1] <= rhs_signed[0]:
                        return (1, 1)
                    if lhs_signed[0] > rhs_signed[1]:
                        return (0, 0)
        return (0, 1)
    if op is ExprOp.AND:
        low1, high1 = child(expr.operands[0])
        low2, high2 = child(expr.operands[1])
        return (0, min(high1, high2))
    if op is ExprOp.OR:
        low1, high1 = child(expr.operands[0])
        low2, high2 = child(expr.operands[1])
        bits = max(high1.bit_length(), high2.bit_length())
        return (max(low1, low2), min(mask(expr.width),
                                     (1 << bits) - 1 if bits else 0))
    if op is ExprOp.XOR:
        low1, high1 = child(expr.operands[0])
        low2, high2 = child(expr.operands[1])
        if expr.width == 1 and low2 == high2:
            # Boolean negation (xor 1) / identity (xor 0) stays decided.
            if low2 == 1:
                return (1 - high1, 1 - low1)
            return (low1, high1)
        bits = max(high1.bit_length(), high2.bit_length())
        return (0, min(mask(expr.width), (1 << bits) - 1 if bits else 0))
    if op is ExprOp.ADD:
        low1, high1 = child(expr.operands[0])
        low2, high2 = child(expr.operands[1])
        if high1 + high2 <= mask(expr.width):
            return (low1 + low2, high1 + high2)
        return full
    if op is ExprOp.SUB:
        low1, high1 = child(expr.operands[0])
        low2, high2 = child(expr.operands[1])
        # Sound only when no value pair can wrap below zero.
        if low1 >= high2:
            return (low1 - high2, high1 - low2)
        return full
    if op is ExprOp.MUL:
        low1, high1 = child(expr.operands[0])
        low2, high2 = child(expr.operands[1])
        if high1 * high2 <= mask(expr.width):
            return (low1 * low2, high1 * high2)
        return full
    if op is ExprOp.SHL:
        low1, high1 = child(expr.operands[0])
        low2, high2 = child(expr.operands[1])
        # The shift amount is taken modulo the width; only predictable when
        # the whole rhs interval stays below it and nothing can overflow.
        if high2 < expr.width and (high1 << high2) <= mask(expr.width):
            return (low1 << low2, high1 << high2)
        return full
    if op is ExprOp.LSHR:
        low1, high1 = child(expr.operands[0])
        return (0, high1)
    if op is ExprOp.TRUNC:
        low1, high1 = child(expr.operands[0])
        if high1 <= mask(expr.width):
            return (low1, high1)
        return full
    if op is ExprOp.SEXT:
        inner = expr.operands[0]
        low1, high1 = child(inner)
        half = 1 << (inner.width - 1)
        if high1 < half:
            # Never negative: sign extension is zero extension.
            return (low1, high1)
        if low1 >= half:
            # Always negative: every value gains the same high bits.
            delta = mask(expr.width) - mask(inner.width)
            return (low1 + delta, high1 + delta)
        return full
    return full
