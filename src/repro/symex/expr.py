"""Symbolic expressions over bitvectors.

Expressions are immutable, structurally hashable trees.  The constructors in
:mod:`repro.symex.simplify` perform light canonicalization/constant folding;
the solver consumes expressions directly.

Widths follow the IR: 1, 8, 16, 32, 64 bit unsigned bitvectors with two's
complement signed interpretations where needed.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Optional, Tuple


class ExprOp(enum.Enum):
    """Operators of the expression language."""

    CONST = "const"
    VAR = "var"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    SDIV = "sdiv"
    UREM = "urem"
    SREM = "srem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    SLT = "slt"
    SLE = "sle"
    ZEXT = "zext"
    SEXT = "sext"
    TRUNC = "trunc"
    ITE = "ite"
    NOT = "not"  # bitwise not


COMPARISON_OPS = {ExprOp.EQ, ExprOp.NE, ExprOp.ULT, ExprOp.ULE,
                  ExprOp.SLT, ExprOp.SLE}
COMMUTATIVE_OPS = {ExprOp.ADD, ExprOp.MUL, ExprOp.AND, ExprOp.OR, ExprOp.XOR,
                   ExprOp.EQ, ExprOp.NE}


def mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


class Expr:
    """An immutable bitvector expression."""

    __slots__ = ("op", "width", "operands", "value", "name", "_hash", "_vars")

    def __init__(self, op: ExprOp, width: int,
                 operands: Tuple["Expr", ...] = (),
                 value: int = 0, name: str = "") -> None:
        self.op = op
        self.width = width
        self.operands = operands
        self.value = value & mask(width) if op is ExprOp.CONST else value
        self.name = name
        self._hash: Optional[int] = None
        self._vars: Optional[FrozenSet[str]] = None

    # ----------------------------------------------------------- identity
    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.op, self.width, self.value, self.name,
                               self.operands))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return (self.op is other.op and self.width == other.width and
                self.value == other.value and self.name == other.name and
                self.operands == other.operands)

    # ----------------------------------------------------------- queries
    @property
    def is_constant(self) -> bool:
        return self.op is ExprOp.CONST

    @property
    def is_true(self) -> bool:
        return self.op is ExprOp.CONST and self.width == 1 and self.value == 1

    @property
    def is_false(self) -> bool:
        return self.op is ExprOp.CONST and self.width == 1 and self.value == 0

    @property
    def is_symbolic(self) -> bool:
        return not self.is_constant

    def variables(self) -> FrozenSet[str]:
        """Names of the symbolic variables the expression depends on."""
        if self._vars is None:
            if self.op is ExprOp.VAR:
                self._vars = frozenset((self.name,))
            elif self.op is ExprOp.CONST:
                self._vars = frozenset()
            else:
                names: set = set()
                for operand in self.operands:
                    names |= operand.variables()
                self._vars = frozenset(names)
        return self._vars

    def size(self) -> int:
        """Number of nodes in the expression tree."""
        return 1 + sum(op.size() for op in self.operands)

    # ----------------------------------------------------------- evaluation
    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Evaluate under a concrete assignment of every variable."""
        op = self.op
        if op is ExprOp.CONST:
            return self.value
        if op is ExprOp.VAR:
            try:
                return assignment[self.name] & mask(self.width)
            except KeyError as exc:
                raise KeyError(f"no value for symbolic variable {self.name}") \
                    from exc
        if op is ExprOp.ITE:
            condition = self.operands[0].evaluate(assignment)
            chosen = self.operands[1] if condition else self.operands[2]
            return chosen.evaluate(assignment)
        if op in (ExprOp.ZEXT, ExprOp.TRUNC):
            return self.operands[0].evaluate(assignment) & mask(self.width)
        if op is ExprOp.SEXT:
            inner = self.operands[0]
            return to_signed(inner.evaluate(assignment), inner.width) & \
                mask(self.width)
        if op is ExprOp.NOT:
            return (~self.operands[0].evaluate(assignment)) & mask(self.width)

        lhs = self.operands[0].evaluate(assignment)
        rhs = self.operands[1].evaluate(assignment)
        w = self.operands[0].width
        if op is ExprOp.ADD:
            return (lhs + rhs) & mask(self.width)
        if op is ExprOp.SUB:
            return (lhs - rhs) & mask(self.width)
        if op is ExprOp.MUL:
            return (lhs * rhs) & mask(self.width)
        if op is ExprOp.AND:
            return lhs & rhs
        if op is ExprOp.OR:
            return lhs | rhs
        if op is ExprOp.XOR:
            return lhs ^ rhs
        if op is ExprOp.SHL:
            return (lhs << (rhs % self.width)) & mask(self.width)
        if op is ExprOp.LSHR:
            return lhs >> (rhs % self.width)
        if op is ExprOp.ASHR:
            return (to_signed(lhs, w) >> (rhs % self.width)) & mask(self.width)
        if op is ExprOp.UDIV:
            return (lhs // rhs) & mask(self.width) if rhs else 0
        if op is ExprOp.UREM:
            return (lhs % rhs) & mask(self.width) if rhs else lhs
        if op is ExprOp.SDIV:
            if rhs == 0:
                return 0
            return int(to_signed(lhs, w) / to_signed(rhs, w)) & mask(self.width)
        if op is ExprOp.SREM:
            if rhs == 0:
                return lhs
            slhs, srhs = to_signed(lhs, w), to_signed(rhs, w)
            return (slhs - int(slhs / srhs) * srhs) & mask(self.width)
        if op is ExprOp.EQ:
            return int(lhs == rhs)
        if op is ExprOp.NE:
            return int(lhs != rhs)
        if op is ExprOp.ULT:
            return int(lhs < rhs)
        if op is ExprOp.ULE:
            return int(lhs <= rhs)
        if op is ExprOp.SLT:
            return int(to_signed(lhs, w) < to_signed(rhs, w))
        if op is ExprOp.SLE:
            return int(to_signed(lhs, w) <= to_signed(rhs, w))
        raise ValueError(f"cannot evaluate {op}")

    # ----------------------------------------------------------- rendering
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Expr {self.render()}>"

    def render(self) -> str:
        """Human-readable rendering (prefix form)."""
        if self.op is ExprOp.CONST:
            return f"{self.value}:{self.width}"
        if self.op is ExprOp.VAR:
            return f"{self.name}:{self.width}"
        inner = " ".join(op.render() for op in self.operands)
        return f"({self.op.value}.{self.width} {inner})"


# --------------------------------------------------------------------------
# Interval analysis over expressions (used by the solver's fast path).
# --------------------------------------------------------------------------
def unsigned_interval(expr: Expr) -> Tuple[int, int]:
    """A conservative [low, high] unsigned interval for ``expr`` assuming all
    variables are unconstrained."""
    op = expr.op
    full = (0, mask(expr.width))
    if op is ExprOp.CONST:
        return (expr.value, expr.value)
    if op is ExprOp.VAR:
        return full
    if op is ExprOp.ZEXT:
        return unsigned_interval(expr.operands[0])
    if op is ExprOp.ITE:
        low1, high1 = unsigned_interval(expr.operands[1])
        low2, high2 = unsigned_interval(expr.operands[2])
        return (min(low1, low2), max(high1, high2))
    if op in COMPARISON_OPS:
        # The comparison's own value is a boolean; try to decide it from the
        # operand intervals.
        lhs_low, lhs_high = unsigned_interval(expr.operands[0])
        rhs_low, rhs_high = unsigned_interval(expr.operands[1])
        if op is ExprOp.ULT:
            if lhs_high < rhs_low:
                return (1, 1)
            if lhs_low >= rhs_high:
                return (0, 0)
        elif op is ExprOp.ULE:
            if lhs_high <= rhs_low:
                return (1, 1)
            if lhs_low > rhs_high:
                return (0, 0)
        elif op is ExprOp.EQ:
            if lhs_low == lhs_high == rhs_low == rhs_high:
                return (1, 1)
            if lhs_high < rhs_low or rhs_high < lhs_low:
                return (0, 0)
        elif op is ExprOp.NE:
            if lhs_high < rhs_low or rhs_high < lhs_low:
                return (1, 1)
            if lhs_low == lhs_high == rhs_low == rhs_high:
                return (0, 0)
        return (0, 1)
    if op is ExprOp.AND:
        low1, high1 = unsigned_interval(expr.operands[0])
        low2, high2 = unsigned_interval(expr.operands[1])
        return (0, min(high1, high2))
    if op is ExprOp.OR:
        low1, high1 = unsigned_interval(expr.operands[0])
        low2, high2 = unsigned_interval(expr.operands[1])
        bits = max(high1.bit_length(), high2.bit_length())
        return (max(low1, low2), min(mask(expr.width),
                                     (1 << bits) - 1 if bits else 0))
    if op is ExprOp.ADD:
        low1, high1 = unsigned_interval(expr.operands[0])
        low2, high2 = unsigned_interval(expr.operands[1])
        if high1 + high2 <= mask(expr.width):
            return (low1 + low2, high1 + high2)
        return full
    if op is ExprOp.MUL:
        low1, high1 = unsigned_interval(expr.operands[0])
        low2, high2 = unsigned_interval(expr.operands[1])
        if high1 * high2 <= mask(expr.width):
            return (low1 * low2, high1 * high2)
        return full
    if op is ExprOp.LSHR:
        low1, high1 = unsigned_interval(expr.operands[0])
        return (0, high1)
    return full
