"""Symbolic memory: a byte-addressable memory whose cells hold expressions.

Addresses themselves are concrete integers (the executor concretizes
symbolic addresses before they reach memory, as KLEE does for writes); the
*contents* of memory may be symbolic.  Bounds are tracked per object so that
memory-safety violations become detected errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..interp.errors import ErrorKind, ProgramError
from ..interp.memory import NULL_GUARD_SIZE
from .expr import Expr, ExprOp
from .simplify import concat_bytes, const, extract_byte


def _byte_source(byte: Expr) -> Optional[Tuple[Expr, int]]:
    """If ``byte`` is "byte ``i`` of some wider value", return (value, i)."""
    if byte.op is ExprOp.TRUNC and byte.width == 8:
        inner = byte.operands[0]
        if inner.op is ExprOp.LSHR and inner.operands[1].is_constant and \
                inner.operands[1].value % 8 == 0:
            return inner.operands[0], inner.operands[1].value // 8
        return inner, 0
    return None


def _reassemble_stored_value(parts: List[Expr], size: int) -> Optional[Expr]:
    """Detect the store/load round trip: if the ``size`` bytes are exactly
    bytes 0..size-1 of one value of width 8*size, return that value directly.

    Without this, an unoptimized (``-O0``) build — where every local value is
    written to an alloca and read back — produces expressions whose size
    grows with every memory round trip, which distorts the comparison between
    optimization levels: KLEE's expression builder performs the equivalent
    read-over-write simplification.
    """
    if size == 1:
        source = _byte_source(parts[0])
        if source is not None and source[0].width == 8 and source[1] == 0:
            return source[0]
        return None
    first = _byte_source(parts[0])
    if first is None:
        return None
    value, first_index = first
    if first_index != 0 or value.width != 8 * size:
        return None
    for i, part in enumerate(parts[1:], start=1):
        source = _byte_source(part)
        if source is None or source[0] is not value or source[1] != i:
            return None
    return value


@dataclass
class SymbolicMemoryObject:
    """One allocation: base address, size, and a name for error reports."""

    base: int
    size: int
    name: str = ""
    writable: bool = True


class SymbolicMemory:
    """Byte-granular memory holding symbolic expressions.

    Forking is copy-on-write: the byte dict and the object list are shared
    between the two memories until one side writes (expressions themselves
    are immutable, so sharing them is always safe).  A fork that never
    writes — an error path, a terminated state — costs O(1).
    """

    def __init__(self) -> None:
        self._next_address = NULL_GUARD_SIZE
        self.objects: List[SymbolicMemoryObject] = []
        self.bytes: Dict[int, Expr] = {}
        self._bytes_shared = False
        self._objects_shared = False

    # ------------------------------------------------------------- copying
    def fork(self) -> "SymbolicMemory":
        clone = SymbolicMemory.__new__(SymbolicMemory)
        clone._next_address = self._next_address
        clone.objects = self.objects
        clone.bytes = self.bytes
        clone._bytes_shared = True
        clone._objects_shared = True
        self._bytes_shared = True
        self._objects_shared = True
        return clone

    def _own_bytes(self) -> None:
        if self._bytes_shared:
            self.bytes = dict(self.bytes)
            self._bytes_shared = False

    def _own_objects(self) -> None:
        if self._objects_shared:
            self.objects = list(self.objects)
            self._objects_shared = False

    # -------------------------------------------------------------- layout
    def allocate(self, size: int, name: str = "", writable: bool = True) -> int:
        self._own_objects()
        size = max(1, size)
        base = self._next_address
        self._next_address += size + 16
        self.objects.append(SymbolicMemoryObject(base=base, size=size,
                                                 name=name, writable=writable))
        return base

    def object_at(self, address: int) -> Optional[SymbolicMemoryObject]:
        for obj in reversed(self.objects):
            if obj.base <= address < obj.base + obj.size:
                return obj
        return None

    def _check(self, address: int, size: int, write: bool) -> None:
        if address < NULL_GUARD_SIZE:
            raise ProgramError(ErrorKind.NULL_DEREFERENCE,
                               f"access at address {address:#x}")
        obj = self.object_at(address)
        if obj is None or address + size > obj.base + obj.size:
            raise ProgramError(
                ErrorKind.OUT_OF_BOUNDS,
                f"{'write' if write else 'read'} of {size} bytes at "
                f"{address:#x}")
        if write and not obj.writable:
            raise ProgramError(ErrorKind.OUT_OF_BOUNDS,
                               f"write to read-only object '{obj.name}'")

    # -------------------------------------------------------------- access
    def store(self, address: int, value: Expr, size: int) -> None:
        """Store ``value`` (an expression of width 8*size) little-endian."""
        self._check(address, size, write=True)
        self._own_bytes()
        if size == 1:
            # extract_byte(value, 0) of a width-8 value is the value.
            self.bytes[address] = value if value.width == 8 \
                else extract_byte(value, 0)
            return
        for i in range(size):
            self.bytes[address + i] = extract_byte(value, i)

    def load(self, address: int, size: int) -> Expr:
        """Load ``size`` bytes little-endian as one expression."""
        self._check(address, size, write=False)
        if size == 1:
            # Single bytes are stored whole; no reassembly to do.
            return self.bytes.get(address) or const(8, 0)
        parts = [self.bytes.get(address + i, const(8, 0)) for i in range(size)]
        whole = _reassemble_stored_value(parts, size)
        if whole is not None:
            return whole
        return concat_bytes(parts)

    def store_concrete_bytes(self, address: int, data: bytes) -> None:
        self._check(address, len(data), write=True)
        self._own_bytes()
        for i, value in enumerate(data):
            self.bytes[address + i] = const(8, value)

    def store_symbolic_bytes(self, address: int, exprs: List[Expr]) -> None:
        self._check(address, len(exprs), write=True)
        self._own_bytes()
        for i, expr in enumerate(exprs):
            self.bytes[address + i] = expr
