"""Smart constructors for symbolic expressions.

Every expression built by the executor goes through these constructors,
which perform constant folding and light algebraic canonicalization.  This
mirrors KLEE's ``ExprBuilder`` layer and is what keeps constraint sizes
proportional to the (optimized) program rather than to the raw instruction
stream — the better the compiler simplifies the program, the smaller the
expressions that reach the solver.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .expr import COMPARISON_OPS, Expr, ExprOp, mask, to_signed, truncdiv

# Strong bounded caches in front of the weak intern table for the two
# highest-traffic constructors: they skip the weakref machinery and keep the
# most common leaves (small constants, input variables) permanently alive.
_CONST_CACHE: Dict[Tuple[int, int], Expr] = {}
_CONST_CACHE_LIMIT = 4096
_VAR_CACHE: Dict[Tuple[int, str], Expr] = {}
_VAR_CACHE_LIMIT = 4096


def const(width: int, value: int) -> Expr:
    # Mask before keying so aliases of one constant (e.g. 256 and 0 at
    # width 8) share a single cache slot, as they share an interned node.
    value &= (1 << width) - 1
    key = (width, value)
    expr = _CONST_CACHE.get(key)
    if expr is None:
        expr = Expr(ExprOp.CONST, width, value=value)
        if len(_CONST_CACHE) < _CONST_CACHE_LIMIT:
            _CONST_CACHE[key] = expr
    return expr


def true_expr() -> Expr:
    return const(1, 1)


def false_expr() -> Expr:
    return const(1, 0)


def var(width: int, name: str) -> Expr:
    key = (width, name)
    expr = _VAR_CACHE.get(key)
    if expr is None:
        expr = Expr(ExprOp.VAR, width, name=name)
        if len(_VAR_CACHE) < _VAR_CACHE_LIMIT:
            _VAR_CACHE[key] = expr
    return expr


def _fold_binary(op: ExprOp, width: int, lhs: int, rhs: int,
                 operand_width: int) -> int:
    if op is ExprOp.ADD:
        return (lhs + rhs) & mask(width)
    if op is ExprOp.SUB:
        return (lhs - rhs) & mask(width)
    if op is ExprOp.MUL:
        return (lhs * rhs) & mask(width)
    if op is ExprOp.AND:
        return lhs & rhs
    if op is ExprOp.OR:
        return lhs | rhs
    if op is ExprOp.XOR:
        return lhs ^ rhs
    if op is ExprOp.SHL:
        return (lhs << (rhs % width)) & mask(width)
    if op is ExprOp.LSHR:
        return lhs >> (rhs % width)
    if op is ExprOp.ASHR:
        return (to_signed(lhs, width) >> (rhs % width)) & mask(width)
    if op is ExprOp.UDIV:
        return (lhs // rhs) & mask(width) if rhs else 0
    if op is ExprOp.UREM:
        return (lhs % rhs) & mask(width) if rhs else lhs
    if op is ExprOp.SDIV:
        if rhs == 0:
            return 0
        return truncdiv(to_signed(lhs, width),
                         to_signed(rhs, width)) & mask(width)
    if op is ExprOp.SREM:
        if rhs == 0:
            return lhs
        slhs, srhs = to_signed(lhs, width), to_signed(rhs, width)
        return (slhs - truncdiv(slhs, srhs) * srhs) & mask(width)
    if op is ExprOp.EQ:
        return int(lhs == rhs)
    if op is ExprOp.NE:
        return int(lhs != rhs)
    if op is ExprOp.ULT:
        return int(lhs < rhs)
    if op is ExprOp.ULE:
        return int(lhs <= rhs)
    if op is ExprOp.SLT:
        return int(to_signed(lhs, operand_width) < to_signed(rhs, operand_width))
    if op is ExprOp.SLE:
        return int(to_signed(lhs, operand_width) <= to_signed(rhs, operand_width))
    raise ValueError(f"not a binary operator: {op}")


def binary(op: ExprOp, lhs: Expr, rhs: Expr) -> Expr:
    """Build a binary expression with folding and identity simplification."""
    is_comparison = op.is_comparison
    width = 1 if is_comparison else lhs.width
    if lhs.is_constant and rhs.is_constant:
        return const(width, _fold_binary(op, lhs.width if is_comparison
                                         else width,
                                         lhs.value, rhs.value, lhs.width))

    # Canonicalize: constants on the right for commutative operators.
    if lhs.is_constant and op.is_commutative:
        lhs, rhs = rhs, lhs

    if rhs.is_constant:
        rv = rhs.value
        if op is ExprOp.ADD and rv == 0:
            return lhs
        if op is ExprOp.SUB and rv == 0:
            return lhs
        if op is ExprOp.MUL:
            if rv == 0:
                return const(width, 0)
            if rv == 1:
                return lhs
        if op is ExprOp.AND:
            if rv == 0:
                return const(width, 0)
            if rv == (1 << width) - 1:
                return lhs
        if op is ExprOp.OR:
            if rv == 0:
                return lhs
            if rv == (1 << width) - 1:
                return rhs
        if op is ExprOp.XOR and rv == 0:
            return lhs
        if op in (ExprOp.SHL, ExprOp.LSHR, ExprOp.ASHR) and rv == 0:
            return lhs
        if op is ExprOp.UDIV and rv == 1:
            return lhs

    if lhs is rhs or lhs == rhs:
        if op is ExprOp.SUB or op is ExprOp.XOR:
            return const(width, 0)
        if op in (ExprOp.AND, ExprOp.OR):
            return lhs
        if op in (ExprOp.EQ, ExprOp.ULE, ExprOp.SLE):
            return true_expr()
        if op in (ExprOp.NE, ExprOp.ULT, ExprOp.SLT):
            return false_expr()

    # (zext x) == 0  ->  x == 0 over the narrower width; helps the solver
    # keep constraints on the original input bytes.
    if op in (ExprOp.EQ, ExprOp.NE) and rhs.is_constant and \
            lhs.op is ExprOp.ZEXT:
        inner = lhs.operands[0]
        if rhs.value <= mask(inner.width):
            return binary(op, inner, const(inner.width, rhs.value))

    # Boolean simplifications for width-1 operands.
    if width == 1 and lhs.width == 1:
        if op is ExprOp.EQ and rhs.is_constant:
            return lhs if rhs.value == 1 else not_expr(lhs)
        if op is ExprOp.NE and rhs.is_constant:
            return not_expr(lhs) if rhs.value == 1 else lhs

    return Expr(op, width, (lhs, rhs))


#: not (a < b)  ->  b <= a, etc.: negating an ordered comparison flips the
#: operator *and* swaps the operands, keeping constraints in comparison form
#: (where the interval fast path and branch-and-prune can decide them)
#: instead of wrapping them in an opaque ``xor 1``.
_ORDER_NEGATIONS = {ExprOp.ULT: ExprOp.ULE, ExprOp.ULE: ExprOp.ULT,
                    ExprOp.SLT: ExprOp.SLE, ExprOp.SLE: ExprOp.SLT}


def not_expr(operand: Expr) -> Expr:
    """Logical negation of a width-1 expression."""
    assert operand.width == 1
    if operand.is_constant:
        return const(1, 1 - operand.value)
    if operand.op is ExprOp.XOR:
        # ``binary`` canonicalizes the constant of a commutative operator
        # to the right, but a double negation must collapse regardless of
        # which side the 1 landed on — substitution paths may hand us a
        # non-canonical node, and silently skipping the rewrite would leave
        # an opaque ``xor`` in front of the solver.
        a, b = operand.operands
        if b.is_constant and b.value == 1:
            return a
        if a.is_constant and a.value == 1:
            return b
    # not (a == b) -> a != b, etc., keeps constraints in comparison form.
    negations = {ExprOp.EQ: ExprOp.NE, ExprOp.NE: ExprOp.EQ}
    if operand.op in negations:
        return Expr(negations[operand.op], 1, operand.operands)
    if operand.op in _ORDER_NEGATIONS:
        return Expr(_ORDER_NEGATIONS[operand.op], 1,
                    (operand.operands[1], operand.operands[0]))
    return binary(ExprOp.XOR, operand, const(1, 1))


def bitwise_not(operand: Expr) -> Expr:
    if operand.is_constant:
        return const(operand.width, ~operand.value)
    return Expr(ExprOp.NOT, operand.width, (operand,))


def zext(operand: Expr, width: int) -> Expr:
    if width == operand.width:
        return operand
    if operand.is_constant:
        return const(width, operand.value)
    if operand.op is ExprOp.ZEXT:
        return zext(operand.operands[0], width)
    return Expr(ExprOp.ZEXT, width, (operand,))


def sext(operand: Expr, width: int) -> Expr:
    if width == operand.width:
        return operand
    if operand.is_constant:
        return const(width, to_signed(operand.value, operand.width))
    return Expr(ExprOp.SEXT, width, (operand,))


def trunc(operand: Expr, width: int) -> Expr:
    if width == operand.width:
        return operand
    if operand.is_constant:
        return const(width, operand.value)
    if operand.op in (ExprOp.ZEXT, ExprOp.SEXT):
        inner = operand.operands[0]
        if inner.width == width:
            return inner
        if inner.width > width:
            return trunc(inner, width)
    return Expr(ExprOp.TRUNC, width, (operand,))


def ite(condition: Expr, then: Expr, otherwise: Expr) -> Expr:
    """If-then-else (the symbolic counterpart of the IR's ``select``)."""
    assert condition.width == 1
    if condition.is_constant:
        return then if condition.value else otherwise
    if then == otherwise:
        return then
    if then.width == 1 and then.is_constant and otherwise.is_constant:
        if then.value == 1 and otherwise.value == 0:
            return condition
        if then.value == 0 and otherwise.value == 1:
            return not_expr(condition)
    return Expr(ExprOp.ITE, then.width, (condition, then, otherwise))


def rebuild(op: ExprOp, width: int, operands: Tuple[Expr, ...]) -> Expr:
    """Re-apply the smart constructor for ``op`` to new operands, so that a
    transformed expression gets the same folding/canonicalization as a
    freshly built one."""
    if op is ExprOp.ZEXT:
        return zext(operands[0], width)
    if op is ExprOp.SEXT:
        return sext(operands[0], width)
    if op is ExprOp.TRUNC:
        return trunc(operands[0], width)
    if op is ExprOp.NOT:
        return bitwise_not(operands[0])
    if op is ExprOp.ITE:
        return ite(operands[0], operands[1], operands[2])
    return binary(op, operands[0], operands[1])


def substitute(expr: Expr, mapping: Dict[Expr, Expr],
               key_variables: Optional[frozenset] = None) -> Expr:
    """Replace whole subexpressions throughout ``expr``.

    ``mapping`` sends interned nodes to their replacements — hash-consing
    makes the occurrence check a dict lookup, so a ``var == const`` mapping
    and a ``complex-expr == const`` mapping cost the same.  Matching is
    top-down (an enclosing match wins over matches inside it) and rebuilt
    nodes are re-checked, with every touched node going through the smart
    constructors so the result is folded and canonicalized.  This is the
    engine of KLEE's ``--rewrite-equalities``: after ``lhs == const`` lands
    in a path condition, substituting ``lhs -> const`` through the rest of
    the constraint set shrinks it without changing its models.

    ``key_variables`` (the union of the mapping keys' variables) prunes
    subtrees that cannot contain any key; it is computed when not supplied,
    so callers that keep a mapping alive should cache it.  The walk is
    iterative, like :meth:`Expr.evaluate`, so deep dependent chains do not
    hit the recursion limit.
    """
    if not mapping:
        return expr
    if key_variables is None:
        key_variables = frozenset().union(
            *(key.variables() for key in mapping))
    memo: Dict[Expr, Expr] = {}
    stack: list = [expr]
    while stack:
        node = stack[-1]
        if node in memo:
            stack.pop()
            continue
        replacement = mapping.get(node)
        if replacement is not None:
            memo[node] = replacement
            stack.pop()
            continue
        if node.op is ExprOp.CONST or not (node.variables() & key_variables):
            memo[node] = node
            stack.pop()
            continue
        pending = [operand for operand in node.operands
                   if operand not in memo]
        if pending:
            stack.extend(pending)
            continue
        operands = tuple(memo[operand] for operand in node.operands)
        if operands == node.operands:
            result = node
        else:
            result = rebuild(node.op, node.width, operands)
            # The rebuilt node may itself be a mapped expression.
            result = mapping.get(result, result)
        memo[node] = result
        stack.pop()
    return memo[expr]


def concat_bytes(byte_exprs) -> Expr:
    """Combine little-endian byte expressions into one wide expression."""
    byte_list = list(byte_exprs)
    width = 8 * len(byte_list)
    result: Optional[Expr] = None
    for index, byte in enumerate(byte_list):
        extended = zext(byte, width)
        if index:
            extended = binary(ExprOp.SHL, extended, const(width, 8 * index))
        result = extended if result is None else binary(ExprOp.OR, result,
                                                        extended)
    return result if result is not None else const(8, 0)


def extract_byte(value: Expr, index: int) -> Expr:
    """Extract byte ``index`` (little-endian) of ``value`` as a width-8 expr."""
    if value.is_constant:
        return const(8, (value.value >> (8 * index)) & 0xFF)
    shifted = value if index == 0 else binary(
        ExprOp.LSHR, value, const(value.width, 8 * index))
    return trunc(shifted, 8)
