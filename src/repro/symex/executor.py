"""The symbolic executor: a KLEE-style path-exploring interpreter for the
repro IR.

The executor treats designated input bytes as symbolic, interprets the
program one path at a time, forks at branches whose condition can go both
ways under the current path constraints, and reports every completed path
and every detected bug together with a concrete test input that triggers it.

Its performance characteristics deliberately mirror the paper's §4
description: "The performance of symbolic execution tools is determined by
the number of paths to explore and by the complexity of input-dependent
branch conditions."  Both quantities are measured and exposed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..interp.errors import ErrorKind, ProgramError
from ..ir import (
    AllocaInst, Argument, BasicBlock, BinaryInst, BranchInst, CallInst,
    CastInst, ConstantArray, ConstantInt, Function, GEPInst, GlobalVariable,
    ICmpInst, ICmpPredicate, Instruction, IntType, LoadInst, Module, Opcode,
    PhiInst, PointerType, ReturnInst, SelectInst, StoreInst, SwitchInst,
    Type, UndefValue, UnreachableInst, Value,
)
from .expr import Expr, ExprOp
from .memory import SymbolicMemory
from .searcher import Searcher, make_searcher
from .simplify import binary, const, ite, not_expr, sext, trunc, var, zext, bitwise_not
from .solver import Solver, SolverStats
from .state import ExecutionState, StackFrame, StateStatus

POINTER_WIDTH = 64

_BINARY_OPS = {
    Opcode.ADD: ExprOp.ADD, Opcode.SUB: ExprOp.SUB, Opcode.MUL: ExprOp.MUL,
    Opcode.UDIV: ExprOp.UDIV, Opcode.SDIV: ExprOp.SDIV,
    Opcode.UREM: ExprOp.UREM, Opcode.SREM: ExprOp.SREM,
    Opcode.AND: ExprOp.AND, Opcode.OR: ExprOp.OR, Opcode.XOR: ExprOp.XOR,
    Opcode.SHL: ExprOp.SHL, Opcode.LSHR: ExprOp.LSHR, Opcode.ASHR: ExprOp.ASHR,
}


def _icmp_expr(predicate: ICmpPredicate, lhs: Expr, rhs: Expr) -> Expr:
    if predicate is ICmpPredicate.EQ:
        return binary(ExprOp.EQ, lhs, rhs)
    if predicate is ICmpPredicate.NE:
        return binary(ExprOp.NE, lhs, rhs)
    if predicate is ICmpPredicate.ULT:
        return binary(ExprOp.ULT, lhs, rhs)
    if predicate is ICmpPredicate.ULE:
        return binary(ExprOp.ULE, lhs, rhs)
    if predicate is ICmpPredicate.UGT:
        return binary(ExprOp.ULT, rhs, lhs)
    if predicate is ICmpPredicate.UGE:
        return binary(ExprOp.ULE, rhs, lhs)
    if predicate is ICmpPredicate.SLT:
        return binary(ExprOp.SLT, lhs, rhs)
    if predicate is ICmpPredicate.SLE:
        return binary(ExprOp.SLE, lhs, rhs)
    if predicate is ICmpPredicate.SGT:
        return binary(ExprOp.SLT, rhs, lhs)
    if predicate is ICmpPredicate.SGE:
        return binary(ExprOp.SLE, rhs, lhs)
    raise ValueError(f"unknown predicate {predicate}")


@dataclass
class SymexLimits:
    """Resource limits for one exploration run."""

    max_paths: int = 100_000
    max_instructions: int = 5_000_000
    max_forks: int = 100_000
    timeout_seconds: float = 3600.0
    max_call_depth: int = 128


@dataclass
class BugReport:
    """A detected bug plus a concrete input that triggers it."""

    kind: ErrorKind
    message: str
    function: str
    block: str
    test_input: Optional[bytes] = None

    def signature(self) -> Tuple[str, str, str]:
        """A location-based identity used for cross-build bug comparison."""
        return (self.kind.value, self.function, self.block)


@dataclass
class PathRecord:
    """One fully explored path."""

    state_id: int
    status: StateStatus
    constraint_count: int
    instructions: int
    test_input: Optional[bytes] = None
    return_value: Optional[int] = None


@dataclass
class SymexStats:
    """Aggregate statistics of one exploration run (Table 1's columns)."""

    paths_completed: int = 0
    paths_errored: int = 0
    paths_terminated: int = 0
    instructions_interpreted: int = 0
    branches_encountered: int = 0
    forks: int = 0
    states_created: int = 1
    max_live_states: int = 0
    wall_seconds: float = 0.0
    timed_out: bool = False

    @property
    def total_paths(self) -> int:
        return self.paths_completed + self.paths_errored


@dataclass
class SymexReport:
    """Everything one run of the executor produces."""

    stats: SymexStats
    solver_stats: SolverStats
    paths: List[PathRecord] = field(default_factory=list)
    bugs: List[BugReport] = field(default_factory=list)

    def bug_signatures(self) -> set:
        return {bug.signature() for bug in self.bugs}


class SymbolicExecutor:
    """Explores every feasible path of a module's entry function."""

    def __init__(self, module: Module, entry: str = "main",
                 searcher: Union[str, Searcher] = "dfs",
                 solver: Optional[Solver] = None,
                 limits: Optional[SymexLimits] = None) -> None:
        self.module = module
        self.entry = module.get_function(entry)
        self.searcher = make_searcher(searcher) if isinstance(searcher, str) \
            else searcher
        self.solver = solver or Solver()
        self.limits = limits or SymexLimits()
        self.stats = SymexStats()
        self.report = SymexReport(stats=self.stats,
                                  solver_stats=self.solver.stats)
        self._globals: Dict[str, int] = {}
        self._input_variables: List[str] = []
        self._start_time = 0.0

    # --------------------------------------------------------------- setup
    def make_initial_state(self, num_input_bytes: int) -> ExecutionState:
        """Build the initial state: globals materialized, the entry function's
        ``(unsigned char *input, int len)`` parameters bound to a buffer of
        ``num_input_bytes`` symbolic bytes followed by a NUL terminator."""
        state = ExecutionState(
            rewrite_equalities=self.solver.config.rewrite_equalities,
            solver_stats=self.solver.stats)
        self._initialize_globals(state.memory)

        buffer_address = state.memory.allocate(num_input_bytes + 1,
                                               name="symbolic_input")
        symbolic_bytes = []
        self._input_variables = []
        for i in range(num_input_bytes):
            name = f"in_{i}"
            self._input_variables.append(name)
            symbolic_bytes.append(var(8, name))
        symbolic_bytes.append(const(8, 0))
        state.memory.store_symbolic_bytes(buffer_address, symbolic_bytes)

        frame = StackFrame(self.entry)
        frame.block = self.entry.entry_block
        arguments = self.entry.arguments
        if arguments:
            frame.bind(id(arguments[0]), const(POINTER_WIDTH, buffer_address))
        if len(arguments) > 1:
            arg_type = arguments[1].type
            width = arg_type.width if isinstance(arg_type, IntType) else 32
            frame.bind(id(arguments[1]), const(width, num_input_bytes))
        for extra in arguments[2:]:
            width = extra.type.width if isinstance(extra.type, IntType) \
                else POINTER_WIDTH
            frame.bind(id(extra), const(width, 0))
        state.push_frame(frame)
        return state

    def _initialize_globals(self, memory: SymbolicMemory) -> None:
        self._globals = {}
        for gv in self.module.globals.values():
            size = gv.value_type.size_in_bytes()
            address = memory.allocate(size, name=gv.name, writable=True)
            if isinstance(gv.initializer, ConstantInt):
                memory.store(address, const(8 * size, gv.initializer.value),
                             size)
            elif isinstance(gv.initializer, ConstantArray):
                memory.store_concrete_bytes(address,
                                            gv.initializer.as_bytes())
            obj = memory.object_at(address)
            if obj is not None:
                obj.writable = not gv.is_constant
            self._globals[gv.name] = address

    # ----------------------------------------------------------------- run
    def run(self, num_input_bytes: int) -> SymexReport:
        """Exhaustively explore the entry function for the given symbolic
        input size (subject to the configured limits)."""
        self._start_time = time.perf_counter()
        initial = self.make_initial_state(num_input_bytes)
        self.searcher.add(initial)
        while not self.searcher.empty():
            if self._out_of_budget():
                break
            state = self.searcher.pop()
            self._run_state(state)
            self.stats.max_live_states = max(self.stats.max_live_states,
                                             len(self.searcher) + 1)
        # Anything left in the searcher when the budget ran out is terminated.
        while not self.searcher.empty():
            state = self.searcher.pop()
            state.status = StateStatus.TERMINATED
            self.stats.paths_terminated += 1
        self.stats.wall_seconds = time.perf_counter() - self._start_time
        return self.report

    def _out_of_budget(self) -> bool:
        if self.stats.total_paths >= self.limits.max_paths:
            return True
        if self.stats.instructions_interpreted >= self.limits.max_instructions:
            self.stats.timed_out = True
            return True
        if self.stats.forks >= self.limits.max_forks:
            self.stats.timed_out = True
            return True
        if time.perf_counter() - self._start_time > self.limits.timeout_seconds:
            self.stats.timed_out = True
            return True
        return False

    # ------------------------------------------------------------- stepping
    def _run_state(self, state: ExecutionState) -> None:
        """Run ``state`` until it forks (pushing both sides), finishes, or
        hits an error."""
        while state.status is StateStatus.RUNNING:
            if self._out_of_budget():
                state.status = StateStatus.TERMINATED
                self.stats.paths_terminated += 1
                return
            frame = state.frame
            block = frame.block
            assert block is not None
            if frame.index == 0:
                self._evaluate_phis(state, block)
                frame.index = len(block.phis())
            if frame.index >= len(block.instructions):
                state.status = StateStatus.ERROR
                self._record_error(state, ProgramError(
                    ErrorKind.UNREACHABLE_EXECUTED,
                    f"block {block.name} fell through"))
                return
            inst = block.instructions[frame.index]
            frame.index += 1
            state.instructions_executed += 1
            self.stats.instructions_interpreted += 1
            try:
                forked = self._execute(state, inst)
            except ProgramError as error:
                error.function = frame.function.name
                error.block = block.name
                self._record_error(state, error)
                return
            if forked:
                return  # both sides were handed to the searcher
        if state.status is StateStatus.COMPLETED:
            self._record_completed(state)

    def _evaluate_phis(self, state: ExecutionState, block: BasicBlock) -> None:
        phis = block.phis()
        if not phis:
            return
        frame = state.frame
        assert frame.previous_block is not None or not phis
        results: Dict[int, Expr] = {}
        for phi in phis:
            assert frame.previous_block is not None
            value = phi.incoming_value_for(frame.previous_block)
            results[id(phi)] = self._eval(state, value)
            self.stats.instructions_interpreted += 1
        frame.bind_many(results)

    # ---------------------------------------------------------- evaluation
    def _eval(self, state: ExecutionState, value: Value) -> Expr:
        if isinstance(value, ConstantInt):
            ty = value.type
            assert isinstance(ty, IntType)
            return const(ty.width, value.value)
        if isinstance(value, UndefValue):
            width = value.type.size_in_bytes() * 8 \
                if not value.type.is_void else 32
            if isinstance(value.type, IntType):
                width = value.type.width
            return const(width, 0)
        if isinstance(value, GlobalVariable):
            return const(POINTER_WIDTH, self._globals[value.name])
        if isinstance(value, (Instruction, Argument)):
            return state.frame.values[id(value)]
        raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                           f"cannot evaluate {value!r}")

    @staticmethod
    def _width_of(ty: Type) -> int:
        if isinstance(ty, IntType):
            return ty.width
        if isinstance(ty, PointerType):
            return POINTER_WIDTH
        return 8 * ty.size_in_bytes()

    # ------------------------------------------------------------ execute
    def _execute(self, state: ExecutionState, inst: Instruction) -> bool:
        """Execute one instruction; returns True if the state forked (and the
        successors were already queued)."""
        if isinstance(inst, BinaryInst):
            self._execute_binary(state, inst)
            return False
        if isinstance(inst, ICmpInst):
            lhs = self._eval(state, inst.lhs)
            rhs = self._eval(state, inst.rhs)
            state.bind(inst, _icmp_expr(inst.predicate, lhs, rhs))
            return False
        if isinstance(inst, SelectInst):
            condition = self._eval(state, inst.condition)
            then = self._eval(state, inst.true_value)
            otherwise = self._eval(state, inst.false_value)
            state.bind(inst, ite(condition, then, otherwise))
            return False
        if isinstance(inst, CastInst):
            state.bind(inst, self._execute_cast(state, inst))
            return False
        if isinstance(inst, AllocaInst):
            size = inst.allocated_type.size_in_bytes()
            address = state.memory.allocate(size, name=inst.name or "alloca")
            state.bind(inst, const(POINTER_WIDTH, address))
            return False
        if isinstance(inst, LoadInst):
            size = inst.type.size_in_bytes()
            address = self._concretize_address(state, inst.pointer, size)
            loaded = state.memory.load(address, size)
            width = self._width_of(inst.type)
            if loaded.width > width:
                loaded = trunc(loaded, width)
            elif loaded.width < width:
                loaded = zext(loaded, width)
            state.bind(inst, loaded)
            return False
        if isinstance(inst, StoreInst):
            size = inst.value.type.size_in_bytes()
            address = self._concretize_address(state, inst.pointer, size)
            value = self._eval(state, inst.value)
            if value.width < 8 * size:
                value = zext(value, 8 * size)
            state.memory.store(address, value, size)
            return False
        if isinstance(inst, GEPInst):
            base = self._eval(state, inst.base)
            total = base
            for index in inst.indices:
                offset = self._eval(state, index)
                if offset.width < POINTER_WIDTH:
                    offset = sext(offset, POINTER_WIDTH)
                elif offset.width > POINTER_WIDTH:
                    offset = trunc(offset, POINTER_WIDTH)
                total = binary(ExprOp.ADD, total, offset)
            state.bind(inst, total)
            return False
        if isinstance(inst, CallInst):
            return self._execute_call(state, inst)
        if isinstance(inst, BranchInst):
            return self._execute_branch(state, inst)
        if isinstance(inst, SwitchInst):
            return self._execute_switch(state, inst)
        if isinstance(inst, ReturnInst):
            self._execute_return(state, inst)
            return False
        if isinstance(inst, UnreachableInst):
            raise ProgramError(ErrorKind.UNREACHABLE_EXECUTED, "")
        if isinstance(inst, PhiInst):
            # Phis are evaluated at block entry; reaching one here means the
            # index bookkeeping is off.
            raise ProgramError(ErrorKind.UNREACHABLE_EXECUTED,
                               "phi executed out of order")
        raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                           f"cannot execute {inst.opcode.value}")

    # ----------------------------------------------------------- operators
    def _execute_binary(self, state: ExecutionState, inst: BinaryInst) -> None:
        lhs = self._eval(state, inst.lhs)
        rhs = self._eval(state, inst.rhs)
        if inst.opcode in (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM):
            self._check_division(state, inst, rhs)
        state.bind(inst, binary(_BINARY_OPS[inst.opcode], lhs, rhs))

    def _check_division(self, state: ExecutionState, inst: BinaryInst,
                        divisor: Expr) -> None:
        if divisor.is_symbolic:
            divisor = state.rewrite(divisor)
        zero = const(divisor.width, 0)
        if divisor.is_constant:
            if divisor.value == 0:
                raise ProgramError(ErrorKind.DIVISION_BY_ZERO, "")
            return
        is_zero = binary(ExprOp.EQ, divisor, zero)
        can_zero, can_nonzero = self.solver.check_branch(
            state.relevant_constraints(is_zero), is_zero)
        if not can_zero:
            # Division is safe; the nonzero fact is implied by the path
            # condition, so there is nothing to record.
            return
        if not can_nonzero:
            # The divisor is zero on every continuation of this path.
            raise ProgramError(ErrorKind.DIVISION_BY_ZERO, "")
        # Fork an error path on which the divisor is zero.
        error_state = state.fork()
        self.stats.forks += 1
        self.stats.states_created += 1
        error_state.add_constraint(is_zero)
        error = ProgramError(ErrorKind.DIVISION_BY_ZERO, "",
                             state.frame.function.name,
                             state.frame.block.name
                             if state.frame.block else "")
        self._record_error(error_state, error)
        state.add_constraint(not_expr(is_zero))

    def _execute_cast(self, state: ExecutionState, inst: CastInst) -> Expr:
        value = self._eval(state, inst.value)
        target_width = self._width_of(inst.type)
        if inst.opcode is Opcode.ZEXT:
            return zext(value, target_width)
        if inst.opcode is Opcode.SEXT:
            return sext(value, target_width)
        if inst.opcode is Opcode.TRUNC:
            return trunc(value, target_width)
        if inst.opcode in (Opcode.BITCAST, Opcode.PTRTOINT, Opcode.INTTOPTR):
            if value.width < target_width:
                return zext(value, target_width)
            if value.width > target_width:
                return trunc(value, target_width)
            return value
        raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                           f"unknown cast {inst.opcode.value}")

    # ----------------------------------------------------------- memory
    def _concretize_address(self, state: ExecutionState, pointer: Value,
                            access_size: int = 1) -> int:
        """Return a concrete address for a pointer operand.

        For a symbolic address the executor first checks, KLEE-style, whether
        the address can fall outside the bounds of the object a feasible
        value points into; if so, an error path is forked and reported.  The
        continuing state is then constrained to one concrete in-bounds value.
        """
        address = self._eval(state, pointer)
        if address.is_symbolic:
            # An address pinned by an earlier concretization constraint
            # folds to that constant: no model query, no bounds re-check.
            address = state.rewrite(address)
        if address.is_constant:
            return address.value
        model = self.solver.get_model(
            state.relevant_constraints(address)) or {}
        concrete = address.evaluate({name: model.get(name, 0)
                                     for name in address.variables()})
        obj = state.memory.object_at(concrete)
        if obj is not None:
            low = const(address.width, obj.base)
            high = const(address.width, obj.base + obj.size - access_size)
            out_of_bounds = binary(
                ExprOp.OR,
                binary(ExprOp.ULT, address, low),
                binary(ExprOp.ULT, high, address))
            if self.solver.may_be_true(
                    state.relevant_constraints(out_of_bounds), out_of_bounds):
                error_state = state.fork()
                self.stats.forks += 1
                self.stats.states_created += 1
                error_state.add_constraint(out_of_bounds)
                error = ProgramError(
                    ErrorKind.OUT_OF_BOUNDS,
                    f"symbolic address may leave object '{obj.name}'",
                    state.frame.function.name,
                    state.frame.block.name if state.frame.block else "")
                self._record_error(error_state, error)
                state.add_constraint(not_expr(out_of_bounds))
        state.add_constraint(binary(ExprOp.EQ, address,
                                    const(address.width, concrete)))
        return concrete

    # ----------------------------------------------------------- calls
    def _execute_call(self, state: ExecutionState, inst: CallInst) -> bool:
        callee = inst.callee
        if not isinstance(callee, Function):
            raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                               "indirect calls are not supported")
        if callee.is_declaration:
            self._execute_intrinsic(state, inst, callee)
            return False
        if len(state.stack) >= self.limits.max_call_depth:
            raise ProgramError(ErrorKind.STACK_OVERFLOW, callee.name)
        frame = StackFrame(callee, call_site=inst)
        frame.block = callee.entry_block
        for argument, actual in zip(callee.arguments, inst.args):
            frame.bind(id(argument), self._eval(state, actual))
        state.push_frame(frame)
        return False

    def _execute_intrinsic(self, state: ExecutionState, inst: CallInst,
                           callee: Function) -> None:
        name = callee.name
        if name in ("__overify_check_fail", "abort", "__assert_fail"):
            kind = ErrorKind.CHECK_FAILURE if name != "__assert_fail" \
                else ErrorKind.ASSERTION_FAILURE
            raise ProgramError(kind, name)
        if name in ("klee_silent_exit", "exit"):
            state.status = StateStatus.COMPLETED
            state.return_value = const(32, 0)
            return
        # Unknown external functions return an unconstrained fresh symbol
        # (KLEE would complain; we model them as havoc).
        if not inst.type.is_void:
            width = self._width_of(inst.type)
            fresh = var(width, f"ext_{name}_{state.instructions_executed}")
            state.bind(inst, fresh)

    def _execute_return(self, state: ExecutionState, inst: ReturnInst) -> None:
        value = self._eval(state, inst.value) if inst.value is not None else None
        finished_frame = state.pop_frame()
        if not state.stack:
            state.status = StateStatus.COMPLETED
            state.return_value = value
            return
        call_site = finished_frame.call_site
        if call_site is not None and not call_site.type.is_void and \
                value is not None:
            state.frame.bind(id(call_site), value)

    # ----------------------------------------------------------- branches
    def _execute_branch(self, state: ExecutionState, inst: BranchInst) -> bool:
        if not inst.is_conditional:
            state.jump_to(inst.true_target)
            return False
        self.stats.branches_encountered += 1
        condition = self._eval(state, inst.condition)
        if condition.is_symbolic:
            # A condition the recorded equalities already decide folds to a
            # constant here and never reaches the solver.
            condition = state.rewrite(condition)
        if condition.is_constant:
            state.jump_to(inst.true_target if condition.value
                          else inst.false_target)
            return False
        # Only the constraint groups sharing variables with the condition can
        # affect the branch; disjoint groups are satisfiable by the state
        # invariant and drop out of the query.
        can_true, can_false = self.solver.check_branch(
            state.relevant_constraints(condition), condition)
        if can_true and not can_false:
            state.add_constraint(condition)
            state.jump_to(inst.true_target)
            return False
        if can_false and not can_true:
            state.add_constraint(not_expr(condition))
            state.jump_to(inst.false_target)
            return False
        if not can_true and not can_false:
            # The path constraints are themselves unsatisfiable; kill silently.
            state.status = StateStatus.TERMINATED
            self.stats.paths_terminated += 1
            return False
        # Fork: explore both directions.
        self.stats.forks += 1
        self.stats.states_created += 1
        false_state = state.fork()
        false_state.add_constraint(not_expr(condition))
        false_state.jump_to(inst.false_target)
        false_state.depth += 1
        state.add_constraint(condition)
        state.jump_to(inst.true_target)
        state.depth += 1
        self.searcher.add(false_state)
        self.searcher.add(state)
        return True

    def _execute_switch(self, state: ExecutionState, inst: SwitchInst) -> bool:
        self.stats.branches_encountered += 1
        value = self._eval(state, inst.value)
        if value.is_symbolic:
            value = state.rewrite(value)
        if value.is_constant:
            for case_const, target in inst.cases():
                if isinstance(case_const, ConstantInt) and \
                        case_const.value == value.value:
                    state.jump_to(target)
                    return False
            state.jump_to(inst.default)
            return False
        relevant = state.relevant_constraints(value)
        feasible: List[Tuple[Expr, BasicBlock]] = []
        default_constraint: List[Expr] = []
        for case_const, target in inst.cases():
            assert isinstance(case_const, ConstantInt)
            equals = binary(ExprOp.EQ, value,
                            const(value.width, case_const.value))
            default_constraint.append(not_expr(equals))
            if self.solver.may_be_true(relevant, equals):
                feasible.append((equals, target))
        default_feasible = self.solver.is_satisfiable(
            relevant + default_constraint)
        targets: List[Tuple[List[Expr], BasicBlock]] = [
            ([expr], target) for expr, target in feasible]
        if default_feasible:
            targets.append((default_constraint, inst.default))
        if not targets:
            state.status = StateStatus.TERMINATED
            self.stats.paths_terminated += 1
            return False
        # The first feasible target continues on this state; the rest fork.
        for extra_constraints, target in targets[1:]:
            forked = state.fork()
            self.stats.forks += 1
            self.stats.states_created += 1
            for constraint in extra_constraints:
                forked.add_constraint(constraint)
            forked.jump_to(target)
            self.searcher.add(forked)
        first_constraints, first_target = targets[0]
        for constraint in first_constraints:
            state.add_constraint(constraint)
        state.jump_to(first_target)
        if len(targets) > 1:
            self.searcher.add(state)
            return True
        return False

    # ----------------------------------------------------------- reporting
    def _test_input_for(self, state: ExecutionState) -> Optional[bytes]:
        """A concrete input satisfying the state's path constraints."""
        if not self._input_variables:
            return b""
        model = self.solver.get_model(state.constraints)
        if model is None:
            return None
        return bytes(model.get(name, 0) & 0xFF
                     for name in self._input_variables)

    def _record_completed(self, state: ExecutionState) -> None:
        self.stats.paths_completed += 1
        return_value: Optional[int] = None
        if state.return_value is not None and state.return_value.is_constant:
            return_value = state.return_value.value
        self.report.paths.append(PathRecord(
            state_id=state.state_id,
            status=StateStatus.COMPLETED,
            constraint_count=len(state.constraints),
            instructions=state.instructions_executed,
            test_input=self._test_input_for(state),
            return_value=return_value,
        ))

    def _record_error(self, state: ExecutionState, error: ProgramError) -> None:
        state.status = StateStatus.ERROR
        state.error = error
        self.stats.paths_errored += 1
        test_input = self._test_input_for(state)
        self.report.paths.append(PathRecord(
            state_id=state.state_id,
            status=StateStatus.ERROR,
            constraint_count=len(state.constraints),
            instructions=state.instructions_executed,
            test_input=test_input,
        ))
        self.report.bugs.append(BugReport(
            kind=error.kind,
            message=error.message,
            function=error.function,
            block=error.block,
            test_input=test_input,
        ))


def explore(module: Module, num_input_bytes: int, entry: str = "main",
            searcher: str = "dfs", limits: Optional[SymexLimits] = None,
            solver: Optional[Solver] = None) -> SymexReport:
    """Convenience wrapper: symbolically execute ``entry`` with
    ``num_input_bytes`` of symbolic input and return the report."""
    executor = SymbolicExecutor(module, entry=entry, searcher=searcher,
                                limits=limits, solver=solver)
    return executor.run(num_input_bytes)
