"""The symbolic executor: a KLEE-style path-exploring interpreter for the
repro IR.

The executor treats designated input bytes as symbolic, interprets the
program one path at a time, forks at branches whose condition can go both
ways under the current path constraints, and reports every completed path
and every detected bug together with a concrete test input that triggers it.

Its performance characteristics deliberately mirror the paper's §4
description: "The performance of symbolic execution tools is determined by
the number of paths to explore and by the complexity of input-dependent
branch conditions."  Both quantities are measured and exposed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..faults import EngineError, WorkerCrash, site as _fault_site
from ..interp.errors import ErrorKind, ProgramError
from ..ir import (
    AllocaInst, Argument, BasicBlock, BinaryInst, BranchInst, CallInst,
    CastInst, ConstantArray, ConstantInt, Function, GEPInst, GlobalVariable,
    ICmpInst, ICmpPredicate, Instruction, IntType, LoadInst, Module, Opcode,
    PhiInst, PointerType, ReturnInst, SelectInst, StoreInst, SwitchInst,
    Type, UndefValue, UnreachableInst, Value,
)
from .expr import Expr, ExprOp
from .facts import decide_with_facts, unary_facts
from .memory import SymbolicMemory
from .searcher import Searcher, make_searcher
from .simplify import binary, const, ite, not_expr, sext, trunc, var, zext, bitwise_not
from .solver import Solver, SolverStats
from .state import ExecutionState, StackFrame, StateStatus

POINTER_WIDTH = 64

#: Fault site hit once per budget stride of the stepping loop
#: (``docs/robustness.md``).  Its faults — like any engine/solver
#: exception on a path — are contained as ``engine-error`` path outcomes.
_ENGINE_STEP = _fault_site("engine.step", EngineError)

_BINARY_OPS = {
    Opcode.ADD: ExprOp.ADD, Opcode.SUB: ExprOp.SUB, Opcode.MUL: ExprOp.MUL,
    Opcode.UDIV: ExprOp.UDIV, Opcode.SDIV: ExprOp.SDIV,
    Opcode.UREM: ExprOp.UREM, Opcode.SREM: ExprOp.SREM,
    Opcode.AND: ExprOp.AND, Opcode.OR: ExprOp.OR, Opcode.XOR: ExprOp.XOR,
    Opcode.SHL: ExprOp.SHL, Opcode.LSHR: ExprOp.LSHR, Opcode.ASHR: ExprOp.ASHR,
}


def _icmp_expr(predicate: ICmpPredicate, lhs: Expr, rhs: Expr) -> Expr:
    if predicate is ICmpPredicate.EQ:
        return binary(ExprOp.EQ, lhs, rhs)
    if predicate is ICmpPredicate.NE:
        return binary(ExprOp.NE, lhs, rhs)
    if predicate is ICmpPredicate.ULT:
        return binary(ExprOp.ULT, lhs, rhs)
    if predicate is ICmpPredicate.ULE:
        return binary(ExprOp.ULE, lhs, rhs)
    if predicate is ICmpPredicate.UGT:
        return binary(ExprOp.ULT, rhs, lhs)
    if predicate is ICmpPredicate.UGE:
        return binary(ExprOp.ULE, rhs, lhs)
    if predicate is ICmpPredicate.SLT:
        return binary(ExprOp.SLT, lhs, rhs)
    if predicate is ICmpPredicate.SLE:
        return binary(ExprOp.SLE, lhs, rhs)
    if predicate is ICmpPredicate.SGT:
        return binary(ExprOp.SLT, rhs, lhs)
    if predicate is ICmpPredicate.SGE:
        return binary(ExprOp.SLE, rhs, lhs)
    raise ValueError(f"unknown predicate {predicate}")


@dataclass
class SymexLimits:
    """Resource limits for one exploration run."""

    max_paths: int = 100_000
    max_instructions: int = 5_000_000
    max_forks: int = 100_000
    timeout_seconds: float = 3600.0
    max_call_depth: int = 128


#: Instructions executed between budget checks inside :meth:`_run_state`.
#: Budgets are approximate by nature (the paper's is a one-hour timeout);
#: checking on a stride keeps the per-instruction loop free of clock reads,
#: at the cost of overshooting a limit by at most the stride.
BUDGET_CHECK_STRIDE = 16


class ExplorationBudget:
    """The resource budget of one exploration run, aggregated over every
    worker exploring it.

    Each worker accumulates into its own :class:`SymexStats` (lock-free —
    no object is written by two threads); the budget reads across all of
    them, so the limits bound the *run*, not each worker.  Reads of other
    workers' counters may lag by an increment or two, which only shifts
    the stopping point by a few instructions.
    """

    def __init__(self, limits: SymexLimits,
                 stats_views: Sequence[SymexStats]) -> None:
        self.limits = limits
        self._views = list(stats_views)
        self.start_time = time.perf_counter()

    def exhausted(self) -> Optional[str]:
        """The first exceeded limit ("paths", "instructions", "forks",
        "timeout"), or None while in budget."""
        paths = instructions = forks = 0
        for stats in self._views:
            paths += stats.paths_completed + stats.paths_errored \
                + stats.engine_errors
            instructions += stats.instructions_interpreted
            forks += stats.forks
        limits = self.limits
        if paths >= limits.max_paths:
            return "paths"
        if instructions >= limits.max_instructions:
            return "instructions"
        if forks >= limits.max_forks:
            return "forks"
        if time.perf_counter() - self.start_time > limits.timeout_seconds:
            return "timeout"
        return None


@dataclass
class BugReport:
    """A detected bug plus a concrete input that triggers it."""

    kind: ErrorKind
    message: str
    function: str
    block: str
    test_input: Optional[bytes] = None

    def signature(self) -> Tuple[str, str, str]:
        """A location-based identity used for cross-build bug comparison."""
        return (self.kind.value, self.function, self.block)


@dataclass
class PathRecord:
    """One fully explored path."""

    state_id: int
    status: StateStatus
    constraint_count: int
    instructions: int
    test_input: Optional[bytes] = None
    return_value: Optional[int] = None


@dataclass
class SymexStats:
    """Aggregate statistics of one exploration run (Table 1's columns)."""

    paths_completed: int = 0
    paths_errored: int = 0
    paths_terminated: int = 0
    instructions_interpreted: int = 0
    #: Of ``instructions_interpreted``, how many were re-executed while
    #: replaying a fork-decision trace (process-mode workers reconstruct
    #: their subtree roots by replay; the prefix work is real but already
    #: counted by the run that recorded the trace).
    instructions_replayed: int = 0
    branches_encountered: int = 0
    forks: int = 0
    states_created: int = 1
    max_live_states: int = 0
    wall_seconds: float = 0.0
    timed_out: bool = False
    #: Paths abandoned because the *engine* (not the program under test)
    #: failed on them — a solver/interpreter exception contained by
    #: :meth:`SymbolicExecutor._run_state`.  Not part of ``total_paths``:
    #: an engine-error path was neither completed nor found buggy.
    engine_errors: int = 0
    #: Which budget limit ended the run ("paths", "instructions", "forks",
    #: "timeout", or "worker-loss"); empty for a complete exploration.
    termination_reason: str = ""

    @property
    def total_paths(self) -> int:
        return self.paths_completed + self.paths_errored

    def merge(self, other: "SymexStats") -> None:
        """Fold a worker's counters into this aggregate: sums for the
        additive counters, max for the gauges, or for ``timed_out``.
        ``wall_seconds`` is taken as the max — workers run concurrently,
        so their wall clocks overlap rather than add."""
        self.paths_completed += other.paths_completed
        self.paths_errored += other.paths_errored
        self.paths_terminated += other.paths_terminated
        self.instructions_interpreted += other.instructions_interpreted
        self.instructions_replayed += other.instructions_replayed
        self.branches_encountered += other.branches_encountered
        self.forks += other.forks
        self.states_created += other.states_created
        self.max_live_states = max(self.max_live_states,
                                   other.max_live_states)
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        self.timed_out |= other.timed_out
        self.engine_errors += other.engine_errors
        if not self.termination_reason:
            self.termination_reason = other.termination_reason


@dataclass
class SymexReport:
    """Everything one run of the executor produces."""

    stats: SymexStats
    solver_stats: SolverStats
    paths: List[PathRecord] = field(default_factory=list)
    bugs: List[BugReport] = field(default_factory=list)
    #: One line per contained engine failure (fault site + cause); empty
    #: on a healthy run.  Merged across workers as a sorted set, so the
    #: content carries no state ids or other schedule-dependent data.
    diagnostics: List[str] = field(default_factory=list)

    def bug_signatures(self) -> set:
        return {bug.signature() for bug in self.bugs}


class SymbolicExecutor:
    """Explores every feasible path of a module's entry function.

    The stepping core (:meth:`_run_state` and everything below it) is
    re-entrant and worker-safe: it touches only the state being run and
    this executor's own ``stats``/``report``/``solver``, plus the
    read-only module/globals and the (thread-safe, injectable) searcher.
    The parallel executor builds one engine per worker, sharing the
    module, globals and frontier while giving each worker private stats,
    report, and a solver whose caches are lock-striped
    (:class:`~repro.symex.parallel.ParallelExecutor`).
    """

    def __init__(self, module: Module, entry: str = "main",
                 searcher: Union[str, Searcher] = "dfs",
                 solver: Optional[Solver] = None,
                 limits: Optional[SymexLimits] = None,
                 stats: Optional[SymexStats] = None,
                 budget: Optional[ExplorationBudget] = None,
                 globals_map: Optional[Dict[str, int]] = None,
                 input_variables: Optional[List[str]] = None,
                 record_traces: bool = False,
                 state_sink: Optional[Callable[[ExecutionState], None]]
                 = None,
                 fact_pruning: bool = False) -> None:
        self.module = module
        self.entry = module.get_function(entry)
        self.searcher = make_searcher(searcher) if isinstance(searcher, str) \
            else searcher
        self.solver = solver or Solver()
        self.limits = limits or SymexLimits()
        self.stats = stats if stats is not None else SymexStats()
        self.report = SymexReport(stats=self.stats,
                                  solver_stats=self.solver.stats)
        self._globals: Dict[str, int] = globals_map if globals_map is not None \
            else {}
        self._input_variables: List[str] = input_variables \
            if input_variables is not None else []
        self._budget = budget
        #: Remaining fork decisions while reconstructing a traced state
        #: (process-mode replay); empty outside replay.
        self._replay: List[int] = []
        #: Record fork-decision traces on states (an O(depth) tuple copy
        #: per fork) — only the process-mode bootstrap needs them.
        self._record_traces = record_traces
        #: Optional observer handed every finished state (completed or
        #: errored, never engine-error states, which are mid-flight
        #: wreckage).  The relcheck product driver uses this to capture
        #: each path's constraints and symbolic return value — data the
        #: :class:`PathRecord` deliberately does not carry.  Called on
        #: whichever worker thread finished the path; the callback owns
        #: its own synchronization.
        self._state_sink = state_sink
        #: Refute "maybe satisfiable" fork conditions against the path's
        #: unary facts before forking (:mod:`repro.symex.facts`).  Off by
        #: default to keep the canonical exploration semantics; the
        #: relcheck product driver turns it on because phantom paths are
        #: pure waste there — every verdict is feasibility-confirmed
        #: anyway.
        self._fact_pruning = fact_pruning

    def _fact_decide(self, state: ExecutionState,
                     condition: Expr) -> Optional[bool]:
        """Cheap exact decision of ``condition`` from the path's unary
        facts; None when they leave it open."""
        facts = unary_facts(state.constraints)
        if not facts:
            return None
        return decide_with_facts(condition, facts, self.solver, {})

    # --------------------------------------------------------------- setup
    def make_initial_state(self, num_input_bytes: int) -> ExecutionState:
        """Build the initial state: globals materialized, the entry function's
        ``(unsigned char *input, int len)`` parameters bound to a buffer of
        ``num_input_bytes`` symbolic bytes followed by a NUL terminator.

        Also (re)initializes this executor's globals map and input-variable
        list; worker engines receive those read-only from the bootstrap
        engine instead of calling this."""
        state = ExecutionState(
            rewrite_equalities=self.solver.config.rewrite_equalities,
            solver_stats=self.solver.stats)
        self._initialize_globals(state.memory)

        buffer_address = state.memory.allocate(num_input_bytes + 1,
                                               name="symbolic_input")
        symbolic_bytes = []
        self._input_variables = []
        for i in range(num_input_bytes):
            name = f"in_{i}"
            self._input_variables.append(name)
            symbolic_bytes.append(var(8, name))
        symbolic_bytes.append(const(8, 0))
        state.memory.store_symbolic_bytes(buffer_address, symbolic_bytes)

        frame = StackFrame(self.entry)
        frame.block = self.entry.entry_block
        arguments = self.entry.arguments
        if arguments:
            frame.bind(id(arguments[0]), const(POINTER_WIDTH, buffer_address))
        if len(arguments) > 1:
            arg_type = arguments[1].type
            width = arg_type.width if isinstance(arg_type, IntType) else 32
            frame.bind(id(arguments[1]), const(width, num_input_bytes))
        for extra in arguments[2:]:
            width = extra.type.width if isinstance(extra.type, IntType) \
                else POINTER_WIDTH
            frame.bind(id(extra), const(width, 0))
        state.push_frame(frame)
        return state

    def _initialize_globals(self, memory: SymbolicMemory) -> None:
        self._globals = {}
        for gv in self.module.globals.values():
            size = gv.value_type.size_in_bytes()
            address = memory.allocate(size, name=gv.name, writable=True)
            if isinstance(gv.initializer, ConstantInt):
                memory.store(address, const(8 * size, gv.initializer.value),
                             size)
            elif isinstance(gv.initializer, ConstantArray):
                memory.store_concrete_bytes(address,
                                            gv.initializer.as_bytes())
            obj = memory.object_at(address)
            if obj is not None:
                obj.writable = not gv.is_constant
            self._globals[gv.name] = address

    # ----------------------------------------------------------------- run
    def run(self, num_input_bytes: int) -> SymexReport:
        """Exhaustively explore the entry function for the given symbolic
        input size (subject to the configured limits)."""
        self._budget = ExplorationBudget(self.limits, [self.stats])
        return self._explore_from(self.make_initial_state(num_input_bytes))

    def run_seeded(self, state: ExecutionState) -> SymexReport:
        """Explore from a caller-prepared initial state.

        The caller builds the state with :meth:`make_initial_state` and
        may seed it with extra path constraints (``state.add_constraint``)
        before handing it over — the relcheck product driver replays the
        optimized module under another module's path condition this way,
        so branches the seeded condition decides never fork."""
        self._budget = ExplorationBudget(self.limits, [self.stats])
        return self._explore_from(state)

    def _explore_from(self, initial: ExecutionState) -> SymexReport:
        self.searcher.add(initial)
        while not self.searcher.empty():
            if self._out_of_budget():
                break
            state = self.searcher.pop()
            self._run_state(state)
            self.stats.max_live_states = max(self.stats.max_live_states,
                                             len(self.searcher) + 1)
        # Anything left in the searcher when the budget ran out is terminated.
        while not self.searcher.empty():
            state = self.searcher.pop()
            state.status = StateStatus.TERMINATED
            self.stats.paths_terminated += 1
        self.stats.wall_seconds = time.perf_counter() - self._budget.start_time
        return self.report

    def replay_run(self, num_input_bytes: int,
                   traces: Sequence[Sequence[int]]) -> SymexReport:
        """Process-mode worker entry: reconstruct each traced state by
        replaying its fork decisions from a fresh initial state, then
        explore its subtree exhaustively.

        Replay follows the recorded side of every queueing fork without
        queueing the sibling (it is some other trace's prefix) and without
        re-recording error paths along the prefix (the recording run owns
        them), so the union of all workers' subtrees covers each path
        exactly once."""
        self._budget = ExplorationBudget(self.limits, [self.stats])
        for consumed, trace in enumerate(traces):
            if self._out_of_budget():
                # Like frontier states left behind on budget exhaustion,
                # every un-replayed trace is a path that will not be
                # explored: account for each as a terminated path.
                self.stats.paths_terminated += len(traces) - consumed
                break
            state = self.make_initial_state(num_input_bytes)
            self._replay = list(trace)
            self._run_state(state)
            self._replay = []
            while not self.searcher.empty():
                if self._out_of_budget():
                    break
                self._run_state(self.searcher.pop())
                self.stats.max_live_states = max(self.stats.max_live_states,
                                                 len(self.searcher) + 1)
        while not self.searcher.empty():
            state = self.searcher.pop()
            state.status = StateStatus.TERMINATED
            self.stats.paths_terminated += 1
        self.stats.wall_seconds = time.perf_counter() - self._budget.start_time
        return self.report

    def _out_of_budget(self) -> bool:
        reason = self._budget.exhausted()
        if reason is None:
            return False
        if not self.stats.termination_reason:
            self.stats.termination_reason = reason
        if reason != "paths":
            self.stats.timed_out = True
        return True

    # ------------------------------------------------------------- stepping
    def _run_state(self, state: ExecutionState) -> None:
        """Run ``state`` until it forks, finishes, or hits an error —
        containing engine failures to the path they happened on.

        An exception out of the stepping core (a solver or interpreter
        defect, or an injected ``engine.step``/``solver.check`` fault) is
        an *engine* failure, not a program bug: the path is recorded as an
        ``engine-error`` outcome with a one-line diagnosis and exploration
        continues with the next state.  :class:`~repro.faults.WorkerCrash`
        is not contained — the parallel executor's retry-once recovery
        owns it — and neither are KeyboardInterrupt/SystemExit."""
        try:
            self._step_state(state)
        except (KeyboardInterrupt, SystemExit, WorkerCrash):
            raise
        except Exception as exc:
            self._record_engine_error(state, exc)

    def _record_engine_error(self, state: ExecutionState,
                             exc: Exception) -> None:
        state.status = StateStatus.ENGINE_ERROR
        self.stats.engine_errors += 1
        site = getattr(exc, "site", None) or "engine"
        cause = f"{type(exc).__name__}: {exc}".splitlines()[0]
        self.report.diagnostics.append(f"engine-error at {site}: {cause}")
        # No test input: the path died inside the engine, so the solver
        # may be the very thing that failed — don't query it again here.
        self.report.paths.append(PathRecord(
            state_id=state.state_id,
            status=StateStatus.ENGINE_ERROR,
            constraint_count=len(state.constraints),
            instructions=state.instructions_executed,
        ))

    def _step_state(self, state: ExecutionState) -> None:
        """The stepping core: run ``state`` until it forks (pushing both
        sides), finishes, or hits an error."""
        # Every caller checks the budget right before handing us a state,
        # so the first in-loop check waits a full stride.
        budget_countdown = BUDGET_CHECK_STRIDE
        while state.status is StateStatus.RUNNING:
            budget_countdown -= 1
            if budget_countdown <= 0:
                budget_countdown = BUDGET_CHECK_STRIDE
                if _ENGINE_STEP.armed:
                    _ENGINE_STEP.fire()
                if self._out_of_budget():
                    state.status = StateStatus.TERMINATED
                    self.stats.paths_terminated += 1
                    return
            frame = state.frame
            block = frame.block
            assert block is not None
            if frame.index == 0:
                self._evaluate_phis(state, block)
                frame.index = len(block.phis())
            if frame.index >= len(block.instructions):
                state.status = StateStatus.ERROR
                self._record_error(state, ProgramError(
                    ErrorKind.UNREACHABLE_EXECUTED,
                    f"block {block.name} fell through"))
                return
            inst = block.instructions[frame.index]
            frame.index += 1
            state.instructions_executed += 1
            self.stats.instructions_interpreted += 1
            try:
                forked = self._execute(state, inst)
            except ProgramError as error:
                error.function = frame.function.name
                error.block = block.name
                self._record_error(state, error)
                return
            if forked:
                return  # both sides were handed to the searcher
        if state.status is StateStatus.COMPLETED:
            self._record_completed(state)

    def _evaluate_phis(self, state: ExecutionState, block: BasicBlock) -> None:
        phis = block.phis()
        if not phis:
            return
        frame = state.frame
        assert frame.previous_block is not None or not phis
        results: Dict[int, Expr] = {}
        for phi in phis:
            assert frame.previous_block is not None
            value = phi.incoming_value_for(frame.previous_block)
            results[id(phi)] = self._eval(state, value)
            self.stats.instructions_interpreted += 1
        frame.bind_many(results)

    # ---------------------------------------------------------- evaluation
    def _eval(self, state: ExecutionState, value: Value) -> Expr:
        # Fast path: by far most operands are SSA values already bound in
        # the current frame.  Ids of live objects are unique, so a
        # constant's id can never alias a binding key.
        expr = state.stack[-1].values.get(id(value))
        if expr is not None:
            return expr
        if isinstance(value, ConstantInt):
            ty = value.type
            assert isinstance(ty, IntType)
            return const(ty.width, value.value)
        if isinstance(value, UndefValue):
            width = value.type.size_in_bytes() * 8 \
                if not value.type.is_void else 32
            if isinstance(value.type, IntType):
                width = value.type.width
            return const(width, 0)
        if isinstance(value, GlobalVariable):
            return const(POINTER_WIDTH, self._globals[value.name])
        if isinstance(value, (Instruction, Argument)):
            return state.frame.values[id(value)]
        raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                           f"cannot evaluate {value!r}")

    @staticmethod
    def _width_of(ty: Type) -> int:
        if isinstance(ty, IntType):
            return ty.width
        if isinstance(ty, PointerType):
            return POINTER_WIDTH
        return 8 * ty.size_in_bytes()

    # ------------------------------------------------------------ execute
    def _execute(self, state: ExecutionState, inst: Instruction) -> bool:
        """Execute one instruction; returns True if the state forked (and the
        successors were already queued).

        Dispatch is one dict lookup on the concrete instruction class
        (built once at class-definition time) instead of an isinstance
        chain — this is the hottest call in the interpreter loop."""
        handler = self._DISPATCH.get(type(inst))
        if handler is None:
            raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                               f"cannot execute {inst.opcode.value}")
        return handler(self, state, inst) is True

    def _execute_icmp(self, state: ExecutionState, inst: ICmpInst) -> None:
        lhs = self._eval(state, inst.lhs)
        rhs = self._eval(state, inst.rhs)
        state.bind(inst, _icmp_expr(inst.predicate, lhs, rhs))

    def _execute_select(self, state: ExecutionState,
                        inst: SelectInst) -> None:
        condition = self._eval(state, inst.condition)
        then = self._eval(state, inst.true_value)
        otherwise = self._eval(state, inst.false_value)
        state.bind(inst, ite(condition, then, otherwise))

    def _execute_cast_inst(self, state: ExecutionState,
                           inst: CastInst) -> None:
        state.bind(inst, self._execute_cast(state, inst))

    def _execute_alloca(self, state: ExecutionState,
                        inst: AllocaInst) -> None:
        size = inst.allocated_type.size_in_bytes()
        address = state.memory.allocate(size, name=inst.name or "alloca")
        state.bind(inst, const(POINTER_WIDTH, address))

    def _execute_load(self, state: ExecutionState, inst: LoadInst) -> None:
        size = inst.type.size_in_bytes()
        address = self._concretize_address(state, inst.pointer, size)
        loaded = state.memory.load(address, size)
        width = self._width_of(inst.type)
        if loaded.width > width:
            loaded = trunc(loaded, width)
        elif loaded.width < width:
            loaded = zext(loaded, width)
        state.bind(inst, loaded)

    def _execute_store(self, state: ExecutionState, inst: StoreInst) -> None:
        size = inst.value.type.size_in_bytes()
        address = self._concretize_address(state, inst.pointer, size)
        value = self._eval(state, inst.value)
        if value.width < 8 * size:
            value = zext(value, 8 * size)
        state.memory.store(address, value, size)

    def _execute_gep(self, state: ExecutionState, inst: GEPInst) -> None:
        base = self._eval(state, inst.base)
        total = base
        for index in inst.indices:
            offset = self._eval(state, index)
            if offset.width < POINTER_WIDTH:
                offset = sext(offset, POINTER_WIDTH)
            elif offset.width > POINTER_WIDTH:
                offset = trunc(offset, POINTER_WIDTH)
            total = binary(ExprOp.ADD, total, offset)
        state.bind(inst, total)

    def _execute_unreachable(self, state: ExecutionState,
                             inst: UnreachableInst) -> None:
        raise ProgramError(ErrorKind.UNREACHABLE_EXECUTED, "")

    def _execute_phi_misplaced(self, state: ExecutionState,
                               inst: PhiInst) -> None:
        # Phis are evaluated at block entry; reaching one here means the
        # index bookkeeping is off.
        raise ProgramError(ErrorKind.UNREACHABLE_EXECUTED,
                           "phi executed out of order")

    # ----------------------------------------------------------- operators
    def _execute_binary(self, state: ExecutionState, inst: BinaryInst) -> None:
        lhs = self._eval(state, inst.lhs)
        rhs = self._eval(state, inst.rhs)
        if inst.opcode in (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM):
            self._check_division(state, inst, rhs)
        state.bind(inst, binary(_BINARY_OPS[inst.opcode], lhs, rhs))

    def _check_division(self, state: ExecutionState, inst: BinaryInst,
                        divisor: Expr) -> None:
        if divisor.is_symbolic:
            divisor = state.rewrite(divisor)
        zero = const(divisor.width, 0)
        if divisor.is_constant:
            if divisor.value == 0:
                raise ProgramError(ErrorKind.DIVISION_BY_ZERO, "")
            return
        is_zero = binary(ExprOp.EQ, divisor, zero)
        decided = self._fact_decide(state, is_zero) \
            if self._fact_pruning else None
        if decided is not None:
            can_zero, can_nonzero = decided, not decided
        else:
            varfree, groups = state.relevant_partition(is_zero)
            can_zero, can_nonzero = self.solver.check_branch_partition(
                varfree, groups, is_zero)
        if not can_zero:
            # Division is safe; the nonzero fact is implied by the path
            # condition, so there is nothing to record.
            return
        if not can_nonzero:
            # The divisor is zero on every continuation of this path.
            raise ProgramError(ErrorKind.DIVISION_BY_ZERO, "")
        if self._replay:
            # The error path was recorded when this prefix was first
            # explored; replay only re-establishes the surviving side.
            state.add_constraint(not_expr(is_zero))
            return
        # Fork an error path on which the divisor is zero.
        error_state = state.fork()
        self.stats.forks += 1
        self.stats.states_created += 1
        error_state.add_constraint(is_zero)
        error = ProgramError(ErrorKind.DIVISION_BY_ZERO, "",
                             state.frame.function.name,
                             state.frame.block.name
                             if state.frame.block else "")
        self._record_error(error_state, error)
        state.add_constraint(not_expr(is_zero))

    def _execute_cast(self, state: ExecutionState, inst: CastInst) -> Expr:
        value = self._eval(state, inst.value)
        target_width = self._width_of(inst.type)
        if inst.opcode is Opcode.ZEXT:
            return zext(value, target_width)
        if inst.opcode is Opcode.SEXT:
            return sext(value, target_width)
        if inst.opcode is Opcode.TRUNC:
            return trunc(value, target_width)
        if inst.opcode in (Opcode.BITCAST, Opcode.PTRTOINT, Opcode.INTTOPTR):
            if value.width < target_width:
                return zext(value, target_width)
            if value.width > target_width:
                return trunc(value, target_width)
            return value
        raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                           f"unknown cast {inst.opcode.value}")

    # ----------------------------------------------------------- memory
    def _concretize_address(self, state: ExecutionState, pointer: Value,
                            access_size: int = 1) -> int:
        """Return a concrete address for a pointer operand.

        For a symbolic address the executor first checks, KLEE-style, whether
        the address can fall outside the bounds of the object a feasible
        value points into; if so, an error path is forked and reported.  The
        continuing state is then constrained to one concrete in-bounds value.
        """
        address = self._eval(state, pointer)
        if address.is_symbolic:
            # An address pinned by an earlier concretization constraint
            # folds to that constant: no model query, no bounds re-check.
            address = state.rewrite(address)
        if address.is_constant:
            return address.value
        # The chosen model *becomes path structure* (the state is pinned to
        # this concrete address), so it must not depend on what other
        # queries happen to have cached: concretization_model is a pure
        # function of the query, keeping exploration identical across
        # worker counts and schedules.
        model = self.solver.concretization_model(
            *state.relevant_partition(address)) or {}
        concrete = address.evaluate({name: model.get(name, 0)
                                     for name in address.variables()})
        obj = state.memory.object_at(concrete)
        if obj is not None:
            low = const(address.width, obj.base)
            high = const(address.width, obj.base + obj.size - access_size)
            out_of_bounds = binary(
                ExprOp.OR,
                binary(ExprOp.ULT, address, low),
                binary(ExprOp.ULT, high, address))
            decided = self._fact_decide(state, out_of_bounds) \
                if self._fact_pruning else None
            may_oob = decided if decided is not None else \
                self.solver.may_be_true_partition(
                    *state.relevant_partition(out_of_bounds), out_of_bounds)
            if may_oob:
                if not self._replay:
                    # (During trace replay the error side was already
                    # recorded by the run that traced this prefix; see
                    # _check_division.)
                    error_state = state.fork()
                    self.stats.forks += 1
                    self.stats.states_created += 1
                    error_state.add_constraint(out_of_bounds)
                    error = ProgramError(
                        ErrorKind.OUT_OF_BOUNDS,
                        f"symbolic address may leave object '{obj.name}'",
                        state.frame.function.name,
                        state.frame.block.name if state.frame.block else "")
                    self._record_error(error_state, error)
                state.add_constraint(not_expr(out_of_bounds))
        state.add_constraint(binary(ExprOp.EQ, address,
                                    const(address.width, concrete)))
        return concrete

    # ----------------------------------------------------------- calls
    def _execute_call(self, state: ExecutionState, inst: CallInst) -> bool:
        callee = inst.callee
        if not isinstance(callee, Function):
            raise ProgramError(ErrorKind.UNKNOWN_FUNCTION,
                               "indirect calls are not supported")
        if callee.is_declaration:
            self._execute_intrinsic(state, inst, callee)
            return False
        if len(state.stack) >= self.limits.max_call_depth:
            raise ProgramError(ErrorKind.STACK_OVERFLOW, callee.name)
        frame = StackFrame(callee, call_site=inst)
        frame.block = callee.entry_block
        for argument, actual in zip(callee.arguments, inst.args):
            frame.bind(id(argument), self._eval(state, actual))
        state.push_frame(frame)
        return False

    def _execute_intrinsic(self, state: ExecutionState, inst: CallInst,
                           callee: Function) -> None:
        name = callee.name
        if name in ("__overify_check_fail", "abort", "__assert_fail"):
            kind = ErrorKind.CHECK_FAILURE if name != "__assert_fail" \
                else ErrorKind.ASSERTION_FAILURE
            raise ProgramError(kind, name)
        if name in ("klee_silent_exit", "exit"):
            state.status = StateStatus.COMPLETED
            state.return_value = const(32, 0)
            return
        # Unknown external functions return an unconstrained fresh symbol
        # (KLEE would complain; we model them as havoc).
        if not inst.type.is_void:
            width = self._width_of(inst.type)
            fresh = var(width, f"ext_{name}_{state.instructions_executed}")
            state.bind(inst, fresh)

    def _execute_return(self, state: ExecutionState, inst: ReturnInst) -> None:
        value = self._eval(state, inst.value) if inst.value is not None else None
        finished_frame = state.pop_frame()
        if not state.stack:
            state.status = StateStatus.COMPLETED
            state.return_value = value
            return
        call_site = finished_frame.call_site
        if call_site is not None and not call_site.type.is_void and \
                value is not None:
            state.frame.bind(id(call_site), value)

    # ----------------------------------------------------------- branches
    def _next_replay_decision(self, state: ExecutionState) -> int:
        """Pop the next recorded fork decision; when the trace runs dry the
        prefix is fully reconstructed and its instruction count is booked
        as replay overhead (it was already counted by the recording run)."""
        choice = self._replay.pop(0)
        if not self._replay:
            self.stats.instructions_replayed += state.instructions_executed
        return choice

    def _execute_branch(self, state: ExecutionState, inst: BranchInst) -> bool:
        if not inst.is_conditional:
            state.jump_to(inst.true_target)
            return False
        self.stats.branches_encountered += 1
        condition = self._eval(state, inst.condition)
        if condition.is_symbolic:
            # A condition the recorded equalities already decide folds to a
            # constant here and never reaches the solver.
            condition = state.rewrite(condition)
        if condition.is_constant:
            state.jump_to(inst.true_target if condition.value
                          else inst.false_target)
            return False
        # Only the constraint groups sharing variables with the condition can
        # affect the branch; disjoint groups are satisfiable by the state
        # invariant and drop out of the query.  The state's partition goes
        # to the solver as-is, so no union-find re-derives it.
        # With fact pruning on, the cheap per-variable decision runs
        # first: when the unary facts decide the branch, the coupled
        # full-partition query — which may burn its whole assignment
        # budget only to answer "maybe" — is skipped entirely.
        decided = self._fact_decide(state, condition) \
            if self._fact_pruning else None
        if decided is not None:
            can_true, can_false = decided, not decided
        else:
            varfree, groups = state.relevant_partition(condition)
            can_true, can_false = self.solver.check_branch_partition(
                varfree, groups, condition)
        if can_true and not can_false:
            state.add_constraint(condition)
            state.jump_to(inst.true_target)
            return False
        if can_false and not can_true:
            state.add_constraint(not_expr(condition))
            state.jump_to(inst.false_target)
            return False
        if not can_true and not can_false:
            # The path constraints are themselves unsatisfiable; kill silently.
            state.status = StateStatus.TERMINATED
            self.stats.paths_terminated += 1
            return False
        if self._replay:
            # Reconstructing a traced state: take the recorded side, do
            # not queue the other (it is some other trace's prefix).
            if self._next_replay_decision(state):
                state.add_constraint(condition)
                state.jump_to(inst.true_target)
            else:
                state.add_constraint(not_expr(condition))
                state.jump_to(inst.false_target)
            state.depth += 1
            return False
        # Fork: explore both directions.
        self.stats.forks += 1
        self.stats.states_created += 1
        false_state = state.fork()
        if self._record_traces:
            false_state.trace = state.trace + (0,)
            state.trace = state.trace + (1,)
        false_state.add_constraint(not_expr(condition))
        false_state.jump_to(inst.false_target)
        false_state.depth += 1
        state.add_constraint(condition)
        state.jump_to(inst.true_target)
        state.depth += 1
        self.searcher.add(false_state)
        self.searcher.add(state)
        return True

    def _execute_switch(self, state: ExecutionState, inst: SwitchInst) -> bool:
        self.stats.branches_encountered += 1
        value = self._eval(state, inst.value)
        if value.is_symbolic:
            value = state.rewrite(value)
        if value.is_constant:
            for case_const, target in inst.cases():
                if isinstance(case_const, ConstantInt) and \
                        case_const.value == value.value:
                    state.jump_to(target)
                    return False
            state.jump_to(inst.default)
            return False
        varfree, groups = state.relevant_partition(value)
        feasible: List[Tuple[Expr, BasicBlock]] = []
        default_constraint: List[Expr] = []
        for case_const, target in inst.cases():
            assert isinstance(case_const, ConstantInt)
            equals = binary(ExprOp.EQ, value,
                            const(value.width, case_const.value))
            default_constraint.append(not_expr(equals))
            if self.solver.may_be_true_partition(varfree, groups, equals):
                feasible.append((equals, target))
        default_feasible = self.solver.check_partition(
            varfree, groups, default_constraint).satisfiable
        targets: List[Tuple[List[Expr], BasicBlock]] = [
            ([expr], target) for expr, target in feasible]
        if default_feasible:
            targets.append((default_constraint, inst.default))
        if not targets:
            state.status = StateStatus.TERMINATED
            self.stats.paths_terminated += 1
            return False
        if self._replay and len(targets) > 1:
            choice_constraints, choice_target = \
                targets[self._next_replay_decision(state)]
            for constraint in choice_constraints:
                state.add_constraint(constraint)
            state.jump_to(choice_target)
            return False
        # The first feasible target continues on this state; the rest fork.
        for index, (extra_constraints, target) in enumerate(targets[1:], 1):
            forked = state.fork()
            if self._record_traces:
                forked.trace = state.trace + (index,)
            self.stats.forks += 1
            self.stats.states_created += 1
            for constraint in extra_constraints:
                forked.add_constraint(constraint)
            forked.jump_to(target)
            self.searcher.add(forked)
        first_constraints, first_target = targets[0]
        for constraint in first_constraints:
            state.add_constraint(constraint)
        state.jump_to(first_target)
        if len(targets) > 1:
            if self._record_traces:
                state.trace = state.trace + (0,)
            self.searcher.add(state)
            return True
        return False

    # ----------------------------------------------------------- reporting
    def _test_input_for(self, state: ExecutionState) -> Optional[bytes]:
        """A concrete input satisfying the state's path constraints."""
        if not self._input_variables:
            return b""
        model = self.solver.model_for_partition(*state.full_partition())
        if model is None:
            return None
        return bytes(model.get(name, 0) & 0xFF
                     for name in self._input_variables)

    def _record_completed(self, state: ExecutionState) -> None:
        # The model query runs before the counter bump: if it raises, the
        # containment in _run_state records one engine-error path without
        # leaving a phantom completed count behind.
        test_input = self._test_input_for(state)
        self.stats.paths_completed += 1
        return_value: Optional[int] = None
        if state.return_value is not None and state.return_value.is_constant:
            return_value = state.return_value.value
        self.report.paths.append(PathRecord(
            state_id=state.state_id,
            status=StateStatus.COMPLETED,
            constraint_count=len(state.constraints),
            instructions=state.instructions_executed,
            test_input=test_input,
            return_value=return_value,
        ))
        if self._state_sink is not None:
            self._state_sink(state)

    def _record_error(self, state: ExecutionState, error: ProgramError) -> None:
        state.status = StateStatus.ERROR
        state.error = error
        test_input = self._test_input_for(state)
        self.stats.paths_errored += 1
        self.report.paths.append(PathRecord(
            state_id=state.state_id,
            status=StateStatus.ERROR,
            constraint_count=len(state.constraints),
            instructions=state.instructions_executed,
            test_input=test_input,
        ))
        self.report.bugs.append(BugReport(
            kind=error.kind,
            message=error.message,
            function=error.function,
            block=error.block,
            test_input=test_input,
        ))
        if self._state_sink is not None:
            self._state_sink(state)


#: Concrete instruction class -> handler.  Exact-type keyed: the IR's
#: instruction hierarchy is flat (every class derives directly from
#: Instruction), so no subclass can miss its parent's handler.
SymbolicExecutor._DISPATCH = {
    BinaryInst: SymbolicExecutor._execute_binary,
    ICmpInst: SymbolicExecutor._execute_icmp,
    SelectInst: SymbolicExecutor._execute_select,
    CastInst: SymbolicExecutor._execute_cast_inst,
    AllocaInst: SymbolicExecutor._execute_alloca,
    LoadInst: SymbolicExecutor._execute_load,
    StoreInst: SymbolicExecutor._execute_store,
    GEPInst: SymbolicExecutor._execute_gep,
    CallInst: SymbolicExecutor._execute_call,
    BranchInst: SymbolicExecutor._execute_branch,
    SwitchInst: SymbolicExecutor._execute_switch,
    ReturnInst: SymbolicExecutor._execute_return,
    UnreachableInst: SymbolicExecutor._execute_unreachable,
    PhiInst: SymbolicExecutor._execute_phi_misplaced,
}


def explore(module: Module, num_input_bytes: int, entry: str = "main",
            searcher: str = "dfs", limits: Optional[SymexLimits] = None,
            solver: Optional[Solver] = None) -> SymexReport:
    """Convenience wrapper: symbolically execute ``entry`` with
    ``num_input_bytes`` of symbolic input and return the report."""
    executor = SymbolicExecutor(module, entry=entry, searcher=searcher,
                                limits=limits, solver=solver)
    return executor.run(num_input_bytes)
