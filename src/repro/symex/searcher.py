"""Search strategies: which pending state the executor works on next.

KLEE ships DFS, BFS, random-state and coverage-guided searchers; the choice
matters little for the exhaustive, bounded-input experiments in the paper,
but the interface is reproduced so users can plug their own strategies.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterable, List, Optional

from .state import ExecutionState


class Searcher:
    """Interface: a queue of pending execution states."""

    def add(self, state: ExecutionState) -> None:  # pragma: no cover
        raise NotImplementedError

    def pop(self) -> ExecutionState:  # pragma: no cover
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover
        raise NotImplementedError

    def empty(self) -> bool:
        return len(self) == 0


class DFSSearcher(Searcher):
    """Depth-first search: follow one path to completion before backtracking.
    This keeps the number of live states (and memory) small."""

    def __init__(self) -> None:
        self._stack: List[ExecutionState] = []

    def add(self, state: ExecutionState) -> None:
        self._stack.append(state)

    def pop(self) -> ExecutionState:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class BFSSearcher(Searcher):
    """Breadth-first search: explore all paths in lockstep."""

    def __init__(self) -> None:
        self._queue: Deque[ExecutionState] = deque()

    def add(self, state: ExecutionState) -> None:
        self._queue.append(state)

    def pop(self) -> ExecutionState:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class RandomSearcher(Searcher):
    """Uniformly random state selection (KLEE's ``--search=random-state``)."""

    def __init__(self, seed: int = 0) -> None:
        self._states: List[ExecutionState] = []
        self._rng = random.Random(seed)

    def add(self, state: ExecutionState) -> None:
        self._states.append(state)

    def pop(self) -> ExecutionState:
        index = self._rng.randrange(len(self._states))
        self._states[index], self._states[-1] = \
            self._states[-1], self._states[index]
        return self._states.pop()

    def __len__(self) -> int:
        return len(self._states)


def make_searcher(name: str) -> Searcher:
    """Create a searcher by name ("dfs", "bfs", or "random")."""
    if name == "dfs":
        return DFSSearcher()
    if name == "bfs":
        return BFSSearcher()
    if name == "random":
        return RandomSearcher()
    raise ValueError(f"unknown search strategy '{name}'")
