"""Search strategies: which pending state the executor works on next.

KLEE ships DFS, BFS, random-state and coverage-guided searchers; the choice
matters little for the exhaustive, bounded-input experiments in the paper,
but the interface is reproduced so users can plug their own strategies.

:class:`WorkStealingFrontier` is the thread-safe frontier behind the
parallel executor: each worker keeps its own deque and applies the chosen
strategy's discipline to it, and a worker whose deque runs dry steals from
a sibling.  Exhaustive exploration visits the same path *set* under any
discipline, so the searcher only shapes order and memory, exactly as in
the sequential case.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import Deque, Iterable, List, Optional

from .state import ExecutionState


class Searcher:
    """Interface: a queue of pending execution states."""

    def add(self, state: ExecutionState) -> None:  # pragma: no cover
        raise NotImplementedError

    def pop(self) -> ExecutionState:  # pragma: no cover
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover
        raise NotImplementedError

    def empty(self) -> bool:
        return len(self) == 0


class DFSSearcher(Searcher):
    """Depth-first search: follow one path to completion before backtracking.
    This keeps the number of live states (and memory) small."""

    def __init__(self) -> None:
        self._stack: List[ExecutionState] = []

    def add(self, state: ExecutionState) -> None:
        self._stack.append(state)

    def pop(self) -> ExecutionState:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class BFSSearcher(Searcher):
    """Breadth-first search: explore all paths in lockstep."""

    def __init__(self) -> None:
        self._queue: Deque[ExecutionState] = deque()

    def add(self, state: ExecutionState) -> None:
        self._queue.append(state)

    def pop(self) -> ExecutionState:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class RandomSearcher(Searcher):
    """Uniformly random state selection (KLEE's ``--search=random-state``)."""

    def __init__(self, seed: int = 0) -> None:
        self._states: List[ExecutionState] = []
        self._rng = random.Random(seed)

    def add(self, state: ExecutionState) -> None:
        self._states.append(state)

    def pop(self) -> ExecutionState:
        index = self._rng.randrange(len(self._states))
        self._states[index], self._states[-1] = \
            self._states[-1], self._states[index]
        return self._states.pop()

    def __len__(self) -> int:
        return len(self._states)


def make_searcher(name: str) -> Searcher:
    """Create a searcher by name ("dfs", "bfs", or "random")."""
    if name == "dfs":
        return DFSSearcher()
    if name == "bfs":
        return BFSSearcher()
    if name == "random":
        return RandomSearcher()
    raise ValueError(f"unknown search strategy '{name}'")


class WorkStealingFrontier:
    """The parallel executor's shared frontier: one deque per worker plus
    work-stealing, wrapped in a single condition variable.

    * A worker **adds** forked children to its own deque and **pops** from
      it by the configured discipline — DFS pops the newest (keeping live
      states and memory small, like the sequential DFS), BFS the oldest,
      random a uniform pick.
    * A worker whose deque is empty **steals the oldest** state of a
      sibling's deque: under DFS the oldest entry is the shallowest fork,
      i.e. the root of the largest unexplored subtree, so a steal buys the
      thief the most work per synchronization (the classic Cilk/Cloud9
      heuristic).
    * ``pop`` blocks while other workers are still running states (their
      forks may refill the frontier) and returns ``None`` once the
      frontier is empty with no active worker — distributed termination
      without a separate detector.  Every successful ``pop`` must be
      paired with a ``task_done`` from the same worker.
    """

    def __init__(self, workers: int = 1, mode: str = "dfs",
                 seed: int = 0) -> None:
        if mode not in ("dfs", "bfs", "random"):
            raise ValueError(f"unknown search strategy '{mode}'")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._mode = mode
        self._workers = workers
        self._deques: List[Deque[ExecutionState]] = [deque()
                                                     for _ in range(workers)]
        self._rngs = [random.Random(seed * 8191 + index)
                      for index in range(workers)]
        self._cond = threading.Condition(threading.Lock())
        self._pending = 0
        self._active = 0
        #: Workers still able to pop; a crashed worker retires itself so
        #: the pool degrades (blocked siblings re-check termination)
        #: instead of waiting on forks that can never come.
        self._live = workers
        #: Peak of pending + in-flight states (the parallel analogue of
        #: the sequential ``max_live_states`` gauge).
        self.high_water = 0

    def __len__(self) -> int:
        return self._pending

    def empty(self) -> bool:
        return self._pending == 0

    def add(self, state: ExecutionState, worker: int = 0) -> None:
        with self._cond:
            self._deques[worker].append(state)
            self._pending += 1
            live = self._pending + self._active
            if live > self.high_water:
                self.high_water = live
            self._cond.notify()

    def _take(self, worker: int) -> Optional[ExecutionState]:
        own = self._deques[worker]
        if own:
            if self._mode == "bfs":
                return own.popleft()
            if self._mode == "random":
                index = self._rngs[worker].randrange(len(own))
                state = own[index]
                del own[index]
                return state
            return own.pop()
        for offset in range(1, self._workers):
            victim = self._deques[(worker + offset) % self._workers]
            if victim:
                return victim.popleft()
        return None

    def pop(self, worker: int = 0) -> Optional[ExecutionState]:
        """The next state for ``worker`` (blocking), or None when the
        exploration is complete."""
        with self._cond:
            while True:
                state = self._take(worker)
                if state is not None:
                    self._pending -= 1
                    self._active += 1
                    return state
                if self._active == 0:
                    self._cond.notify_all()
                    return None
                self._cond.wait()

    def task_done(self, worker: int = 0) -> None:
        """Declare the previously popped state fully processed."""
        with self._cond:
            self._active -= 1
            if self._active == 0 and self._pending == 0:
                self._cond.notify_all()

    @property
    def live_workers(self) -> int:
        return self._live

    def retire(self, worker: int = 0) -> None:
        """A worker leaving the pool for good (the crash path): it will
        never pop again.  Wakes every blocked sibling so the termination
        condition is re-evaluated against the shrunken pool."""
        with self._cond:
            self._live -= 1
            self._cond.notify_all()

    def drain(self) -> List[ExecutionState]:
        """Remove and return every pending state, unblocking all workers.

        This is the abort path (a worker failed and the run is about to
        raise): the returned states carry no termination accounting.
        Budget exhaustion does *not* come through here — workers keep
        popping and mark each leftover state terminated one by one, which
        keeps ``paths_terminated`` exact."""
        with self._cond:
            leftovers: List[ExecutionState] = []
            for own in self._deques:
                leftovers.extend(own)
                own.clear()
            self._pending = 0
            self._cond.notify_all()
            return leftovers
