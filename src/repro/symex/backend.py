"""The symbolic-execution engine as a :class:`VerificationBackend`.

Searcher selection, worker-pool sizing and the Solver feature flags are by
name, so a driver can write ``make_backend("symex<workers=4>")`` or
``make_backend("symex<searcher=bfs,ubtree=off>")`` without touching
executor internals.  The flags mirror
:class:`~repro.symex.solver.SolverConfig`: ``ubtree``,
``rewrite-equalities``, ``branch-and-prune``, ``seeded-splits`` and
``minimize-cores``, each accepting ``on``/``off`` (also
``true``/``false``/``1``/``0``), plus the integers ``ubtree-capacity``
(0 = unbounded) and ``query-deadline-ms`` (per-solver-query wall-clock
deadline, 0 = none — see ``docs/robustness.md``).  ``workers=N`` with
``N > 1`` explores through the
:class:`~repro.symex.parallel.ParallelExecutor` worker pool
(``processes=on`` selects its process-pool escape hatch).

Two parameters open the backend to callers that manage solver knowledge
themselves (the verification service, tests):

* ``caches`` — a prebuilt :class:`~repro.symex.solver.SharedSolverCaches`
  the run solves into instead of constructing its own, so consecutive
  runs (or concurrent jobs) share learned results;
* ``store=PATH`` — a :class:`~repro.service.store.SolverKnowledgeStore`
  file: the run primes its caches from it, consults the per-function
  verification memo (an unchanged module/request skips symex entirely),
  and persists everything it learned back on completion.  The outcome's
  ``provenance`` field reports what happened: ``memo-hit``,
  ``warm-store`` (at least one primed entry answered a group query), or
  ``cold``.
"""

from __future__ import annotations

import time
from typing import Optional

from ..faults import StoreError
from ..ir import Module
from ..verification import (
    BackendSpecError, VerificationBackend, VerificationOutcome,
    VerificationRequest, register_backend,
)
from .executor import SymexLimits, explore
from .parallel import ParallelExecutor
from .searcher import make_searcher
from .solver import SharedSolverCaches, Solver, SolverConfig

_TRUTHY = {True, 1, "1", "on", "true", "yes"}
_FALSY = {False, 0, "0", "off", "false", "no"}


def _parse_flag(name: str, value: object) -> bool:
    if isinstance(value, str):
        value = value.lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise BackendSpecError(
        f"symex: flag '{name}' must be on/off, got {value!r}")


def _parse_count(name: str, value: object, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BackendSpecError(
            f"symex: '{name}' must be an integer, got {value!r}")
    if value < minimum:
        raise BackendSpecError(
            f"symex: '{name}' must be >= {minimum}, got {value}")
    return value


class SymexBackend(VerificationBackend):
    """Exhaustive bounded symbolic execution (the paper's KLEE stand-in)."""

    name = "symex"

    def __init__(self, searcher: str = "dfs", workers: object = 1,
                 processes: object = False, ubtree: object = True,
                 rewrite_equalities: object = True,
                 branch_and_prune: object = True,
                 seeded_splits: object = True,
                 ubtree_capacity: object = 0,
                 minimize_cores: object = True,
                 query_deadline_ms: object = 0,
                 store: object = "",
                 caches: Optional[SharedSolverCaches] = None) -> None:
        make_searcher(searcher)  # validate the name eagerly
        self.searcher = searcher
        self.workers = _parse_count("workers", workers, 1)
        self.use_processes = _parse_flag("processes", processes)
        self.solver_config = SolverConfig(
            ubtree=_parse_flag("ubtree", ubtree),
            rewrite_equalities=_parse_flag("rewrite-equalities",
                                           rewrite_equalities),
            branch_and_prune=_parse_flag("branch-and-prune",
                                         branch_and_prune),
            seeded_splits=_parse_flag("seeded-splits", seeded_splits),
            ubtree_capacity=_parse_count("ubtree-capacity", ubtree_capacity,
                                         0),
            minimize_cores=_parse_flag("minimize-cores", minimize_cores),
            query_deadline_seconds=_parse_count(
                "query-deadline-ms", query_deadline_ms, 0) / 1000.0,
        )
        if store is not None and not isinstance(store, str):
            raise BackendSpecError(
                f"symex: 'store' must be a path string, got {store!r}")
        self.store_path = store or ""
        #: Caller-injected solver caches.  ``None``: a plain run builds a
        #: private set per verification; a ``store`` run builds one so it
        #: has something to prime and persist.
        self.caches = caches

    def _config_spec(self) -> str:
        """The canonical spec of the engine configuration — everything
        that can change a verification outcome, and nothing that cannot
        (the store path is deliberately excluded: it feeds the memo
        fingerprint, and where knowledge is stored must not change what a
        verification means)."""
        parts = []
        if self.searcher != "dfs":
            parts.append(f"searcher={self.searcher}")
        if self.workers != 1:
            parts.append(f"workers={self.workers}")
        if self.use_processes:
            parts.append("processes=on")
        config = self.solver_config
        for key, enabled in (("ubtree", config.ubtree),
                             ("rewrite-equalities",
                              config.rewrite_equalities),
                             ("branch-and-prune", config.branch_and_prune),
                             ("seeded-splits", config.seeded_splits),
                             ("minimize-cores", config.minimize_cores)):
            if not enabled:
                parts.append(f"{key}=off")
        if config.ubtree_capacity:
            parts.append(f"ubtree-capacity={config.ubtree_capacity}")
        if config.query_deadline_seconds:
            parts.append(f"query-deadline-ms="
                         f"{round(config.query_deadline_seconds * 1000)}")
        if parts:
            return f"symex<{','.join(parts)}>"
        return "symex"

    def describe(self) -> str:
        spec = self._config_spec()
        if not self.store_path:
            return spec
        store_part = f"store={self.store_path}"
        if spec.endswith(">"):
            return f"{spec[:-1]},{store_part}>"
        return f"{spec}<{store_part}>"

    def verify(self, module: Module,
               request: VerificationRequest) -> VerificationOutcome:
        limits = SymexLimits(timeout_seconds=request.timeout_seconds,
                             max_instructions=request.max_instructions)
        store = None
        memo_key = None
        if self.store_path:
            # Imported lazily: plain symex runs must not pay for (or
            # depend on) the service package.
            from ..service.store import (
                SolverKnowledgeStore, WireError, memo_to_outcome,
                outcome_to_memo, verification_fingerprint,
            )
            store = SolverKnowledgeStore(self.store_path)
            store.load()
            memo_key = verification_fingerprint(module, request,
                                                self._config_spec())
            payload = store.memo_lookup(memo_key)
            if payload is not None:
                try:
                    return memo_to_outcome(payload, backend=self.describe())
                except WireError:
                    pass  # damaged memo: fall through and re-verify
        caches = self.caches
        if caches is None and store is not None:
            caches = SharedSolverCaches(
                num_stripes=self.workers,
                ubtree_capacity=self.solver_config.ubtree_capacity,
                locked=self.workers > 1)
        if store is not None and caches is not None:
            store.prime(caches)
        start = time.perf_counter()
        if self.workers > 1 or self.use_processes:
            executor = ParallelExecutor(
                module, entry=request.entry, searcher=self.searcher,
                workers=self.workers, solver_config=self.solver_config,
                limits=limits, use_processes=self.use_processes,
                shared_caches=caches)
            report = executor.run(request.symbolic_input_bytes)
        else:
            report = explore(module, request.symbolic_input_bytes,
                             entry=request.entry, searcher=self.searcher,
                             limits=limits,
                             solver=Solver(config=self.solver_config,
                                           shared=caches))
        seconds = time.perf_counter() - start
        provenance = "warm-store" if report.solver_stats.store_hits \
            else "cold"
        outcome = VerificationOutcome(
            backend=self.describe(),
            seconds=seconds,
            instructions=report.stats.instructions_interpreted,
            paths=report.stats.total_paths,
            errors=report.stats.paths_errored,
            timed_out=report.stats.timed_out,
            engine_errors=report.stats.engine_errors,
            termination_reason=report.stats.termination_reason,
            bug_signatures=frozenset(report.bug_signatures()),
            solver_stats=report.solver_stats.as_dict(),
            detail=report,
            provenance=provenance,
        )
        if store is not None:
            if caches is not None:
                store.absorb(caches)
            store.memo_record(memo_key, outcome_to_memo(outcome))
            try:
                store.save()
            except StoreError:
                # Persistence is best-effort: the verification stands,
                # the next successful save will carry the knowledge.
                pass
        return outcome


register_backend("symex", SymexBackend)
