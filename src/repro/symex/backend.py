"""The symbolic-execution engine as a :class:`VerificationBackend`.

Searcher selection is by name (``dfs``/``bfs``/``random``), so a driver can
write ``make_backend("symex<searcher=bfs>")`` without touching executor
internals.
"""

from __future__ import annotations

import time

from ..ir import Module
from ..verification import (
    VerificationBackend, VerificationOutcome, VerificationRequest,
    register_backend,
)
from .executor import SymexLimits, explore
from .searcher import make_searcher


class SymexBackend(VerificationBackend):
    """Exhaustive bounded symbolic execution (the paper's KLEE stand-in)."""

    name = "symex"

    def __init__(self, searcher: str = "dfs") -> None:
        make_searcher(searcher)  # validate the name eagerly
        self.searcher = searcher

    def describe(self) -> str:
        if self.searcher != "dfs":
            return f"symex<searcher={self.searcher}>"
        return "symex"

    def verify(self, module: Module,
               request: VerificationRequest) -> VerificationOutcome:
        limits = SymexLimits(timeout_seconds=request.timeout_seconds,
                             max_instructions=request.max_instructions)
        start = time.perf_counter()
        report = explore(module, request.symbolic_input_bytes,
                         entry=request.entry, searcher=self.searcher,
                         limits=limits)
        seconds = time.perf_counter() - start
        return VerificationOutcome(
            backend=self.describe(),
            seconds=seconds,
            instructions=report.stats.instructions_interpreted,
            paths=report.stats.total_paths,
            errors=report.stats.paths_errored,
            timed_out=report.stats.timed_out,
            bug_signatures=frozenset(report.bug_signatures()),
            solver_stats=report.solver_stats.as_dict(),
            detail=report,
        )


register_backend("symex", SymexBackend)
