"""The verification-backend protocol and registry.

The paper measures one thing — how fast an automated tool can chew through
a build — with two engines: the symbolic executor (exhaustive path
exploration) and the concrete interpreter (one execution).  This module
gives both the same shape so drivers (the experiment harness, the CLI) ask
*a backend* for a :class:`VerificationOutcome` instead of hand-calling each
engine:

* :class:`VerificationBackend` — the protocol: ``verify(module, request)``.
* :class:`VerificationRequest` / :class:`VerificationOutcome` — the
  engine-independent input/output records.
* a registry plus a textual spec syntax mirroring the pass syntax:
  ``make_backend("symex<searcher=bfs>")`` selects the symbolic executor
  with breadth-first search; ``make_backend("interp")`` the interpreter.

The engines register themselves from :mod:`repro.symex.backend` and
:mod:`repro.interp.backend` at import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .ir import Module


@dataclass
class VerificationRequest:
    """Engine-independent description of one verification run."""

    #: Size of the symbolic input buffer (path-exploring backends).
    symbolic_input_bytes: int = 4
    #: Concrete input (single-execution backends).
    concrete_input: bytes = b"the quick brown fox"
    #: Wall-clock budget (the paper used one hour per Coreutils program).
    timeout_seconds: float = 60.0
    #: Instruction budget across the whole run.
    max_instructions: int = 5_000_000
    #: Entry function.
    entry: str = "main"


@dataclass
class VerificationOutcome:
    """What a backend reports back, uniformly across engines."""

    backend: str
    seconds: float
    instructions: int
    paths: int
    errors: int
    timed_out: bool
    bug_signatures: frozenset = frozenset()
    return_value: Optional[int] = None
    #: Paths the engine abandoned because *it* failed (contained
    #: solver/interpreter exceptions), not because the program was buggy.
    #: Zero on a healthy run; see ``docs/robustness.md``.
    engine_errors: int = 0
    #: Which resource budget truncated the run ("paths", "instructions",
    #: "forks", "timeout", "worker-loss"); empty when exploration finished.
    termination_reason: str = ""
    #: Constraint-solver counters (queries, cache/model-cache hits,
    #: assignments tried, ...) for solver-backed engines; empty otherwise.
    solver_stats: Dict[str, float] = field(default_factory=dict)
    #: Where the answer came from, for cache-aware drivers (the
    #: verification service): ``"cold"`` — computed from scratch;
    #: ``"warm-store"`` — computed, but at least one solver group was
    #: answered by an entry primed from a persistent knowledge store;
    #: ``"memo-hit"`` — the whole run was skipped because the
    #: post-pipeline IR fingerprint matched a memoized verification.
    provenance: str = "cold"
    #: The engine-specific report (``SymexReport`` / ``ExecutionResult``)
    #: for drivers that want the details.
    detail: object = None


class VerificationBackend:
    """Protocol every verification engine adapter implements."""

    #: Registry name (also the default spelling in outcome reports).
    name: str = ""

    def verify(self, module: Module,
               request: VerificationRequest) -> VerificationOutcome:
        raise NotImplementedError  # pragma: no cover

    def describe(self) -> str:
        """The canonical textual spec of this backend instance."""
        return self.name


class BackendSpecError(ValueError):
    """A backend spec string could not be resolved."""


_REGISTRY: Dict[str, Callable[..., VerificationBackend]] = {}


def register_backend(name: str,
                     factory: Callable[..., VerificationBackend]) -> None:
    """Register a backend factory (called by the engine adapters at import
    time)."""
    if name in _REGISTRY:
        raise ValueError(f"backend '{name}' is already registered")
    _REGISTRY[name] = factory


def _ensure_builtin_backends() -> None:
    # The adapters live next to their engines; import them lazily so that
    # `repro.verification` itself stays import-cycle free.
    from . import interp, symex  # noqa: F401


def backend_names() -> List[str]:
    _ensure_builtin_backends()
    return sorted(_REGISTRY)


def _accepted_parameters(factory: Callable[..., VerificationBackend]
                         ) -> Optional[frozenset]:
    """The keyword parameters ``factory`` accepts, or ``None`` when it
    takes ``**kwargs`` (everything goes)."""
    import inspect

    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return None
    names = []
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY):
            names.append(parameter.name)
    return frozenset(names)


def make_backend(spec: str, **default_params: object) -> VerificationBackend:
    """Build a backend from its textual spec.

    The syntax mirrors the pass syntax: ``name`` or
    ``name<key=value,...>`` (``symex<searcher=bfs>``).  ``default_params``
    supply values for keys the spec does not mention; defaults the selected
    backend does not understand are dropped (parameters written in the spec
    itself are always passed through and must be understood).
    """
    _ensure_builtin_backends()
    text = spec.strip()
    params: Dict[str, object] = dict(default_params)
    explicit: List[str] = []
    if "<" in text:
        if not text.endswith(">"):
            raise BackendSpecError(
                f"malformed backend spec {spec!r}: parameters must be "
                f"enclosed in '<...>'")
        text, _, param_text = text[:-1].partition("<")
        text = text.strip()
        for item in param_text.split(","):
            item = item.strip()
            if not item:
                raise BackendSpecError(
                    f"backend '{text}': empty parameter in spec {spec!r}")
            key, eq, raw = item.partition("=")
            key = key.strip().replace("-", "_")
            if key in explicit:
                raise BackendSpecError(
                    f"backend '{text}': duplicate parameter '{key}'")
            explicit.append(key)
            if not eq:
                params[key] = True
                continue
            raw = raw.strip()
            params[key] = int(raw) if raw.lstrip("-").isdigit() else raw
    factory = _REGISTRY.get(text)
    if factory is None:
        raise BackendSpecError(
            f"unknown verification backend '{text}'; known: "
            f"{', '.join(sorted(_REGISTRY))}")
    accepted = _accepted_parameters(factory)
    if accepted is not None:
        params = {key: value for key, value in params.items()
                  if key in accepted or key in explicit}
    try:
        return factory(**params)
    except BackendSpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise BackendSpecError(
            f"backend '{text}' rejected parameters {params}: {exc}") from exc
