"""Seeded random MiniC program generator.

Programs are generated from a ``random.Random(seed)`` stream and a
:class:`GeneratorConfig`; nothing else feeds the generator — no ``hash()``,
no set/dict iteration over unordered collections, no ambient state — so the
same ``(seed, config)`` pair produces a byte-identical program on every
run, every platform, and every ``PYTHONHASHSEED``.

The grammar is weighted to stress the newest compiler layers: short-circuit
chains (branch-free ``&&``/``||`` lowering), equality chains and
signed/unsigned comparisons at width boundaries (``algebraic-simplify``),
redundant loads through locals, arrays, structs and pointers
(``load-elim``/``sroa``), constant-foldable arithmetic (``sccp``), and
division/modulo both guarded and unguarded (trap-semantics agreement
between the backends).

Every generated program is *well defined* under MiniC semantics:

* all locals are initialized before use;
* array/pointer accesses stay inside their objects (power-of-two sizes
  with masked indices, or constant offsets);
* loops are bounded by constant trip counts or by the NUL terminator the
  harness appends to the input buffer;
* helper calls form a DAG (no recursion);
* arithmetic wraps, shifts are taken modulo the width, and division by
  zero is a *defined runtime error* both engines must report identically —
  the one deliberately reachable "bug" the oracle expects levels to agree
  on.

Concrete inputs fed to generated programs must be exactly
``config.input_bytes`` long (see :meth:`GeneratorConfig.concrete_inputs`):
the program indexes ``input[0..input_bytes-1]`` directly, which is only
in-bounds for inputs of that length.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Sign-boundary and width-boundary constants, the values most likely to
#: expose signed/unsigned predicate confusion in compare canonicalization.
_BOUNDARY_CONSTANTS = (
    0, 1, 2, 7, 9, 31, 63, 126, 127, 128, 129, 254, 255, 256,
    32767, 32768, 65535, 65536,
    2147483646, 2147483647, -1, -2, -127, -128, -129, -255, -32768,
    -2147483647,
)

#: Integer types for scalar locals: (spelling, width, signed).
_SCALAR_TYPES = (
    ("int", 32, True),
    ("unsigned int", 32, False),
    ("char", 8, True),
    ("unsigned char", 8, False),
    ("short", 16, True),
    ("unsigned short", 16, False),
    ("long", 64, True),
    ("unsigned long", 64, False),
)

#: vlibc character-classification functions (safe on any byte value).
_CTYPE_FUNCTIONS = ("isspace", "isdigit", "isupper", "islower", "isalpha",
                    "isalnum", "isprint", "ispunct", "toupper", "tolower")


@dataclass(frozen=True)
class GeneratorConfig:
    """Grammar knobs.  All fields participate in determinism: two equal
    configs generate identical programs from equal seeds."""

    #: Usable symbolic input bytes; the program indexes ``input[k]`` only
    #: for ``k < input_bytes``.
    input_bytes: int = 3
    #: Helper functions besides ``main`` (called as a DAG, never recursive).
    max_helpers: int = 2
    #: Statements per generated block before nesting.
    max_block_statements: int = 5
    #: Maximum expression tree depth.
    max_expr_depth: int = 3
    #: Maximum constant loop trip count.
    max_trip_count: int = 4
    #: Maximum loop nesting depth per function.
    max_loop_depth: int = 2
    #: Probability weights (relative, not normalized).
    w_if: int = 3
    w_loop: int = 2
    w_walker: int = 1
    w_assign: int = 5
    w_decl: int = 3
    w_acc: int = 4
    w_call: int = 2
    #: Probability (in %) that a condition may read symbolic input —
    #: the fork-rate knob: higher means more paths per program.
    symbolic_condition_pct: int = 35
    #: Allow unguarded division/modulo (reachable DIVISION_BY_ZERO traps).
    allow_trapping_division: bool = True
    #: Struct definitions + member accesses.
    allow_structs: bool = True
    #: Local arrays + pointer arithmetic into them.
    allow_arrays: bool = True
    #: vlibc calls (ctype functions, strlen, memset, ...).
    allow_libc: bool = True

    def describe(self) -> str:
        """Canonical one-line rendering (part of the repro recipe)."""
        parts = []
        for name, value in self.__dict__.items():
            parts.append(f"{name}={value}")
        return ",".join(parts)

    def concrete_inputs(self) -> List[bytes]:
        """Deterministic concrete inputs of exactly ``input_bytes`` bytes
        (the only length generated programs are in-bounds for)."""
        n = self.input_bytes
        inputs = [
            bytes(n),                      # all zeroes: shortest walk
            b"\x01" * n,                   # all ones
            b"\xff" * n,                   # all 0xff: sign boundaries
            b"\x80" * n,                   # sign bit set
            b"a" * n,                      # alphabetic
            b" " * n,                      # whitespace
            bytes((i * 37 + 11) & 0xFF for i in range(n)),
            bytes((0x7F + i) & 0xFF for i in range(n)),
        ]
        # Dedup preserving order (lengths are equal, contents may collide
        # for tiny n).
        seen = []
        for item in inputs:
            if item not in seen:
                seen.append(item)
        return seen


@dataclass
class _Var:
    """A scalar local in scope."""

    name: str
    spelling: str
    width: int
    signed: bool


@dataclass
class _Array:
    """A local array in scope: power-of-two count so indices can be
    masked in-bounds."""

    name: str
    spelling: str  # element type spelling
    count: int     # power of two
    #: Name of a pointer local aimed at the array base (optional).
    pointer: Optional[str] = None


@dataclass
class _StructVar:
    name: str
    fields: Tuple[Tuple[str, str], ...]  # (field name, spelling)
    #: Name of a ``struct S *`` local aimed at this variable (optional).
    pointer: Optional[str] = None


@dataclass
class _Scope:
    variables: List[_Var] = field(default_factory=list)
    arrays: List[_Array] = field(default_factory=list)
    structs: List[_StructVar] = field(default_factory=list)
    #: Whether expressions may reference ``input[k]`` / ``len``.
    has_input: bool = False


class _FunctionBuilder:
    """Generates one function body; owns the per-function name counter."""

    def __init__(self, generator: "_ProgramGenerator", has_input: bool,
                 params: List[_Var]) -> None:
        self.gen = generator
        self.rng = generator.rng
        self.config = generator.config
        self.lines: List[str] = []
        self.indent = 1
        self.scope = _Scope(variables=list(params), has_input=has_input)
        self.counter = 0
        self.loop_depth = 0

    # ------------------------------------------------------------ plumbing
    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # ------------------------------------------------------- leaf choices
    def _constant(self) -> str:
        value = self.rng.choice(_BOUNDARY_CONSTANTS) \
            if self.rng.random() < 0.5 else self.rng.randrange(-64, 200)
        return f"({value})" if value < 0 else str(value)

    def _input_byte(self) -> str:
        index = self.rng.randrange(self.config.input_bytes)
        return f"input[{index}]"

    def _leaf(self, symbolic_ok: bool) -> str:
        scope = self.scope
        choices: List[str] = []
        for var in scope.variables:
            choices.append(var.name)
        for array in scope.arrays:
            index = self.rng.randrange(array.count)
            choices.append(f"{array.name}[{index}]")
            if array.pointer is not None:
                choices.append(f"*({array.pointer} + {index})")
        for struct in scope.structs:
            fname = self.rng.choice([f for f, _ in struct.fields])
            choices.append(f"{struct.name}.{fname}")
            if struct.pointer is not None:
                choices.append(f"{struct.pointer}->{fname}")
        if scope.has_input and symbolic_ok:
            for _ in range(3):  # weight input reads up
                choices.append(self._input_byte())
            choices.append("len")
        if not choices or self.rng.random() < 0.25:
            return self._constant()
        return self.rng.choice(choices)

    # ------------------------------------------------------- expressions
    def expression(self, depth: int = 0, symbolic_ok: bool = True) -> str:
        rng = self.rng
        if depth >= self.config.max_expr_depth or rng.random() < 0.30:
            return self._leaf(symbolic_ok)
        kind = rng.randrange(100)
        if kind < 40:
            op = rng.choice(("+", "-", "*", "&", "|", "^", "<<", ">>"))
            lhs = self.expression(depth + 1, symbolic_ok)
            rhs = self.expression(depth + 1, symbolic_ok)
            if op in ("<<", ">>"):
                # Shift amounts are defined modulo the width in MiniC, but
                # small amounts are likelier to survive simplification.
                rhs = f"({self.expression(depth + 1, symbolic_ok)} & 15)"
            return f"({lhs} {op} {rhs})"
        if kind < 52:
            return self._division(depth, symbolic_ok)
        if kind < 67:
            op = rng.choice(("==", "!=", "<", "<=", ">", ">="))
            lhs = self.expression(depth + 1, symbolic_ok)
            rhs = self.expression(depth + 1, symbolic_ok)
            return f"({lhs} {op} {rhs})"
        if kind < 77:
            op = rng.choice(("&&", "||"))
            lhs = self.expression(depth + 1, symbolic_ok)
            rhs = self.expression(depth + 1, symbolic_ok)
            return f"({lhs} {op} {rhs})"
        if kind < 84:
            op = rng.choice(("-", "~", "!"))
            return f"({op}{self.expression(depth + 1, symbolic_ok)})"
        if kind < 92:
            spelling = rng.choice(_SCALAR_TYPES)[0]
            return f"(({spelling}) {self.expression(depth + 1, symbolic_ok)})"
        if kind < 97 and self.config.allow_libc and self.scope.has_input \
                and symbolic_ok:
            function = rng.choice(_CTYPE_FUNCTIONS)
            return f"{function}({self._input_byte()})"
        condition = self.expression(depth + 1, symbolic_ok)
        then = self.expression(depth + 1, symbolic_ok)
        otherwise = self.expression(depth + 1, symbolic_ok)
        return f"({condition} ? {then} : {otherwise})"

    def _division(self, depth: int, symbolic_ok: bool) -> str:
        rng = self.rng
        op = rng.choice(("/", "%"))
        lhs = self.expression(depth + 1, symbolic_ok)
        guard = rng.randrange(100)
        if guard < 45:
            divisor = str(rng.choice((2, 3, 4, 7, 8, 10, 16, 255)))
        elif guard < 75 or not self.config.allow_trapping_division:
            # Symbolic but provably nonzero divisor.
            inner = self.expression(depth + 1, symbolic_ok)
            divisor = f"(({inner}) | {rng.choice((1, 2, 5, 8))})"
        else:
            # May trap: division by zero is a defined runtime error that
            # every level and both backends must report identically.
            divisor = self.expression(depth + 1, symbolic_ok)
        return f"({lhs} {op} {divisor})"

    def condition(self) -> str:
        symbolic_ok = self.rng.randrange(100) < \
            self.config.symbolic_condition_pct
        roll = self.rng.randrange(100)
        if roll < 45:
            op = self.rng.choice(("==", "!=", "<", "<=", ">", ">="))
            return (f"({self.expression(1, symbolic_ok)} {op} "
                    f"{self.expression(1, symbolic_ok)})")
        if roll < 70:
            op = self.rng.choice(("&&", "||"))
            return (f"({self.expression(1, symbolic_ok)} {op} "
                    f"{self.expression(1, symbolic_ok)})")
        if roll < 85 and self.scope.has_input and symbolic_ok \
                and self.config.allow_libc:
            function = self.rng.choice(_CTYPE_FUNCTIONS[:8])
            return f"{function}({self._input_byte()})"
        return self.expression(1, symbolic_ok)

    # -------------------------------------------------------- statements
    def declare_scalar(self) -> None:
        spelling, width, signed = self.rng.choice(_SCALAR_TYPES)
        name = self.fresh("v")
        init = self.expression(1)
        self.emit(f"{spelling} {name} = {init};")
        self.scope.variables.append(_Var(name, spelling, width, signed))

    def declare_array(self) -> None:
        spelling = self.rng.choice(("int", "unsigned char", "short",
                                    "unsigned int"))
        count = self.rng.choice((2, 4, 8))
        name = self.fresh("arr")
        self.emit(f"{spelling} {name}[{count}];")
        for index in range(count):
            self.emit(f"{name}[{index}] = {self.expression(2)};")
        array = _Array(name, spelling, count)
        if self.rng.random() < 0.5:
            pointer = self.fresh("p")
            offset = self.rng.randrange(count)
            base = f"{name} + {offset}" if offset else name
            self.emit(f"{spelling} *{pointer} = {base};")
            if offset:
                # Keep the window [pointer, pointer + count - offset) safe:
                # remember the base array but only the base pointer name.
                array = _Array(name, spelling, count - offset, pointer=None)
                array.pointer = pointer
            else:
                array.pointer = pointer
        self.scope.arrays.append(array)

    def declare_struct(self) -> None:
        definition = self.gen.struct_definition()
        if definition is None:
            return
        struct_name, fields = definition
        name = self.fresh("s")
        self.emit(f"struct {struct_name} {name};")
        for fname, _ in fields:
            self.emit(f"{name}.{fname} = {self.expression(2)};")
        struct = _StructVar(name, fields)
        if self.rng.random() < 0.4:
            pointer = self.fresh("ps")
            self.emit(f"struct {struct_name} *{pointer} = &{name};")
            struct.pointer = pointer
        self.scope.structs.append(struct)

    def assign(self) -> None:
        scope = self.scope
        targets: List[str] = [var.name for var in scope.variables]
        for array in scope.arrays:
            mask = array.count - 1
            if self.rng.random() < 0.5:
                index = f"({self.expression(2)}) & {mask}" if mask else "0"
            else:
                index = str(self.rng.randrange(array.count))
            targets.append(f"{array.name}[{index}]")
            if array.pointer is not None:
                targets.append(f"*({array.pointer} + "
                               f"{self.rng.randrange(array.count)})")
        for struct in scope.structs:
            fname = self.rng.choice([f for f, _ in struct.fields])
            targets.append(f"{struct.name}.{fname}")
            if struct.pointer is not None:
                targets.append(f"{struct.pointer}->{fname}")
        if not targets:
            self.declare_scalar()
            return
        target = self.rng.choice(targets)
        if self.rng.random() < 0.3:
            op = self.rng.choice(("+=", "-=", "*=", "&=", "|=", "^="))
            self.emit(f"{target} {op} {self.expression(1)};")
        else:
            self.emit(f"{target} = {self.expression(0)};")

    def accumulate(self, accumulator: str) -> None:
        mix = self.rng.choice(("31", "17", "7"))
        self.emit(f"{accumulator} = {accumulator} * {mix} + "
                  f"({self.expression(1)});")

    def nested_block(self, accumulator: str, depth: int, count: int
                     ) -> None:
        """A block in its own lexical scope: declarations made inside it
        must not be referenced after it closes."""
        scope = self.scope
        marks = (len(scope.variables), len(scope.arrays),
                 len(scope.structs))
        self.block(accumulator, depth, count)
        del scope.variables[marks[0]:]
        del scope.arrays[marks[1]:]
        del scope.structs[marks[2]:]

    def if_statement(self, accumulator: str, depth: int) -> None:
        self.emit(f"if ({self.condition()}) {{")
        self.indent += 1
        self.nested_block(accumulator, depth + 1,
                          self.rng.randrange(1, max(2, self.config.
                                                    max_block_statements -
                                                    1)))
        self.indent -= 1
        if self.rng.random() < 0.5:
            self.emit("} else {")
            self.indent += 1
            self.nested_block(accumulator, depth + 1,
                              self.rng.randrange(1, 3))
            self.indent -= 1
        self.emit("}")

    def counted_loop(self, accumulator: str, depth: int) -> None:
        name = self.fresh("i")
        trips = self.rng.randrange(1, self.config.max_trip_count + 1)
        self.emit(f"for (int {name} = 0; {name} < {trips}; "
                  f"{name} = {name} + 1) {{")
        self.indent += 1
        self.loop_depth += 1
        self.scope.variables.append(_Var(name, "int", 32, True))
        self.nested_block(accumulator, depth + 1, self.rng.randrange(1, 4))
        if self.rng.random() < 0.25:
            keyword = self.rng.choice(("break", "continue"))
            self.emit(f"if ({self.condition()}) {{ {keyword}; }}")
        self.scope.variables.pop()
        self.loop_depth -= 1
        self.indent -= 1
        self.emit("}")

    def input_walker(self, accumulator: str) -> None:
        """A bounded walk over the NUL-terminated input buffer."""
        name = self.fresh("w")
        self.emit(f"int {name} = 0;")
        self.emit(f"while (input[{name}] != 0 && {name} < len) {{")
        self.indent += 1
        self.loop_depth += 1
        byte = f"input[{name}]"
        roll = self.rng.randrange(100)
        if roll < 40 and self.config.allow_libc:
            function = self.rng.choice(_CTYPE_FUNCTIONS)
            self.emit(f"{accumulator} = {accumulator} * 31 + "
                      f"({function}({byte}) != 0);")
        elif roll < 70:
            self.emit(f"{accumulator} = {accumulator} * 17 + "
                      f"({byte} & {self.rng.choice((1, 3, 7, 15, 127))});")
        else:
            self.accumulate(accumulator)
        self.emit(f"{name} = {name} + 1;")
        self.loop_depth -= 1
        self.indent -= 1
        self.emit("}")

    def helper_call(self, accumulator: str) -> None:
        helper = self.gen.pick_helper()
        if helper is None:
            self.accumulate(accumulator)
            return
        name, arity = helper
        args = ", ".join(self.expression(1) for _ in range(arity))
        self.emit(f"{accumulator} = {accumulator} + {name}({args});")

    def libc_statement(self, accumulator: str) -> None:
        roll = self.rng.randrange(100)
        if roll < 50 and self.scope.has_input:
            self.emit(f"{accumulator} = {accumulator} + "
                      f"(int) strlen(input);")
            return
        char_arrays = [a for a in self.scope.arrays
                       if a.spelling == "unsigned char"]
        if roll < 80 and char_arrays:
            array = self.rng.choice(char_arrays)
            value = self.rng.randrange(256)
            self.emit(f"memset({array.name}, {value}, {array.count});")
            return
        self.accumulate(accumulator)

    def block(self, accumulator: str, depth: int, count: int) -> None:
        config = self.config
        for _ in range(count):
            weights: List[Tuple[int, str]] = [
                (config.w_assign, "assign"),
                (config.w_decl, "decl"),
                (config.w_acc, "acc"),
            ]
            if depth < 3:
                weights.append((config.w_if, "if"))
            if self.loop_depth < config.max_loop_depth and depth < 3:
                weights.append((config.w_loop, "loop"))
                if self.scope.has_input:
                    weights.append((config.w_walker, "walker"))
            if self.gen.helpers:
                weights.append((config.w_call, "call"))
            if config.allow_libc:
                weights.append((1, "libc"))
            total = sum(weight for weight, _ in weights)
            roll = self.rng.randrange(total)
            for weight, kind in weights:
                roll -= weight
                if roll < 0:
                    break
            if kind == "assign":
                self.assign()
            elif kind == "decl":
                roll2 = self.rng.randrange(100)
                if roll2 < 60 or not (config.allow_arrays or
                                      config.allow_structs):
                    self.declare_scalar()
                elif roll2 < 85 and config.allow_arrays:
                    self.declare_array()
                elif config.allow_structs:
                    self.declare_struct()
                else:
                    self.declare_scalar()
            elif kind == "acc":
                self.accumulate(accumulator)
            elif kind == "if":
                self.if_statement(accumulator, depth)
            elif kind == "loop":
                self.counted_loop(accumulator, depth)
            elif kind == "walker":
                self.input_walker(accumulator)
            elif kind == "call":
                self.helper_call(accumulator)
            elif kind == "libc":
                self.libc_statement(accumulator)


class _ProgramGenerator:
    def __init__(self, seed: int, config: GeneratorConfig) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.config = config
        #: (name, arity) of helpers generated so far (callable as a DAG).
        self.helpers: List[Tuple[str, int]] = []
        self.struct_defs: List[Tuple[str, Tuple[Tuple[str, str], ...]]] = []
        self.pieces: List[str] = []

    # ------------------------------------------------------------ shared
    def struct_definition(self) -> Optional[Tuple[str,
                                                  Tuple[Tuple[str, str],
                                                        ...]]]:
        """A struct definition to instantiate (creating one the first
        time); None when structs are disabled."""
        if not self.config.allow_structs:
            return None
        if not self.struct_defs or (len(self.struct_defs) < 2 and
                                    self.rng.random() < 0.3):
            name = f"S{len(self.struct_defs)}"
            count = self.rng.randrange(2, 4)
            fields = tuple(
                (f"f{index}", self.rng.choice(("int", "unsigned char",
                                               "short", "unsigned int")))
                for index in range(count))
            self.struct_defs.append((name, fields))
            lines = [f"struct {name} {{"]
            for fname, spelling in fields:
                lines.append(f"    {spelling} {fname};")
            lines.append("};")
            self.pieces.append("\n".join(lines))
        return self.rng.choice(self.struct_defs)

    def pick_helper(self) -> Optional[Tuple[str, int]]:
        if not self.helpers:
            return None
        return self.rng.choice(self.helpers)

    # -------------------------------------------------------- generation
    def _generate_helper(self, index: int) -> None:
        arity = self.rng.randrange(1, 3)
        params = []
        declarations = []
        for p in range(arity):
            spelling, width, signed = self.rng.choice(_SCALAR_TYPES[:4])
            params.append(_Var(f"a{p}", spelling, width, signed))
            declarations.append(f"{spelling} a{p}")
        name = f"helper{index}"
        builder = _FunctionBuilder(self, has_input=False, params=params)
        accumulator = builder.fresh("h")
        builder.emit(f"int {accumulator} = {builder.expression(1)};")
        builder.scope.variables.append(_Var(accumulator, "int", 32, True))
        builder.block(accumulator, 1,
                      self.rng.randrange(1, self.config.
                                         max_block_statements))
        builder.emit(f"return {accumulator};")
        body = "\n".join(builder.lines)
        self.pieces.append(f"int {name}({', '.join(declarations)}) {{\n"
                           f"{body}\n}}")
        self.helpers.append((name, arity))

    def _generate_main(self) -> None:
        builder = _FunctionBuilder(self, has_input=True, params=[])
        builder.emit("int acc = 0;")
        builder.scope.variables.append(_Var("acc", "int", 32, True))
        builder.block("acc", 0, self.rng.randrange(
            3, self.config.max_block_statements + 3))
        builder.emit("return acc;")
        body = "\n".join(builder.lines)
        self.pieces.append("int main(unsigned char *input, int len) {\n"
                           f"{body}\n}}")

    def generate(self) -> str:
        header = (f"/* fuzz seed={self.seed} "
                  f"config=[{self.config.describe()}] */")
        for index in range(self.rng.randrange(0,
                                              self.config.max_helpers + 1)):
            self._generate_helper(index)
        self._generate_main()
        return "\n\n".join([header] + self.pieces) + "\n"


def generate_program(seed: int, config: Optional[GeneratorConfig] = None
                     ) -> str:
    """Generate a well-defined MiniC program from ``(seed, config)``.

    Deterministic: equal arguments produce byte-identical source.
    """
    return _ProgramGenerator(seed, config or GeneratorConfig()).generate()
