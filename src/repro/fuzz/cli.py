"""The ``python -m repro fuzz`` subcommand.

Drives the generator/oracle/minimizer stack over a seed range:

    python -m repro fuzz --seeds 200 --jobs 4       # CI smoke budget
    python -m repro fuzz --seed 17 --minimize       # reproduce one finding
    python -m repro fuzz --check-workloads          # replay fuzz regressions

Every divergent seed is reported with a one-line repro command, and the
program plus the oracle's full report are written to ``--out`` (one
``seed<N>.c`` / ``seed<N>.txt`` pair per finding) so CI can upload them
as artifacts.  The exit status is the number of divergent seeds, capped
at 99 (0 = clean run).

Determinism: for a fixed ``(seed, config)`` the generated program and
the oracle verdict are reproducible across runs, interpreter hash seeds,
and ``--jobs`` values — results are keyed and printed in seed order, not
completion order.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import List, Optional, Tuple

from ..pipelines.levels import OptLevel
from .generator import GeneratorConfig, generate_program
from .minimize import count_statements, minimize_source
from .oracle import Divergence, OracleConfig, SeedOutcome, check_seed, check_source

#: Exploration budgets for fuzzing runs: much tighter than the library
#: defaults, so one awkward seed costs seconds, not minutes.  Truncated
#: explorations skip the exhaustive cross-checks, trading depth per seed
#: for seeds per hour.
FUZZ_ORACLE_CONFIG = OracleConfig(
    max_paths=96,
    max_instructions=200_000,
    max_forks=1_024,
    timeout_seconds=3.0,
    interp_max_steps=200_000,
    max_concrete_inputs=16,
    query_deadline_seconds=0.5,
)


def _worker(task: Tuple[int, GeneratorConfig, OracleConfig]) -> SeedOutcome:
    seed, generator_config, oracle_config = task
    return check_seed(seed, generator_config, oracle_config)


def _progress(every: int, outcomes: List[SeedOutcome],
              started: float) -> None:
    if not every or len(outcomes) % every:
        return
    bad = sum(1 for outcome in outcomes if not outcome.clean)
    print(f"  ... {len(outcomes)} seeds, {bad} divergent, "
          f"{time.time() - started:.0f}s", flush=True)


def _minimize_outcome(outcome: SeedOutcome,
                      generator_config: GeneratorConfig,
                      oracle_config: OracleConfig) -> Tuple[str, int, int]:
    """Shrink a divergent program while the same divergence kinds persist.

    Returns ``(minimized_source, before_stmts, after_stmts)``.
    """
    want_kinds = frozenset(d.kind for d in outcome.divergences)

    def still_diverges(candidate: str) -> bool:
        result = check_source(candidate, generator_config, oracle_config,
                              seed=outcome.seed)
        got = frozenset(d.kind for d in result.divergences)
        return bool(got & want_kinds)

    result = minimize_source(outcome.source, still_diverges)
    return (result.minimized_source,
            count_statements(outcome.source),
            count_statements(result.minimized_source))


def _write_finding(out_dir: str, outcome: SeedOutcome,
                   minimized: Optional[str]) -> None:
    os.makedirs(out_dir, exist_ok=True)
    stem = os.path.join(out_dir, f"seed{outcome.seed}")
    with open(stem + ".c", "w", encoding="utf-8") as handle:
        handle.write(minimized if minimized is not None else outcome.source)
    with open(stem + ".txt", "w", encoding="utf-8") as handle:
        for divergence in outcome.divergences:
            handle.write(divergence.describe() + "\n")
        handle.write(f"repro: {outcome.divergences[0].repro_command()}\n")
        if minimized is not None:
            handle.write("\n/* original (pre-minimization) program: */\n")
            handle.write(outcome.source)


def _check_workloads(oracle_config: OracleConfig,
                     generator_config: GeneratorConfig) -> int:
    """Replay the committed fuzz regression workloads through the oracle."""
    from ..workloads import all_workloads

    failures = 0
    for workload in all_workloads(category="fuzz"):
        config = GeneratorConfig(
            input_bytes=workload.default_input_bytes)
        outcome = check_source(workload.source, config, oracle_config)
        status = "clean" if outcome.clean else "DIVERGED"
        print(f"workload {workload.name}: {status}")
        for divergence in outcome.divergences:
            print(f"    {divergence.describe()}")
            failures += 1
    return failures


def fuzz_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Differential fuzzing: generate MiniC programs and "
                    "cross-check every optimization level against every "
                    "other, interp against symex, and the optimized solver "
                    "against a naive one (see docs/fuzzing.md).")
    parser.add_argument("--seeds", type=int, default=50, metavar="N",
                        help="number of seeds to run (default 50)")
    parser.add_argument("--start", type=int, default=0, metavar="N",
                        help="first seed (default 0)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="run exactly one seed (overrides --seeds)")
    parser.add_argument("--jobs", type=int, default=1, metavar="K",
                        help="worker processes (default 1)")
    parser.add_argument("--minimize", action="store_true",
                        help="shrink each divergent program to a minimal "
                             "reproducer before reporting it")
    parser.add_argument("--input-bytes", type=int, default=None, metavar="N",
                        help="symbolic input length for generated programs "
                             f"(default {GeneratorConfig().input_bytes})")
    parser.add_argument("--max-paths", type=int,
                        default=FUZZ_ORACLE_CONFIG.max_paths,
                        help="symbolic path budget per level (default "
                             f"{FUZZ_ORACLE_CONFIG.max_paths})")
    parser.add_argument("--timeout", type=float,
                        default=FUZZ_ORACLE_CONFIG.timeout_seconds,
                        help="per-exploration timeout in seconds (default "
                             f"{FUZZ_ORACLE_CONFIG.timeout_seconds:g})")
    parser.add_argument("--max-concrete-inputs", type=int,
                        default=FUZZ_ORACLE_CONFIG.max_concrete_inputs,
                        metavar="N",
                        help="cap on cross-level concrete replay inputs; "
                             "the dominant per-seed cost (default "
                             f"{FUZZ_ORACLE_CONFIG.max_concrete_inputs})")
    parser.add_argument("--no-solver-matrix", action="store_true",
                        help="skip the optimized-vs-naive solver matrix "
                             "(faster, checks levels only)")
    parser.add_argument("--relcheck", action="store_true",
                        help="also translation-validate -O0 vs -OVERIFY "
                             "per seed with the relcheck product driver "
                             "(oracle family 6; slower but *proves* "
                             "return-value and trap-set agreement)")
    parser.add_argument("--out", default="fuzz-findings", metavar="DIR",
                        help="directory for divergence artifacts "
                             "(default fuzz-findings/)")
    parser.add_argument("--progress", type=int, default=0, metavar="N",
                        help="print a progress line every N seeds "
                             "(default 0 = only the final summary)")
    parser.add_argument("--emit", action="store_true",
                        help="print each generated program instead of "
                             "checking it (debugging aid)")
    parser.add_argument("--check-workloads", action="store_true",
                        help="run the oracle over the committed fuzz "
                             "regression workloads instead of new seeds")
    args = parser.parse_args(argv)

    generator_config = GeneratorConfig() if args.input_bytes is None \
        else GeneratorConfig(input_bytes=args.input_bytes)
    oracle_config = OracleConfig(
        max_paths=args.max_paths,
        max_instructions=FUZZ_ORACLE_CONFIG.max_instructions,
        max_forks=FUZZ_ORACLE_CONFIG.max_forks,
        timeout_seconds=args.timeout,
        interp_max_steps=FUZZ_ORACLE_CONFIG.interp_max_steps,
        max_concrete_inputs=args.max_concrete_inputs,
        query_deadline_seconds=FUZZ_ORACLE_CONFIG.query_deadline_seconds,
        check_solver_matrix=not args.no_solver_matrix,
        check_relcheck=args.relcheck,
    )

    if args.check_workloads:
        return min(_check_workloads(oracle_config, generator_config), 99)

    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.start, args.start + args.seeds))

    if args.emit:
        for seed in seeds:
            print(generate_program(seed, generator_config))
        return 0

    started = time.time()
    tasks = [(seed, generator_config, oracle_config) for seed in seeds]
    outcomes: List[SeedOutcome] = []
    if args.jobs > 1 and len(tasks) > 1:
        import multiprocessing

        with multiprocessing.Pool(args.jobs) as pool:
            for outcome in pool.imap(_worker, tasks, chunksize=1):
                outcomes.append(outcome)
                _progress(args.progress, outcomes, started)
    else:
        for task in tasks:
            outcomes.append(_worker(task))
            _progress(args.progress, outcomes, started)

    divergent = 0
    truncated = 0
    for outcome in outcomes:
        if outcome.truncated:
            truncated += 1
        if outcome.clean:
            continue
        divergent += 1
        print(f"seed {outcome.seed}: DIVERGED "
              f"({len(outcome.divergences)} divergence(s))")
        for divergence in outcome.divergences:
            print(f"    [{divergence.kind}] {divergence.detail}")
        minimized: Optional[str] = None
        if args.minimize:
            minimized, before, after = _minimize_outcome(
                outcome, generator_config, oracle_config)
            print(f"    minimized {before} -> {after} statements:")
            for line in minimized.splitlines():
                print(f"      {line}")
        _write_finding(args.out, outcome, minimized)
        print(f"    repro: {outcome.divergences[0].repro_command()}")
        print(f"    artifacts: {args.out}/seed{outcome.seed}.c")

    elapsed = time.time() - started
    print(f"fuzz: {len(seeds)} seed(s), {len(seeds) - divergent} clean, "
          f"{divergent} divergent, {truncated} truncated, {elapsed:.1f}s")
    return min(divergent, 99)
