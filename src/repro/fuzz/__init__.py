"""Differential fuzzing for the whole compilation stack.

The fuzzer closes the gap between the ~40 hand-written workloads and the
space of programs the optimization levels must preserve: a seeded MiniC
program :mod:`generator <repro.fuzz.generator>` produces well-defined
random programs, the differential :mod:`oracle <repro.fuzz.oracle>`
compiles each one at all five levels and cross-checks every backend and
solver configuration against every other, and the
:mod:`minimizer <repro.fuzz.minimize>` shrinks any divergence into a
committed regression workload (see ``docs/fuzzing.md``).

Drive it from the command line::

    python -m repro fuzz --seeds 200 --jobs 4
    python -m repro fuzz --seed 1234 --minimize

Generation is deterministic from ``(seed, GeneratorConfig)`` alone, so a
seed number in a CI log *is* the reproduction recipe.
"""

from .generator import GeneratorConfig, generate_program
from .oracle import (
    Divergence, OracleConfig, SeedOutcome, check_seed, check_source,
)
from .minimize import MinimizationResult, minimize_source

__all__ = [
    "Divergence",
    "GeneratorConfig",
    "MinimizationResult",
    "OracleConfig",
    "SeedOutcome",
    "check_seed",
    "check_source",
    "generate_program",
    "minimize_source",
]
