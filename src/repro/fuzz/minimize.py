"""AST-level divergence minimizer (greedy delta reduction).

Given a program and an *interestingness* predicate (for the CLI: "the
oracle still reports an equivalent divergence"), the minimizer repeatedly
tries structure-shrinking edits — drop a function, drop a statement,
replace an ``if`` with one of its arms, unwrap a loop body, replace an
expression with a subexpression or a literal, widen a declaration to
plain ``int`` — keeping each edit whose result still satisfies the
predicate, until a fixed point.  Every candidate is re-rendered from the
AST (:mod:`repro.fuzz.render`), so candidates are always syntactically
valid; semantic validity (a dropped declaration whose uses remain) is
filtered by a cheap compile check before the predicate runs.

The reduction is greedy and deterministic: edits are enumerated in a
fixed structural order, and the first accepted edit restarts the scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..frontend import ast, parse
from ..frontend.ctype import INT
from ..pipelines.levels import OptLevel
from ..pipelines.session import CompilerSession
from .render import render_program

#: Fields of each statement/expression node that hold child expressions.
_EXPR_FIELDS = {
    ast.ExprStmt: ("expr",),
    ast.Declaration: ("initializer",),
    ast.If: ("condition",),
    ast.While: ("condition",),
    ast.DoWhile: ("condition",),
    ast.For: ("condition", "step"),
    ast.Return: ("value",),
    ast.UnaryOp: ("operand",),
    ast.PostfixOp: ("operand",),
    ast.BinaryOp: ("lhs", "rhs"),
    ast.LogicalOp: ("lhs", "rhs"),
    ast.Assignment: ("value",),   # never touch the target (an lvalue)
    ast.Conditional: ("condition", "then", "otherwise"),
    ast.Index: ("index",),        # never touch the base (an lvalue)
    ast.Cast: ("operand",),
    ast.SizeOf: ("operand",),
}

#: Subexpressions an expression may be replaced by (must stay value-like,
#: so lvalue bases of Index/Member and assignment targets are excluded).
_SHRINK_CHILDREN = {
    ast.UnaryOp: ("operand",),
    ast.BinaryOp: ("lhs", "rhs"),
    ast.LogicalOp: ("lhs", "rhs"),
    ast.Conditional: ("then", "otherwise"),
    ast.Cast: ("operand",),
}


@dataclass
class MinimizationResult:
    original_source: str
    minimized_source: str
    rounds: int
    candidates_tried: int
    candidates_accepted: int

    @property
    def reduced(self) -> bool:
        return self.candidates_accepted > 0


def count_statements(source: str) -> int:
    """Statements in a program (the minimizer-convergence metric)."""
    unit = parse(source)
    count = 0

    def visit_stmt(stmt: ast.Stmt) -> None:
        nonlocal count
        count += 1
        if isinstance(stmt, ast.Block):
            count -= 1  # the braces themselves are not a statement
            for inner in stmt.statements:
                visit_stmt(inner)
        elif isinstance(stmt, ast.If):
            visit_stmt(stmt.then)
            if stmt.otherwise is not None:
                visit_stmt(stmt.otherwise)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            visit_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                visit_stmt(stmt.init)
            visit_stmt(stmt.body)

    for function in unit.functions:
        if function.body is not None:
            visit_stmt(function.body)
    return count


def _statement_lists(unit: ast.TranslationUnit
                     ) -> Iterator[List[ast.Stmt]]:
    """Every mutable statement list in the program, outermost first."""
    pending: List[ast.Stmt] = []
    for function in unit.functions:
        if function.body is not None:
            pending.append(function.body)
    while pending:
        stmt = pending.pop(0)
        if isinstance(stmt, ast.Block):
            yield stmt.statements
            pending.extend(stmt.statements)
        elif isinstance(stmt, ast.If):
            pending.append(stmt.then)
            if stmt.otherwise is not None:
                pending.append(stmt.otherwise)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            pending.append(stmt.body)
        elif isinstance(stmt, ast.For):
            pending.append(stmt.body)


def _nodes(unit: ast.TranslationUnit) -> Iterator[ast.Node]:
    """Every statement and expression node, preorder, fixed order."""
    pending: List[ast.Node] = []
    for function in unit.functions:
        if function.body is not None:
            pending.append(function.body)
    while pending:
        node = pending.pop(0)
        yield node
        if isinstance(node, ast.Block):
            pending.extend(node.statements)
            continue
        for name in _EXPR_FIELDS.get(type(node), ()):
            child = getattr(node, name, None)
            if child is not None:
                pending.append(child)
        if isinstance(node, ast.If):
            pending.append(node.then)
            if node.otherwise is not None:
                pending.append(node.otherwise)
        elif isinstance(node, (ast.While, ast.DoWhile)):
            pending.append(node.body)
        elif isinstance(node, ast.For):
            if node.init is not None:
                pending.append(node.init)
            pending.append(node.body)
        elif isinstance(node, ast.Assignment):
            pending.append(node.target)
        elif isinstance(node, (ast.Index, ast.Member)):
            pending.append(node.base)
        elif isinstance(node, ast.Call):
            pending.extend(node.args)


def _edits(unit: ast.TranslationUnit) -> Iterator[Callable[[], None]]:
    """Enumerate undo-free shrinking edits, coarsest first.

    Each yielded thunk mutates ``unit`` in place; the caller works on a
    deep copy per candidate, so no undo is needed.
    """
    # 1. Drop whole helper functions and struct definitions.
    for index in range(len(unit.functions) - 1, -1, -1):
        if unit.functions[index].name != "main":
            yield lambda i=index: unit.functions.pop(i)
    for index in range(len(unit.structs) - 1, -1, -1):
        yield lambda i=index: unit.structs.pop(i)
    for index in range(len(unit.globals) - 1, -1, -1):
        yield lambda i=index: unit.globals.pop(i)
    # 2. Drop statements (skip a lone trailing return).
    for statements in _statement_lists(unit):
        for index in range(len(statements) - 1, -1, -1):
            if isinstance(statements[index], ast.Return):
                continue
            yield lambda lst=statements, i=index: lst.pop(i)
    # 3. Structural rewrites of compound statements.
    for statements in _statement_lists(unit):
        for index, stmt in enumerate(statements):
            if isinstance(stmt, ast.If):
                yield (lambda lst=statements, i=index, s=stmt:
                       lst.__setitem__(i, s.then))
                if stmt.otherwise is not None:
                    yield (lambda lst=statements, i=index, s=stmt:
                           lst.__setitem__(i, s.otherwise))
                    yield (lambda s=stmt: setattr(s, "otherwise", None))
            elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
                yield (lambda lst=statements, i=index, s=stmt:
                       lst.__setitem__(i, s.body))
    # 4. Shrink expressions: replace with a subexpression, then literals.
    for node in _nodes(unit):
        for name in _EXPR_FIELDS.get(type(node), ()):
            child = getattr(node, name, None)
            if child is None or isinstance(child, ast.IntLiteral):
                continue
            for grand_name in _SHRINK_CHILDREN.get(type(child), ()):
                grand = getattr(child, grand_name, None)
                if grand is not None:
                    yield (lambda n=node, f=name, g=grand:
                           setattr(n, f, g))
            for value in (0, 1):
                yield (lambda n=node, f=name, v=value:
                       setattr(n, f, ast.IntLiteral(value=v)))
    # 5. Simplify declaration types to plain int.
    for node in _nodes(unit):
        if isinstance(node, ast.Declaration) and node.var_type != INT:
            yield lambda n=node: setattr(n, "var_type", INT)


def _compiles(source: str) -> bool:
    try:
        CompilerSession().compile(source, level=OptLevel.O0)
    except Exception:
        return False
    return True


def minimize_source(source: str,
                    is_interesting: Callable[[str], bool],
                    max_rounds: int = 50,
                    compile_check: bool = True) -> MinimizationResult:
    """Greedily shrink ``source`` while ``is_interesting`` holds.

    ``is_interesting`` receives candidate source text and must return
    True when the property being chased (for the CLI: "the oracle still
    reports the same divergence") is still present.  The input program
    itself must satisfy the predicate.
    """
    unit = parse(source)
    current = render_program(unit)
    if not is_interesting(current):
        # Rendering is behavior-preserving; if re-rendering already loses
        # the property, minimize the raw text's parse no further.
        return MinimizationResult(source, source, 0, 1, 0)
    tried = 1
    accepted = 0
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        improved = False
        edit_count = sum(1 for _ in _edits(parse(current)))
        for edit_index in range(edit_count):
            candidate_unit = parse(current)
            for index, edit in enumerate(_edits(candidate_unit)):
                if index == edit_index:
                    edit()
                    break
            else:
                continue
            try:
                candidate = render_program(candidate_unit)
            except TypeError:
                continue
            if candidate == current:
                continue
            if compile_check and not _compiles(candidate):
                continue
            tried += 1
            if is_interesting(candidate):
                current = candidate
                accepted += 1
                improved = True
                break  # restart the scan on the smaller program
        if not improved:
            break
    return MinimizationResult(source, current, rounds, tried, accepted)
