"""Differential oracle: every level and backend against every other.

For one generated program the oracle runs six families of checks (the
last opt-in), each one a semantics-preservation claim the optimization
levels make:

1. **Compile**: all five levels must accept the program (the generator
   only emits well-formed MiniC, so a level-specific compile error is a
   pass bug), and every compiled module must pass the full SSA dominance
   verifier — the per-pass structural checks skip dominance for speed, and
   the first bug this fuzzer found was exactly a pass leaving a
   non-dominating use behind.
2. **Per-level replay** (interp vs symex): every path the symbolic
   executor completes carries a solver-model ``test_input``; replaying it
   concretely on the *same* module must reach the same outcome (no crash
   for a completed path, matching constant return value, and the same
   error kind for every bug report's trigger input).
3. **Cross-level concrete** (level vs level): the union of all
   symex-derived test inputs plus a fixed boundary-value set must produce
   the same ``(crashed, error kind, return value)`` triple at every
   level.
4. **Cross-level bug sets**: when every level explored exhaustively, the
   set of bug *kinds* must agree (locations legitimately move under
   inlining, so full signatures are only compared within one module).
5. **Solver flag matrix** (optimized vs naive solver): re-exploring one
   module with the solver's optimization layers disabled must reproduce
   the same path count, the same bug signatures, and the same multiset of
   path outcomes — the same claim
   ``tests/test_solver_differential.py`` makes per query, made
   whole-program.
6. **Cross-level translation validation** (opt-in, ``--relcheck``): the
   relcheck product driver (:mod:`repro.relcheck`) *proves* one level
   pair path-equivalent on the same symbolic input — per-path return
   values discharged by the solver and trap-set agreement, where family
   3 only samples concrete inputs.  Every relcheck divergence carries a
   concrete counterexample input.

Engine failures (``stats.engine_errors`` / ``report.diagnostics``) are
divergences in their own right: the oracle's subject includes the
engines.

Path *counts* across levels are deliberately **not** compared — reshaping
the path space is the whole point of the levels (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..interp.errors import ErrorKind
from ..interp.interpreter import ExecutionResult, run_module
from ..ir import verify_module, verify_ssa_dominance
from ..pipelines.levels import OptLevel
from ..pipelines.session import CompilerSession
from ..symex.executor import SymexLimits, SymexReport, explore
from ..symex.solver import Solver, SolverConfig
from ..symex.state import StateStatus
from .generator import GeneratorConfig, generate_program

#: Solver with every optimization layer off — the reference
#: implementation the optimized stack is differenced against (kept in
#: sync with ``tests/test_solver_differential.py``).
NAIVE_SOLVER_CONFIG = SolverConfig(
    independence=False, cache=False, ubtree=False,
    rewrite_equalities=False, branch_and_prune=False)

#: A deliberately lopsided mix: caching layers on, pruning layers off —
#: catches bugs that only show when the layers interact.
MIXED_SOLVER_CONFIG = SolverConfig(
    independence=True, cache=True, ubtree=False,
    rewrite_equalities=False, branch_and_prune=True, seeded_splits=False)


@dataclass(frozen=True)
class OracleConfig:
    """Budgets and toggles for one seed's worth of checking."""

    searcher: str = "bfs"
    max_paths: int = 256
    max_instructions: int = 2_000_000
    max_forks: int = 4_096
    timeout_seconds: float = 60.0
    interp_max_steps: int = 2_000_000
    #: Cap on the deduplicated input set the cross-level concrete check
    #: replays (boundary inputs come first, then symex-derived ones in
    #: path order, so the cap drops only the tail).  Each input costs one
    #: interpreter run per level.
    max_concrete_inputs: int = 24
    #: Per-solver-query wall-clock cap.  The generated hash-accumulator
    #: constraints occasionally hand the backtracking solver a needle it
    #: would chase for minutes; an expired deadline degrades to the
    #: conservative "maybe satisfiable" answer, and the oracle marks the
    #: level truncated so no exhaustive comparison trusts it.
    query_deadline_seconds: float = 1.0
    #: Module the solver flag matrix re-explores (the level with the
    #: richest pipeline).
    matrix_level: OptLevel = OptLevel.OVERIFY
    check_solver_matrix: bool = True
    #: Named alternative solver configurations for the matrix.
    solver_matrix: Tuple[Tuple[str, SolverConfig], ...] = (
        ("naive", NAIVE_SOLVER_CONFIG),
        ("mixed", MIXED_SOLVER_CONFIG),
    )
    #: Family 6 (opt-in, each seed costs an extra product exploration):
    #: prove ``relcheck_pair`` path-equivalent with the relcheck product
    #: driver instead of merely sampling concrete inputs.
    check_relcheck: bool = False
    relcheck_pair: Tuple[OptLevel, OptLevel] = (OptLevel.O0,
                                                OptLevel.OVERIFY)
    #: Trap-kind values whose deletion by the optimized level is licensed
    #: (forwarded to :attr:`~repro.relcheck.RelcheckConfig.trap_whitelist`).
    relcheck_trap_whitelist: Tuple[str, ...] = ()

    def limits(self) -> SymexLimits:
        return SymexLimits(max_paths=self.max_paths,
                           max_instructions=self.max_instructions,
                           max_forks=self.max_forks,
                           timeout_seconds=self.timeout_seconds)


@dataclass
class Divergence:
    """One observed disagreement, with everything needed to reproduce it."""

    kind: str        # "compile" | "replay" | "concrete" | "bug-set" |
                     # "solver-matrix" | "relcheck" | "engine"
    detail: str
    seed: Optional[int] = None
    source: str = ""

    def repro_command(self) -> str:
        if self.seed is None:
            return "(no seed: divergence found via check_source)"
        return f"python -m repro fuzz --seed {self.seed} --minimize"

    def describe(self) -> str:
        prefix = f"seed {self.seed}: " if self.seed is not None else ""
        return f"{prefix}[{self.kind}] {self.detail}"


@dataclass
class SeedOutcome:
    """Everything the oracle learned about one program."""

    seed: Optional[int]
    source: str
    divergences: List[Divergence] = field(default_factory=list)
    path_counts: Dict[str, int] = field(default_factory=dict)
    #: True when some level's exploration hit a resource limit; the
    #: exhaustive cross-level comparisons are skipped for such seeds.
    truncated: bool = False

    @property
    def clean(self) -> bool:
        return not self.divergences


def _normalize_kind(kind: ErrorKind) -> str:
    """Bug kinds comparable across levels.

    ``runtime-checks`` (OVERIFY only) turns a would-be null dereference
    into an explicit CHECK_FAILURE; both spell "this pointer was null".
    """
    if kind is ErrorKind.CHECK_FAILURE:
        return ErrorKind.NULL_DEREFERENCE.value
    return kind.value


def _concrete_outcome(result: ExecutionResult) -> Tuple[str, ...]:
    """The comparable fingerprint of one concrete run."""
    if result.error is not None:
        return ("error", _normalize_kind(result.error.kind))
    value = result.return_value
    return ("ok", "" if value is None else str(value & 0xFFFFFFFF))


def _ordered_unique(items: Sequence[bytes]) -> List[bytes]:
    seen: List[bytes] = []
    for item in items:
        if item not in seen:
            seen.append(item)
    return seen


def _path_fingerprint(report: SymexReport) -> Tuple[Tuple[str, str], ...]:
    """Order-independent multiset of path outcomes for matrix compares."""
    records = []
    for path in report.paths:
        value = "" if path.return_value is None else str(path.return_value)
        records.append((path.status.value, value))
    return tuple(sorted(records))


class _Oracle:
    def __init__(self, seed: Optional[int], source: str,
                 generator_config: GeneratorConfig,
                 config: OracleConfig) -> None:
        self.seed = seed
        self.source = source
        self.generator_config = generator_config
        self.config = config
        self.outcome = SeedOutcome(seed=seed, source=source)

    def diverge(self, kind: str, detail: str) -> None:
        self.outcome.divergences.append(
            Divergence(kind=kind, detail=detail, seed=self.seed,
                       source=self.source))

    # ----------------------------------------------------------- phases
    def compile_all(self) -> Dict[OptLevel, object]:
        session = CompilerSession()
        modules: Dict[OptLevel, object] = {}
        for level in OptLevel:
            try:
                module = session.compile(self.source, level=level).module
                verify_module(module)
                verify_ssa_dominance(module)
                modules[level] = module
            except Exception as error:  # CompileError and anything worse
                self.diverge(
                    "compile",
                    f"{level} failed to compile a generated program: "
                    f"{type(error).__name__}: {error}")
        return modules

    def explore_level(self, level: OptLevel, module) -> SymexReport:
        report = explore(module, self.generator_config.input_bytes,
                         searcher=self.config.searcher,
                         limits=self.config.limits(),
                         solver=self._make_solver(None))
        self.outcome.path_counts[str(level)] = report.stats.total_paths
        if report.stats.termination_reason or \
                report.solver_stats.query_deadlines:
            self.outcome.truncated = True
        if report.stats.engine_errors or report.diagnostics:
            notes = "; ".join(report.diagnostics[:3])
            self.diverge(
                "engine",
                f"{level}: {report.stats.engine_errors} engine-error "
                f"path(s): {notes}")
        return report

    def replay_level(self, level: OptLevel, module,
                     report: SymexReport) -> None:
        """Interp-vs-symex agreement on the symex's own test inputs."""
        for path in report.paths:
            if path.test_input is None:
                continue
            result = self._run(module, path.test_input)
            if path.status is StateStatus.COMPLETED:
                if result.error is not None:
                    self.diverge(
                        "replay",
                        f"{level}: symex completed on input "
                        f"{path.test_input!r} but interp raised "
                        f"{result.error.kind.value}")
                elif (path.return_value is not None and
                      result.return_value is not None and
                      path.return_value != result.return_value):
                    self.diverge(
                        "replay",
                        f"{level}: input {path.test_input!r} returned "
                        f"{result.return_value} under interp but symex "
                        f"proved {path.return_value}")
        for bug in report.bugs:
            if bug.test_input is None:
                continue
            result = self._run(module, bug.test_input)
            if result.error is None:
                self.diverge(
                    "replay",
                    f"{level}: symex reported {bug.kind.value} on input "
                    f"{bug.test_input!r} but interp completed "
                    f"(returned {result.return_value})")
            elif _normalize_kind(result.error.kind) != \
                    _normalize_kind(bug.kind):
                self.diverge(
                    "replay",
                    f"{level}: input {bug.test_input!r} raised "
                    f"{result.error.kind.value} under interp but symex "
                    f"reported {bug.kind.value}")

    def cross_level_concrete(self, modules: Dict[OptLevel, object],
                             reports: Dict[OptLevel, SymexReport]) -> None:
        inputs: List[bytes] = list(self.generator_config.concrete_inputs())
        for level in OptLevel:
            report = reports.get(level)
            if report is None:
                continue
            for path in report.paths:
                if path.test_input is not None:
                    inputs.append(path.test_input)
            for bug in report.bugs:
                if bug.test_input is not None:
                    inputs.append(bug.test_input)
        capped = _ordered_unique(inputs)[:self.config.max_concrete_inputs]
        for data in capped:
            outcomes: List[Tuple[OptLevel, Tuple[str, ...]]] = []
            for level in OptLevel:
                module = modules.get(level)
                if module is None:
                    continue
                result = self._run(module, data)
                if (result.error is not None and
                        result.error.kind is ErrorKind.STEP_LIMIT):
                    break  # budget artifact, not semantics: skip input
                outcomes.append((level, _concrete_outcome(result)))
            else:
                if not outcomes:  # nothing compiled: reported as "compile"
                    continue
                baseline = outcomes[0]
                for level, outcome in outcomes[1:]:
                    if outcome != baseline[1]:
                        self.diverge(
                            "concrete",
                            f"input {data!r}: {baseline[0]} -> "
                            f"{baseline[1]} but {level} -> {outcome}")
                        break

    def cross_level_bugs(self, reports: Dict[OptLevel, SymexReport]
                         ) -> None:
        if self.outcome.truncated or len(reports) != len(OptLevel):
            return  # a truncated exploration may simply not have reached
                    # a bug; only exhaustive runs are comparable
        kind_sets = {
            level: frozenset(_normalize_kind(bug.kind)
                             for bug in report.bugs)
            for level, report in reports.items()
        }
        baseline_level = OptLevel.O0
        baseline = kind_sets[baseline_level]
        for level in OptLevel:
            if kind_sets[level] != baseline:
                self.diverge(
                    "bug-set",
                    f"bug kinds differ: {baseline_level} found "
                    f"{sorted(baseline) or '[]'} but {level} found "
                    f"{sorted(kind_sets[level]) or '[]'}")

    def solver_matrix(self, modules: Dict[OptLevel, object],
                      reports: Dict[OptLevel, SymexReport]) -> None:
        if not self.config.check_solver_matrix:
            return
        level = self.config.matrix_level
        module = modules.get(level)
        baseline = reports.get(level)
        if module is None or baseline is None:
            return
        if baseline.stats.termination_reason or \
                baseline.solver_stats.query_deadlines:
            return  # truncation points depend on exploration order
        want_paths = baseline.stats.total_paths
        want_bugs = baseline.bug_signatures()
        want_fingerprint = _path_fingerprint(baseline)
        for name, solver_config in self.config.solver_matrix:
            report = explore(module, self.generator_config.input_bytes,
                             searcher=self.config.searcher,
                             limits=self.config.limits(),
                             solver=self._make_solver(solver_config))
            if report.stats.termination_reason or \
                    report.solver_stats.query_deadlines:
                continue
            if report.stats.total_paths != want_paths:
                self.diverge(
                    "solver-matrix",
                    f"{level} with {name} solver explored "
                    f"{report.stats.total_paths} paths, default explored "
                    f"{want_paths}")
            if report.bug_signatures() != want_bugs:
                self.diverge(
                    "solver-matrix",
                    f"{level} with {name} solver found bugs "
                    f"{sorted(report.bug_signatures())}, default found "
                    f"{sorted(want_bugs)}")
            if _path_fingerprint(report) != want_fingerprint:
                self.diverge(
                    "solver-matrix",
                    f"{level} with {name} solver produced a different "
                    f"path-outcome multiset than the default solver")

    def relcheck_levels(self, modules: Dict[OptLevel, object]) -> None:
        """Family 6: prove the configured pair path-equivalent."""
        if not self.config.check_relcheck:
            return
        # Imported lazily: the oracle's default families must not pull
        # the product driver in.
        from ..relcheck import RelcheckConfig, relcheck_modules
        level_a, level_b = self.config.relcheck_pair
        module_a = modules.get(level_a)
        module_b = modules.get(level_b)
        if module_a is None or module_b is None:
            return  # already reported as a "compile" divergence
        relcheck_config = RelcheckConfig(
            input_bytes=self.generator_config.input_bytes,
            max_paths=self.config.max_paths,
            max_instructions=self.config.max_instructions,
            max_forks=self.config.max_forks,
            timeout_seconds=self.config.timeout_seconds,
            query_deadline_seconds=self.config.query_deadline_seconds,
            trap_whitelist=frozenset(self.config.relcheck_trap_whitelist))
        report = relcheck_modules(module_a, module_b,
                                  config=relcheck_config,
                                  pair=(str(level_a), str(level_b)))
        if report.truncated:
            self.outcome.truncated = True
        for divergence in report.divergences:
            witness = "" if divergence.counterexample is None \
                else f" (input {divergence.counterexample.hex()})"
            self.diverge(
                "relcheck",
                f"{level_a} vs {level_b}: [{divergence.kind}] "
                f"{divergence.detail}{witness}")

    # ---------------------------------------------------------- helpers
    def _make_solver(self, base: Optional[SolverConfig]) -> Solver:
        config = base if base is not None else SolverConfig()
        return Solver(config=replace(
            config,
            query_deadline_seconds=self.config.query_deadline_seconds))

    def _run(self, module, data: bytes) -> ExecutionResult:
        return run_module(module, data,
                          max_steps=self.config.interp_max_steps)

    def run(self) -> SeedOutcome:
        modules = self.compile_all()
        reports: Dict[OptLevel, SymexReport] = {}
        for level in OptLevel:
            module = modules.get(level)
            if module is None:
                continue
            reports[level] = self.explore_level(level, module)
            self.replay_level(level, module, reports[level])
        self.cross_level_concrete(modules, reports)
        self.cross_level_bugs(reports)
        self.relcheck_levels(modules)
        self.solver_matrix(modules, reports)
        return self.outcome


def check_source(source: str,
                 generator_config: Optional[GeneratorConfig] = None,
                 config: Optional[OracleConfig] = None,
                 seed: Optional[int] = None) -> SeedOutcome:
    """Run the full oracle matrix over one MiniC program."""
    return _Oracle(seed, source, generator_config or GeneratorConfig(),
                   config or OracleConfig()).run()


def check_seed(seed: int,
               generator_config: Optional[GeneratorConfig] = None,
               config: Optional[OracleConfig] = None) -> SeedOutcome:
    """Generate the program for ``seed`` and run the oracle over it."""
    generator_config = generator_config or GeneratorConfig()
    source = generate_program(seed, generator_config)
    return check_source(source, generator_config, config, seed=seed)
