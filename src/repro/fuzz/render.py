"""Render a frontend AST back to compilable MiniC source.

The minimizer edits programs as ASTs (drop a statement, replace an
expression with a literal) and needs to turn each candidate back into
text for the oracle.  Rendering is deliberately over-parenthesized —
every composite expression gets its own parentheses — so no operator
precedence reasoning is needed and the output is always re-parsable.

``parse(render(parse(s)))`` is structurally the identity for the MiniC
subset the fuzzer generates.
"""

from __future__ import annotations

from typing import List

from ..frontend import ast
from ..frontend.ctype import CArray, CPointer, CType


def declare(ctype: CType, name: str) -> str:
    """C declarator spelling for ``name`` of type ``ctype``
    (``int *p``, ``short a[4]``, ``struct S s``)."""
    if isinstance(ctype, CArray):
        return declare(ctype.element, f"{name}[{ctype.count}]")
    if isinstance(ctype, CPointer):
        return declare(ctype.pointee, f"*{name}")
    return f"{ctype} {name}"


def _string_literal(value: bytes) -> str:
    parts = []
    for byte in value:
        if byte in (0x22, 0x5C):  # " and backslash
            parts.append("\\" + chr(byte))
        elif 0x20 <= byte < 0x7F:
            parts.append(chr(byte))
        else:
            parts.append(f"\\x{byte:02x}")
    return '"' + "".join(parts) + '"'


def render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLiteral):
        return f"({expr.value})" if expr.value < 0 else str(expr.value)
    if isinstance(expr, ast.CharLiteral):
        return str(expr.value)
    if isinstance(expr, ast.StringLiteral):
        return _string_literal(expr.value)
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, ast.PostfixOp):
        return f"({render_expr(expr.operand)}{expr.op})"
    if isinstance(expr, ast.BinaryOp):
        if expr.op == ",":
            return f"({render_expr(expr.lhs)}, {render_expr(expr.rhs)})"
        return (f"({render_expr(expr.lhs)} {expr.op} "
                f"{render_expr(expr.rhs)})")
    if isinstance(expr, ast.LogicalOp):
        return (f"({render_expr(expr.lhs)} {expr.op} "
                f"{render_expr(expr.rhs)})")
    if isinstance(expr, ast.Assignment):
        return (f"({render_expr(expr.target)} {expr.op} "
                f"{render_expr(expr.value)})")
    if isinstance(expr, ast.Conditional):
        return (f"({render_expr(expr.condition)} ? "
                f"{render_expr(expr.then)} : "
                f"{render_expr(expr.otherwise)})")
    if isinstance(expr, ast.Call):
        args = ", ".join(render_expr(arg) for arg in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.Index):
        return f"{render_expr(expr.base)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.Member):
        join = "->" if expr.is_arrow else "."
        return f"{render_expr(expr.base)}{join}{expr.field_name}"
    if isinstance(expr, ast.Cast):
        return f"(({expr.target_type}) {render_expr(expr.operand)})"
    if isinstance(expr, ast.SizeOf):
        if expr.target_type is not None:
            return f"sizeof({expr.target_type})"
        return f"sizeof({render_expr(expr.operand)})"
    raise TypeError(f"unrenderable expression {type(expr).__name__}")


def _render_stmt(stmt: ast.Stmt, indent: int, out: List[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, ast.ExprStmt):
        out.append(f"{pad}{render_expr(stmt.expr)};")
    elif isinstance(stmt, ast.Declaration):
        text = declare(stmt.var_type, stmt.name)
        if stmt.initializer is not None:
            text += f" = {render_expr(stmt.initializer)}"
        out.append(f"{pad}{text};")
    elif isinstance(stmt, ast.Block):
        out.append(f"{pad}{{")
        for inner in stmt.statements:
            _render_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, ast.If):
        out.append(f"{pad}if ({render_expr(stmt.condition)})")
        _render_stmt(_blockify(stmt.then), indent, out)
        if stmt.otherwise is not None:
            out.append(f"{pad}else")
            _render_stmt(_blockify(stmt.otherwise), indent, out)
    elif isinstance(stmt, ast.While):
        out.append(f"{pad}while ({render_expr(stmt.condition)})")
        _render_stmt(_blockify(stmt.body), indent, out)
    elif isinstance(stmt, ast.DoWhile):
        out.append(f"{pad}do")
        _render_stmt(_blockify(stmt.body), indent, out)
        out.append(f"{pad}while ({render_expr(stmt.condition)});")
    elif isinstance(stmt, ast.For):
        init = ""
        if isinstance(stmt.init, ast.Declaration):
            init = declare(stmt.init.var_type, stmt.init.name)
            if stmt.init.initializer is not None:
                init += f" = {render_expr(stmt.init.initializer)}"
        elif isinstance(stmt.init, ast.ExprStmt):
            init = render_expr(stmt.init.expr)
        condition = ("" if stmt.condition is None
                     else render_expr(stmt.condition))
        step = "" if stmt.step is None else render_expr(stmt.step)
        out.append(f"{pad}for ({init}; {condition}; {step})")
        _render_stmt(_blockify(stmt.body), indent, out)
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            out.append(f"{pad}return;")
        else:
            out.append(f"{pad}return {render_expr(stmt.value)};")
    elif isinstance(stmt, ast.Break):
        out.append(f"{pad}break;")
    elif isinstance(stmt, ast.Continue):
        out.append(f"{pad}continue;")
    elif isinstance(stmt, ast.EmptyStmt):
        out.append(f"{pad};")
    else:
        raise TypeError(f"unrenderable statement {type(stmt).__name__}")


def _blockify(stmt: ast.Stmt) -> ast.Block:
    if isinstance(stmt, ast.Block):
        return stmt
    return ast.Block(statements=[stmt])


def render_program(unit: ast.TranslationUnit) -> str:
    """Render a translation unit back to MiniC source text."""
    pieces: List[str] = []
    for struct in unit.structs:
        lines = [f"struct {struct.name} {{"]
        for fname, ftype in zip(struct.field_names, struct.field_types):
            lines.append(f"    {declare(ftype, fname)};")
        lines.append("};")
        pieces.append("\n".join(lines))
    for decl in unit.globals:
        text = declare(decl.var_type, decl.name)
        if decl.is_const:
            text = f"const {text}"
        if decl.initializer is not None:
            text += f" = {render_expr(decl.initializer)}"
        pieces.append(f"{text};")
    for function in unit.functions:
        params = ", ".join(declare(p.param_type, p.name)
                           for p in function.parameters)
        head = f"{function.return_type} {function.name}({params})"
        if function.body is None:
            pieces.append(f"{head};")
            continue
        lines = [f"{head} {{"]
        for stmt in function.body.statements:
            _render_stmt(stmt, 1, lines)
        lines.append("}")
        pieces.append("\n".join(lines))
    return "\n\n".join(pieces) + "\n"
