"""Cross-level translation validation: prove two compilations equivalent.

The -OVERIFY bargain — transform aggressively because a verifier, not a
human, consumes the output — only holds if the optimized module is
*equivalent* to the unoptimized one.  The concrete differential (fuzz
oracle family 3) samples that equivalence; this module proves it per
path, KestRel-style: align the two modules into a lockstep product over
the **same symbolic input** and check agreement path by path.

The product construction exploits an asymmetry: both modules' entry
states are built by
:meth:`~repro.symex.executor.SymbolicExecutor.make_initial_state`, which
names the symbolic input bytes ``in_0 .. in_{n-1}`` identically in both.
So a path condition of module A *is already* a formula over module B's
input:

1. **Explore A** (the reference, default -O0) exhaustively with the
   existing engine — :class:`~repro.symex.parallel.ParallelExecutor`
   drains the fork-heavy frontier with work stealing, and a state sink
   captures every finished path's constraints and symbolic return value.
2. **Replay B under each A path**: seed a fresh initial B state with the
   A path's constraints (``add_constraint`` each), then explore.  Every
   branch the A condition decides is never forked, so the replay
   typically walks a single B path (more when B branches on something A
   did not — each residual B path is checked).
3. **Discharge agreement**:

   * A completed with value ``ret_a``, B completed with ``ret_b`` — one
     solver query asks whether ``ret_a != ret_b`` is satisfiable
     conjoined with the *joint* path condition (the B state already
     carries both sides' constraints).  UNSAT proves the path; SAT
     yields a concrete counterexample input via the deterministic
     :meth:`~repro.symex.solver.Solver.concretization_model`.
     Equality rewriting usually folds the disequality to a constant
     first (``equivalence_folded``), costing no query at all.
   * A trapped — B must trap with a compatible kind on that input
     region.  A trap that B *deleted* is a miscompile unless its kind is
     explicitly whitelisted (optimization-licensed deletion, e.g. a
     div-by-zero the caller vouches is unreachable); whitelisted
     deletions are counted, never silent.  A trap B *introduced* is
     always a divergence.

Queries route through :class:`~repro.symex.solver.SharedSolverCaches`,
so the A exploration's branch work pre-pays most replay queries, and a
:class:`~repro.service.store.SolverKnowledgeStore` makes warm reruns
cache-dominated — plus a whole-run memo keyed by both modules' printed
IR that skips the product entirely for an unchanged pair.

Determinism: verdicts, divergences, counterexamples, and every
:class:`RelcheckStats` counter are worker-count independent — A's path
set is schedule-independent (the parallel executor's contract), finished
A states are put in a canonical wire-form order before replay, each
replay is sequential and self-contained, and counterexamples come from
``concretization_model``.  ``tests/test_parallel_determinism.py`` pins
this.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..interp.errors import ErrorKind
from ..ir import Module
from ..symex.executor import SymbolicExecutor, SymexLimits, SymexReport
from ..symex.expr import Expr, ExprOp
from ..symex.facts import resolve_selects, unary_facts
from ..symex.parallel import ParallelExecutor
from ..symex.simplify import binary, zext
from ..symex.solver import (
    SharedSolverCaches, Solver, SolverConfig, SolverStats,
)
from ..symex.state import ExecutionState, StateStatus

#: Trap kinds the runtime-checks pass may re-spell as an explicit
#: CHECK_FAILURE (a guard firing instead of the memory fault it guards).
#: Any two kinds inside this set count as the *same* trap across levels.
_CHECK_COMPATIBLE = frozenset({
    ErrorKind.NULL_DEREFERENCE,
    ErrorKind.OUT_OF_BOUNDS,
    ErrorKind.CHECK_FAILURE,
})


def _traps_match(kind_a: ErrorKind, kind_b: ErrorKind) -> bool:
    if kind_a is kind_b:
        return True
    return kind_a in _CHECK_COMPATIBLE and kind_b in _CHECK_COMPATIBLE


@dataclass(frozen=True)
class RelcheckConfig:
    """Budgets and semantics knobs of one relcheck run.

    ``workers`` parallelizes both the A exploration and the per-path
    replays but — by contract — never changes any verdict or counter, so
    it is excluded from :meth:`spec` (and hence from store memo keys).
    """

    input_bytes: int = 4
    workers: int = 1
    searcher: str = "dfs"
    #: Budgets of the reference (A) exploration.
    max_paths: int = 512
    max_instructions: int = 2_000_000
    max_forks: int = 4_096
    timeout_seconds: float = 60.0
    #: Budgets of each per-path B replay.  A replay usually walks one
    #: path; the caps only bound pathological residual branching.
    replay_max_paths: int = 64
    replay_max_instructions: int = 500_000
    #: Per-solver-query wall-clock cap, 0 = none (see
    #: :attr:`~repro.symex.solver.SolverConfig.query_deadline_seconds`).
    query_deadline_seconds: float = 0.0
    #: Normalized trap-kind *values* (:attr:`ErrorKind.value`, e.g.
    #: ``"division by zero"``) whose deletion by the optimized module is
    #: licensed.  Deletions are still counted
    #: (:attr:`RelcheckStats.whitelisted_trap_deletions`), never silent.
    trap_whitelist: FrozenSet[str] = frozenset()

    def limits(self) -> SymexLimits:
        return SymexLimits(max_paths=self.max_paths,
                           max_instructions=self.max_instructions,
                           max_forks=self.max_forks,
                           timeout_seconds=self.timeout_seconds)

    def replay_limits(self) -> SymexLimits:
        return SymexLimits(max_paths=self.replay_max_paths,
                           max_instructions=self.replay_max_instructions,
                           max_forks=self.replay_max_paths,
                           timeout_seconds=self.timeout_seconds)

    def solver_config(self) -> SolverConfig:
        return SolverConfig(
            query_deadline_seconds=self.query_deadline_seconds)

    def spec(self) -> str:
        """Canonical text of every knob that can change a verdict —
        the memo-key contribution of the configuration.  ``workers`` is
        deliberately absent (determinism contract)."""
        return json.dumps({
            "input_bytes": self.input_bytes,
            "searcher": self.searcher,
            "max_paths": self.max_paths,
            "max_instructions": self.max_instructions,
            "max_forks": self.max_forks,
            "timeout_seconds": self.timeout_seconds,
            "replay_max_paths": self.replay_max_paths,
            "replay_max_instructions": self.replay_max_instructions,
            "query_deadline_seconds": self.query_deadline_seconds,
            "trap_whitelist": sorted(self.trap_whitelist),
        }, sort_keys=True, separators=(",", ":"))


@dataclass
class RelcheckStats:
    """Counters of one relcheck run.  Every field is schedule- and
    worker-count-independent (pinned by the determinism suite)."""

    #: A paths that completed normally and were checked for return-value
    #: agreement.
    paths_checked: int = 0
    #: Of those, paths whose every residual B completion was proven equal.
    paths_proved: int = 0
    #: A paths that trapped and were checked for bug-signature agreement.
    trap_paths_checked: int = 0
    #: Trap paths where B trapped with a compatible kind.
    trap_agreements: int = 0
    #: Trap paths whose deletion by B was licensed by the whitelist.
    whitelisted_trap_deletions: int = 0
    #: Disequality queries actually sent to the solver.
    equivalence_queries: int = 0
    #: Disequalities folded to a constant by rewriting (no query needed).
    equivalence_folded: int = 0
    #: ITE nodes resolved because the joint path condition decides their
    #: condition (see ``_resolve_selects``).
    selects_resolved: int = 0
    #: Finished states discarded because their path condition turned out
    #: infeasible — the engine forks on conservative "maybe satisfiable"
    #: answers, so a budget-exhausted query can materialize a path that
    #: does not exist.  Equivalence holds vacuously on them.
    phantom_paths: int = 0
    #: Finished B states produced across all replays.
    replay_paths: int = 0
    divergences: int = 0
    #: Paths with no verdict: replay truncated, an inexact solver answer,
    #: or constraints over uncorrelated havoc variables.
    unknown_paths: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    def merge(self, other: "RelcheckStats") -> None:
        for field_info in fields(self):
            name = field_info.name
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class PathVerdict:
    """The outcome of checking one A path against B."""

    index: int
    #: "return" (A completed) or "trap" (A errored).
    kind: str
    #: "proved" | "agree" | "whitelisted" | "diverged" | "unknown"
    #: | "phantom" (the A path's own condition is infeasible — the engine
    #: forked it on a conservative solver answer; equivalence is vacuous).
    status: str
    detail: str = ""
    #: Concrete input bytes witnessing a divergence (replayable through
    #: the interpreter), when one was derivable.
    counterexample: Optional[bytes] = None


@dataclass
class RelcheckDivergence:
    """One proven disagreement between the two modules."""

    #: "return-value" | "trap-deleted" | "trap-introduced" | "trap-kind"
    #: | "engine".
    kind: str
    detail: str
    counterexample: Optional[bytes] = None

    def describe(self) -> str:
        witness = "" if self.counterexample is None \
            else f" (input {self.counterexample.hex()})"
        return f"[{self.kind}] {self.detail}{witness}"


@dataclass
class RelcheckReport:
    """Everything one relcheck run produces."""

    pair: Tuple[str, str]
    input_bytes: int
    stats: RelcheckStats
    verdicts: List[PathVerdict] = field(default_factory=list)
    divergences: List[RelcheckDivergence] = field(default_factory=list)
    #: True when any budget truncated the A exploration or a replay —
    #: "clean" then means "no divergence found", not "equivalent".
    truncated: bool = False
    #: "cold" | "warm" (store-primed) | "memo-hit".
    provenance: str = "cold"
    solver_stats: SolverStats = field(default_factory=SolverStats)

    @property
    def clean(self) -> bool:
        return not self.divergences


# --------------------------------------------------------------- internals

def _wire_text(expr: Expr) -> str:
    """Canonical JSON of an expression's wire form (hash-seed- and
    interning-independent; see :mod:`repro.service.store`)."""
    from ..service.store import expr_to_wire
    return json.dumps(expr_to_wire(expr), sort_keys=True,
                      separators=(",", ":"))


def _state_sort_key(state: ExecutionState) -> tuple:
    """A canonical identity for a finished state: worker scheduling decides
    the order states *arrive* in, so replay order (and hence verdict
    indexes) must come from content instead."""
    constraint_text = tuple(sorted(_wire_text(c) for c in state.constraints))
    return_text = "" if state.return_value is None \
        else _wire_text(state.return_value)
    error_text = "" if state.error is None else "|".join(
        (state.error.kind.value, state.error.function, state.error.block))
    return (state.status.value, len(state.constraints),
            state.instructions_executed, constraint_text, return_text,
            error_text)


def _input_only(state: ExecutionState, extra: Optional[Expr]) -> bool:
    """Whether the path's constraints (and ``extra``, the return value)
    mention only the shared input bytes.  Unknown externals havoc a fresh
    ``ext_*`` variable per call site — those are *uncorrelated* between
    the two modules, so no cross-module formula over them is meaningful."""
    names: set = set()
    for constraint in state.constraints:
        names |= constraint.variables()
    if extra is not None:
        names |= extra.variables()
    return all(name.startswith("in_") for name in names)


def _witness(state: ExecutionState, solver: Solver,
             input_bytes: int) -> Optional[bytes]:
    """A concrete input satisfying the state's path condition, via the
    deterministic concretization search (cache-content-independent, so
    counterexamples are reproducible across runs and worker counts)."""
    varfree, groups = state.full_partition()
    model = solver.concretization_model(varfree, groups)
    if model is None:
        return None
    return bytes(model.get(f"in_{i}", 0) & 0xFF for i in range(input_bytes))


def _unary_facts(state: ExecutionState) -> Dict[str, Tuple[Expr, ...]]:
    """The state's single-variable constraints, grouped per variable —
    the cheap, always-exactly-decidable slice of the path condition that
    :func:`_resolve_selects` prunes against."""
    return unary_facts(state.constraints)


def _resolve_selects(expr: Expr, facts: Dict[str, Tuple[Expr, ...]],
                     solver: Solver, cache: Dict[Expr, Expr],
                     stats: RelcheckStats) -> Expr:
    """Simplify ``expr`` under a path condition by resolving ITE nodes
    whose condition the path's single-variable facts decide
    (:func:`repro.symex.facts.resolve_selects`, with bookkeeping).

    If-conversion (``ifconvert``, on at -O2 and above) turns branches
    into selects, so the optimized module's expressions are often
    ite-trees over conditions the reference path's constraints have
    already settled — e.g. wc classifies every byte, and the -O0 path
    condition pins each classification.  The disequality then folds to a
    constant instead of handing the solver a multi-byte search."""
    def bump() -> None:
        stats.selects_resolved += 1
    return resolve_selects(expr, facts, solver, cache, on_resolve=bump)


class _PathChecker:
    """Checks one finished A path against module B (phase 2 work unit).

    Each instance owns its stats and solver (lock-free); the driver
    merges them afterwards.  Only the solver *caches* are shared."""

    def __init__(self, module_b: Module, entry: str, config: RelcheckConfig,
                 caches: SharedSolverCaches) -> None:
        self.module_b = module_b
        self.entry = entry
        self.config = config
        self.stats = RelcheckStats()
        self.solver = Solver(config=config.solver_config(), shared=caches)
        self.caches = caches
        self.divergences: List[RelcheckDivergence] = []
        self.truncated = False

    def diverge(self, kind: str, detail: str,
                counterexample: Optional[bytes]) -> RelcheckDivergence:
        divergence = RelcheckDivergence(kind, detail, counterexample)
        self.divergences.append(divergence)
        self.stats.divergences += 1
        return divergence

    def check(self, index: int, a_state: ExecutionState) -> PathVerdict:
        kind = "return" if a_state.status is StateStatus.COMPLETED else "trap"
        if not _input_only(a_state, a_state.return_value):
            self.stats.unknown_paths += 1
            return PathVerdict(index, kind, "unknown",
                              "path constrains havoc variables that do not "
                              "correlate across modules")
        # The engine forks on conservative "maybe satisfiable" answers, so
        # a finished state is only a *candidate* path; discard it outright
        # when its own condition is exactly infeasible, and remember the
        # concrete witness otherwise — every divergence verdict (except
        # "engine") must be backed by one.
        feasible, a_witness = self._confirm(a_state)
        if feasible is False:
            self.stats.phantom_paths += 1
            return PathVerdict(index, kind, "phantom",
                              "path condition is infeasible (forked on a "
                              "conservative solver answer)")
        b_states, report_b = self._replay(a_state)
        self.stats.replay_paths += len(b_states)
        if report_b.stats.engine_errors > 0:
            detail = "; ".join(report_b.diagnostics) or \
                "replay engine failed"
            self.diverge("engine",
                         f"path {index}: optimized-module replay hit an "
                         f"engine error ({detail})", a_witness)
            return PathVerdict(index, kind, "diverged",
                              "replay engine error", a_witness)
        b_truncated = bool(report_b.stats.termination_reason) or \
            report_b.stats.paths_terminated > 0
        if b_truncated:
            self.truncated = True
        if a_state.status is StateStatus.COMPLETED:
            verdict = self._check_return(index, a_state, b_states)
        else:
            verdict = self._check_trap(index, a_state, b_states, a_witness)
        if b_truncated and verdict.status in ("proved", "agree",
                                              "whitelisted"):
            # A truncated replay may have hidden a diverging residual
            # B path; a positive verdict cannot be trusted.
            self.stats.unknown_paths += 1
            return PathVerdict(index, kind, "unknown",
                              "replay truncated: " +
                              (report_b.stats.termination_reason or
                               "states terminated"))
        return verdict

    # ---------------------------------------------------------- replay
    def _replay(self, a_state: ExecutionState
                ) -> Tuple[List[ExecutionState], SymexReport]:
        finished: List[ExecutionState] = []
        engine = SymbolicExecutor(
            self.module_b, entry=self.entry, searcher="dfs",
            solver=Solver(config=self.config.solver_config(),
                          shared=self.caches),
            limits=self.config.replay_limits(),
            state_sink=finished.append,
            fact_pruning=True)
        seeded = engine.make_initial_state(self.config.input_bytes)
        for constraint in a_state.constraints:
            seeded.add_constraint(constraint)
        report = engine.run_seeded(seeded)
        finished.sort(key=_state_sort_key)
        return finished, report

    # -------------------------------------------- feasibility confirmation
    def _confirm(self, state: ExecutionState
                 ) -> Tuple[Optional[bool], Optional[bytes]]:
        """Exact feasibility of the state's path condition, plus a
        deterministic concrete witness when it is feasible.

        (True, input) = feasible, with a model; (False, None) = provably
        infeasible (a phantom path); (None, None) = undecidable within
        budget.  Multi-variable constraints are first simplified against
        the path's unary facts — the ite-chains ``ifconvert`` leaves
        behind often fold to constants this way, keeping the residual
        system inside the solver's exact regime."""
        facts = _unary_facts(state)
        cache: Dict[Expr, Expr] = {}
        scratch = ExecutionState()
        for constraint in state.constraints:
            resolved = constraint
            if len(constraint.variables()) > 1:
                # Unary constraints ARE the facts; resolving one against
                # itself could erase it from the conjunction.
                resolved = _resolve_selects(constraint, facts, self.solver,
                                            cache, self.stats)
            if resolved.is_constant:
                if resolved.value == 0:
                    return False, None
                continue
            scratch.add_constraint(resolved)
        varfree, groups = scratch.full_partition()
        result = self.solver.check_partition(varfree, groups)
        if not result.satisfiable:
            return (False, None) if result.exact else (None, None)
        if not result.exact:
            return None, None
        witness = _witness(scratch, self.solver, self.config.input_bytes)
        if witness is None:
            return None, None
        return True, witness

    # ------------------------------------------------- return agreement
    def _check_return(self, index: int, a_state: ExecutionState,
                      b_states: List[ExecutionState]) -> PathVerdict:
        self.stats.paths_checked += 1
        if not b_states:
            self.stats.unknown_paths += 1
            return PathVerdict(index, "return", "unknown",
                              "replay produced no finished path")
        unknown_detail = ""
        live_b: List[ExecutionState] = []
        for b_state in b_states:
            if b_state.status is not StateStatus.ERROR:
                live_b.append(b_state)
                continue
            kind_b = b_state.error.kind.value
            feasible, witness = self._confirm(b_state)
            if feasible is False:
                self.stats.phantom_paths += 1
                continue
            if feasible is None:
                unknown_detail = (f"possible introduced trap ({kind_b}) "
                                  "could not be confirmed within the "
                                  "solver budget")
                continue
            self.diverge("trap-introduced",
                         f"path {index}: optimized module traps "
                         f"({kind_b}) where reference returns", witness)
            return PathVerdict(index, "return", "diverged",
                              f"trap introduced: {kind_b}", witness)
        for b_state in live_b:
            proved, detail, witness = self._returns_equal(a_state, b_state)
            if proved is False:
                self.diverge("return-value", f"path {index}: {detail}",
                             witness)
                return PathVerdict(index, "return", "diverged", detail,
                                  witness)
            if proved is None:
                unknown_detail = detail
        if not live_b and not unknown_detail:
            unknown_detail = "every replay path was infeasible"
        if unknown_detail:
            self.stats.unknown_paths += 1
            self.truncated = True
            return PathVerdict(index, "return", "unknown", unknown_detail)
        self.stats.paths_proved += 1
        return PathVerdict(index, "return", "proved")

    def _returns_equal(self, a_state: ExecutionState,
                       b_state: ExecutionState
                       ) -> Tuple[Optional[bool], str, Optional[bytes]]:
        """(proved?, detail, counterexample): True = equal on every model
        of the joint path condition, False = a model disagrees, None =
        the solver could not decide within budget."""
        ret_a, ret_b = a_state.return_value, b_state.return_value
        if ret_a is None and ret_b is None:
            return True, "", None
        if ret_a is None or ret_b is None:
            return self._confirmed_divergence(
                b_state, "one module returns a value, the other void")
        width = max(ret_a.width, ret_b.width)
        disequal = binary(ExprOp.NE, zext(ret_a, width), zext(ret_b, width))
        # The B state's rewrite map holds equalities from *both* path
        # conditions (the A constraints were seeded through
        # ``add_constraint``), so this usually folds to a constant.
        disequal = b_state.rewrite(disequal)
        if not disequal.is_constant:
            resolve_cache: Dict[Expr, Expr] = {}
            disequal = _resolve_selects(disequal, _unary_facts(b_state),
                                        self.solver, resolve_cache,
                                        self.stats)
        if disequal.is_constant:
            self.stats.equivalence_folded += 1
            if disequal.value == 0:
                return True, "", None
            return self._confirmed_divergence(
                b_state, "return values provably differ")
        self.stats.equivalence_queries += 1
        scratch = b_state.fork()
        scratch.add_constraint(disequal)
        varfree, groups = scratch.full_partition()
        result = self.solver.check_partition(varfree, groups)
        if not result.satisfiable:
            return True, "", None
        if not result.exact:
            return None, "equivalence query exhausted the solver budget", \
                None
        witness = _witness(scratch, self.solver, self.config.input_bytes)
        if witness is None:
            return None, ("return-value divergence model could not be "
                          "concretized"), None
        return False, "return values differ on a satisfiable input", witness

    def _confirmed_divergence(self, b_state: ExecutionState, detail: str
                              ) -> Tuple[Optional[bool], str, Optional[bytes]]:
        """Turn a provable-under-the-path-condition disagreement into a
        verdict: real only if the path itself is feasible (with witness),
        vacuously true on a phantom path, undecidable otherwise."""
        feasible, witness = self._confirm(b_state)
        if feasible is False:
            self.stats.phantom_paths += 1
            return True, "", None
        if feasible is None:
            return None, detail + " (no confirmable witness)", None
        return False, detail, witness

    # --------------------------------------------------- trap agreement
    def _check_trap(self, index: int, a_state: ExecutionState,
                    b_states: List[ExecutionState],
                    a_witness: Optional[bytes]) -> PathVerdict:
        self.stats.trap_paths_checked += 1
        kind_a = a_state.error.kind
        if not b_states:
            self.stats.unknown_paths += 1
            return PathVerdict(index, "trap", "unknown",
                              "replay produced no finished path")
        b_errors: List[ExecutionState] = []
        for b_state in b_states:
            if b_state.status is not StateStatus.ERROR:
                continue
            # A phantom B error must not fake an agreement (masking a
            # real trap deletion) or a trap-kind divergence.
            feasible, _ = self._confirm(b_state)
            if feasible is False:
                self.stats.phantom_paths += 1
                continue
            b_errors.append(b_state)
        for b_state in b_errors:
            if _traps_match(kind_a, b_state.error.kind):
                self.stats.trap_agreements += 1
                return PathVerdict(index, "trap", "agree",
                                  f"both trap: {kind_a.value}")
        if b_errors:
            kinds = sorted({s.error.kind.value for s in b_errors})
            detail = (f"trap kind changed: reference {kind_a.value}, "
                      f"optimized {', '.join(kinds)}")
            return self._trap_divergence(index, "trap-kind", detail,
                                         a_witness)
        if kind_a.value in self.config.trap_whitelist:
            self.stats.whitelisted_trap_deletions += 1
            return PathVerdict(index, "trap", "whitelisted",
                              f"licensed deletion of {kind_a.value}")
        detail = (f"reference traps ({kind_a.value}) but optimized module "
                  f"completes")
        return self._trap_divergence(index, "trap-deleted", detail,
                                     a_witness)

    def _trap_divergence(self, index: int, kind: str, detail: str,
                         a_witness: Optional[bytes]) -> PathVerdict:
        """A trap disagreement is only reportable with a concrete input
        reaching the reference trap; without one the A path may itself be
        undecidable, so the verdict degrades to unknown."""
        if a_witness is None:
            self.stats.unknown_paths += 1
            self.truncated = True
            return PathVerdict(index, "trap", "unknown",
                              detail + " (no confirmable witness)")
        self.diverge(kind, f"path {index}: {detail}", a_witness)
        return PathVerdict(index, "trap", "diverged", detail, a_witness)


# ------------------------------------------------------------ entry points

def relcheck_modules(module_a: Module, module_b: Module,
                     config: Optional[RelcheckConfig] = None,
                     pair: Optional[Tuple[str, str]] = None,
                     shared_caches: Optional[SharedSolverCaches] = None,
                     store: Optional[object] = None,
                     entry: str = "main") -> RelcheckReport:
    """Prove ``module_a`` (reference) equivalent to ``module_b``
    (optimized) on every path up to the configured input bound.

    ``store`` is an optional
    :class:`~repro.service.store.SolverKnowledgeStore`: primed before the
    run, absorbed and saved after, plus a whole-run memo keyed by both
    modules' printed IR and :meth:`RelcheckConfig.spec` so an unchanged
    pair is answered without executing anything.
    """
    config = config or RelcheckConfig()
    if pair is None:
        pair = (str(module_a.metadata.get("opt_level", "A")),
                str(module_b.metadata.get("opt_level", "B")))
    provenance = "cold"
    fingerprint = None
    if store is not None:
        from ..service.store import relcheck_fingerprint
        fingerprint = relcheck_fingerprint(module_a, module_b, config.spec())
        memo = store.memo_lookup(fingerprint)
        if memo is not None:
            return _report_from_memo(memo, pair, config)
        if len(store) > 0 or store.memo_count > 0:
            provenance = "warm"
    caches = shared_caches or SharedSolverCaches(
        num_stripes=config.workers, locked=config.workers > 1)
    if store is not None:
        store.prime(caches)

    # Phase 1: exhaustively explore the reference module.  The sink is
    # called from worker threads; list.append is atomic under the GIL but
    # the lock keeps the capture correct on free-threaded builds too.
    a_finished: List[ExecutionState] = []
    sink_lock = threading.Lock()

    def capture(state: ExecutionState) -> None:
        with sink_lock:
            a_finished.append(state)

    executor = ParallelExecutor(
        module_a, entry=entry, searcher=config.searcher,
        workers=config.workers, solver_config=config.solver_config(),
        limits=config.limits(), shared_caches=caches, state_sink=capture,
        fact_pruning=True)
    report_a = executor.run(config.input_bytes)

    stats = RelcheckStats()
    solver_stats = SolverStats()
    solver_stats.merge(report_a.solver_stats)
    report = RelcheckReport(pair=pair, input_bytes=config.input_bytes,
                            stats=stats, provenance=provenance,
                            solver_stats=solver_stats)
    if report_a.stats.engine_errors > 0:
        detail = "; ".join(report_a.diagnostics) or "engine error"
        report.divergences.append(RelcheckDivergence(
            "engine", f"reference exploration hit an engine error "
            f"({detail})", None))
        stats.divergences += 1
    if report_a.stats.termination_reason:
        report.truncated = True

    a_finished.sort(key=_state_sort_key)

    # Phase 2: replay B under each A path.  Tasks are independent; the
    # only shared structure is the (lock-striped) solver caches.
    checkers = [_PathChecker(module_b, entry, config, caches)
                for _ in range(len(a_finished))]
    if config.workers > 1 and len(a_finished) > 1:
        with ThreadPoolExecutor(max_workers=config.workers) as pool:
            verdicts = list(pool.map(
                lambda pair_: pair_[1].check(pair_[0], a_finished[pair_[0]]),
                enumerate(checkers)))
    else:
        verdicts = [checker.check(index, state)
                    for index, (state, checker)
                    in enumerate(zip(a_finished, checkers))]
    report.verdicts = verdicts
    for checker in checkers:
        stats.merge(checker.stats)
        solver_stats.merge(checker.solver.stats)
        report.divergences.extend(checker.divergences)
        report.truncated |= checker.truncated

    if store is not None:
        store.absorb(caches)
        if not report.truncated and fingerprint is not None:
            store.memo_record(fingerprint, _report_to_memo(report))
        store.save()
    return report


def relcheck_source(source: str,
                    levels: Optional[Tuple[object, object]] = None,
                    config: Optional[RelcheckConfig] = None,
                    session: Optional[object] = None,
                    store: Optional[object] = None) -> RelcheckReport:
    """Compile ``source`` at two levels (sharing the front end) and
    relcheck the pair.  Default pair: the paper's (-O0, -OVERIFY)."""
    from ..pipelines import parse_opt_level
    from ..pipelines.levels import OptLevel
    from ..pipelines.session import CompilerSession

    if levels is None:
        levels = (OptLevel.O0, OptLevel.OVERIFY)
    levels = tuple(level if isinstance(level, OptLevel)
                   else parse_opt_level(str(level)) for level in levels)
    session = session or CompilerSession()
    results = session.compile_at_levels(source, levels=list(levels))
    return relcheck_modules(results[levels[0]].module,
                            results[levels[1]].module,
                            config=config,
                            pair=(str(levels[0]), str(levels[1])),
                            store=store)


def relcheck_workload(name: str,
                      levels: Optional[Tuple[object, object]] = None,
                      config: Optional[RelcheckConfig] = None,
                      store: Optional[object] = None) -> RelcheckReport:
    """Relcheck a registry workload's source at a level pair."""
    from ..workloads import get_workload
    return relcheck_source(get_workload(name).source, levels=levels,
                           config=config, store=store)


# ----------------------------------------------------------------- memos

def _report_to_memo(report: RelcheckReport) -> Dict[str, object]:
    return {
        "kind": "relcheck",
        "pair": list(report.pair),
        "input_bytes": report.input_bytes,
        "stats": report.stats.as_dict(),
        "verdicts": [[v.index, v.kind, v.status, v.detail,
                      None if v.counterexample is None
                      else v.counterexample.hex()]
                     for v in report.verdicts],
        "divergences": [[d.kind, d.detail,
                         None if d.counterexample is None
                         else d.counterexample.hex()]
                        for d in report.divergences],
    }


def _report_from_memo(memo: Dict[str, object], pair: Tuple[str, str],
                      config: RelcheckConfig) -> RelcheckReport:
    stats = RelcheckStats(**{str(k): int(v)
                             for k, v in dict(memo["stats"]).items()})
    report = RelcheckReport(pair=pair, input_bytes=config.input_bytes,
                            stats=stats, provenance="memo-hit")
    for index, kind, status, detail, witness in memo.get("verdicts", []):
        report.verdicts.append(PathVerdict(
            int(index), str(kind), str(status), str(detail),
            None if witness is None else bytes.fromhex(witness)))
    for kind, detail, witness in memo.get("divergences", []):
        report.divergences.append(RelcheckDivergence(
            str(kind), str(detail),
            None if witness is None else bytes.fromhex(witness)))
    return report
