"""The ``python -m repro relcheck`` subcommand (``docs/relcheck.md``).

Prove a workload's compilations at two levels equivalent path-by-path:

    python -m repro relcheck wc                       # -O0 vs -OVERIFY
    python -m repro relcheck wc --levels O2,O3 --workers 4
    python -m repro relcheck --all --input-bytes 3
    python -m repro relcheck buggy_div --whitelist division-by-zero

Exit status is the number of divergences found (capped at 99), so CI
legs can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Tuple

from ..interp.errors import ErrorKind
from ..pipelines import OptLevel, parse_opt_level
from ..workloads import all_workloads, get_workload
from .product import RelcheckConfig, RelcheckReport, relcheck_source


def _parse_levels(text: str) -> Tuple[OptLevel, OptLevel]:
    parts = [token.strip() for token in text.split(",") if token.strip()]
    if len(parts) != 2:
        raise ValueError(f"--levels wants two comma-separated levels, "
                         f"got {text!r}")
    return parse_opt_level(parts[0]), parse_opt_level(parts[1])


def _parse_whitelist(tokens: List[str]) -> frozenset:
    """Map CLI trap names (``division-by-zero``) to the normalized
    :class:`ErrorKind` values the checker compares."""
    values = set()
    for token in tokens:
        name = token.strip().replace("-", "_").upper()
        try:
            values.add(ErrorKind[name].value)
        except KeyError:
            known = ", ".join(kind.name.lower().replace("_", "-")
                              for kind in ErrorKind)
            raise ValueError(f"unknown trap kind {token!r} "
                             f"(known: {known})") from None
    return frozenset(values)


def _print_report(name: str, report: RelcheckReport,
                  show_paths: bool) -> None:
    stats = report.stats
    pair = f"{report.pair[0]} vs {report.pair[1]}"
    status = "EQUIVALENT" if report.clean else "DIVERGED"
    if report.clean and report.truncated:
        status = "INCONCLUSIVE (budget hit)"
    print(f"{name:<14} {pair:<22} {status}")
    print(f"  paths   : {stats.paths_checked} return "
          f"({stats.paths_proved} proved), "
          f"{stats.trap_paths_checked} trap "
          f"({stats.trap_agreements} agree, "
          f"{stats.whitelisted_trap_deletions} whitelisted), "
          f"{stats.unknown_paths} unknown")
    print(f"  queries : {stats.equivalence_queries} equivalence "
          f"({stats.equivalence_folded} folded), "
          f"{stats.replay_paths} replay paths "
          f"[{report.provenance}]")
    if show_paths or not report.clean:
        for verdict in report.verdicts:
            if not show_paths and verdict.status not in ("diverged",
                                                         "unknown"):
                continue
            witness = "" if verdict.counterexample is None \
                else f"  input={verdict.counterexample.hex()}"
            detail = f"  {verdict.detail}" if verdict.detail else ""
            print(f"  path {verdict.index:>3} [{verdict.kind:<6}] "
                  f"{verdict.status}{detail}{witness}")
    for divergence in report.divergences:
        print(f"  DIVERGENCE {divergence.describe()}")


def relcheck_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro relcheck",
        description="Translation validation: prove two optimization "
                    "levels of a workload equivalent on every path up "
                    "to the symbolic input bound (docs/relcheck.md).")
    parser.add_argument("workload", nargs="?",
                        help="registered workload name")
    parser.add_argument("--all", action="store_true",
                        help="check every registered workload")
    parser.add_argument("--levels", default="O0,OVERIFY",
                        help="the level pair to compare "
                             "(default O0,OVERIFY)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker threads for exploration and replay "
                             "(default 1; never changes verdicts)")
    parser.add_argument("--input-bytes", type=int, default=4,
                        help="symbolic input size (default 4)")
    parser.add_argument("--max-paths", type=int, default=512,
                        help="reference-exploration path budget "
                             "(default 512)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="exploration budget in seconds (default 60)")
    parser.add_argument("--whitelist", action="append", default=[],
                        metavar="KIND",
                        help="trap kind whose deletion by the optimized "
                             "level is licensed (e.g. division-by-zero); "
                             "repeatable")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="solver-knowledge store file: primes the "
                             "solver, memoizes whole runs "
                             "(docs/service.md)")
    parser.add_argument("--show-paths", action="store_true",
                        help="print every path verdict, not only "
                             "divergences")
    args = parser.parse_args(argv)

    if bool(args.workload) == args.all:
        parser.error("name one workload or pass --all")
    try:
        levels = _parse_levels(args.levels)
        whitelist = _parse_whitelist(args.whitelist)
    except ValueError as exc:
        parser.error(str(exc))

    config = RelcheckConfig(input_bytes=args.input_bytes,
                            workers=args.workers,
                            max_paths=args.max_paths,
                            timeout_seconds=args.timeout,
                            trap_whitelist=whitelist)
    store = None
    if args.store is not None:
        from ..service.store import SolverKnowledgeStore
        store = SolverKnowledgeStore(args.store)
        store.load()

    if args.all:
        names = [workload.name for workload in all_workloads()]
    else:
        try:
            names = [get_workload(args.workload).name]
        except KeyError as exc:
            parser.error(str(exc.args[0]))

    total_divergences = 0
    start = time.perf_counter()
    for name in names:
        report = relcheck_source(get_workload(name).source, levels=levels,
                                 config=config, store=store)
        _print_report(name, report, args.show_paths)
        total_divergences += len(report.divergences)
    elapsed = time.perf_counter() - start
    print(f"total    : {len(names)} workload(s), "
          f"{total_divergences} divergence(s) in {elapsed:.3f}s")
    return min(total_divergences, 99)


if __name__ == "__main__":
    sys.exit(relcheck_main())
