"""Cross-level translation validation (``docs/relcheck.md``).

Proves two compilations of the same source equivalent path-by-path by
exploring the reference module symbolically and replaying the optimized
module under each path's constraints — see :mod:`repro.relcheck.product`
for the construction.
"""

from .product import (
    PathVerdict, RelcheckConfig, RelcheckDivergence, RelcheckReport,
    RelcheckStats, relcheck_modules, relcheck_source, relcheck_workload,
)

__all__ = [
    "PathVerdict", "RelcheckConfig", "RelcheckDivergence", "RelcheckReport",
    "RelcheckStats", "relcheck_modules", "relcheck_source",
    "relcheck_workload",
]
