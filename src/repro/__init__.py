"""repro — a reproduction of "-OVERIFY: Optimizing Programs for Fast
Verification" (HotOS 2013).

The package provides:

* ``repro.ir`` — an LLVM-like SSA intermediate representation,
* ``repro.frontend`` — the MiniC front end,
* ``repro.analysis`` — CFG/dominator/loop/alias/call-graph analyses,
* ``repro.passes`` — the optimization passes, pass manager, and the pass
  registry with its textual pipeline syntax (``parse_pipeline``),
* ``repro.pipelines`` — the ``-O0``/``-O2``/``-O3``/``-OVERIFY`` pipelines
  as textual specs, plus the ``CompilerSession`` stateful driver,
* ``repro.verification`` — the verification-backend protocol and registry,
* ``repro.interp`` — a concrete IR interpreter,
* ``repro.symex`` — a KLEE-style symbolic execution engine,
* ``repro.vlibc`` — the verification-optimized C library,
* ``repro.workloads`` — the wc kernel and Coreutils-like utilities,
* ``repro.harness`` — drivers that regenerate the paper's tables and figures,
* ``repro.faults`` — the failure taxonomy and the deterministic
  fault-injection harness behind the robustness guarantees
  (``docs/robustness.md``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
