"""Basic blocks: straight-line sequences of instructions ending in a
terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from .instructions import BranchInst, Instruction, PhiInst, SwitchInst
from .types import Type, VOID
from .values import Value

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from .function import Function


class BasicBlock(Value):
    """A labelled basic block.

    Basic blocks are values (of void type) so that branch instructions can use
    them as operands, which keeps the use-def machinery uniform: replacing a
    block rewrites all branches to it.
    """

    def __init__(self, name: str = "", parent: Optional["Function"] = None) -> None:
        super().__init__(VOID, name)
        self.parent = parent
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------- iteration
    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def phis(self) -> List[PhiInst]:
        """The (possibly empty) run of phi nodes at the start of the block."""
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                result.append(inst)
            else:
                break
        return result

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, PhiInst)]

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def first_non_phi(self) -> Optional[Instruction]:
        for inst in self.instructions:
            if not isinstance(inst, PhiInst):
                return inst
        return None

    # ------------------------------------------------------------- mutation
    def bump_ir_epoch(self) -> None:
        """Propagate a structural change to the containing function's
        modification epoch (no-op for detached blocks)."""
        if self.parent is not None:
            self.parent.bump_ir_epoch()

    def append_instruction(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        self.bump_ir_epoch()
        return inst

    def insert_instruction(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        self.bump_ir_epoch()
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        index = self.instructions.index(anchor)
        return self.insert_instruction(index, inst)

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        index = self.instructions.index(anchor)
        return self.insert_instruction(index + 1, inst)

    def remove_instruction(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None
        self.bump_ir_epoch()

    def erase_from_parent(self) -> None:
        """Remove this block from its function and drop all its instructions."""
        for inst in list(self.instructions):
            inst.erase_from_parent()
        if self.parent is not None:
            self.parent.remove_block(self)

    # ------------------------------------------------------------- CFG edges
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        if isinstance(term, (BranchInst, SwitchInst)):
            return term.successors()
        return []

    def predecessors(self) -> List["BasicBlock"]:
        """Blocks whose terminator may transfer control to this block."""
        preds: List[BasicBlock] = []
        for use in self.uses:
            user = use.user
            if isinstance(user, (BranchInst, SwitchInst)) and user.parent is not None:
                if user.parent not in preds and self in user.successors():
                    preds.append(user.parent)
        return preds

    def remove_predecessor(self, pred: "BasicBlock") -> None:
        """Update phi nodes after the edge ``pred -> self`` is deleted."""
        for phi in self.phis():
            phi.remove_incoming(pred)

    # ------------------------------------------------------------- rendering
    def ref(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
