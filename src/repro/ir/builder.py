"""IRBuilder: a convenience API for constructing instructions.

The builder keeps an insertion point (a basic block, and optionally a
position within it) and offers one method per instruction kind.  It also
performs trivial constant folding so that front ends do not emit obviously
redundant IR; full folding is left to the optimization passes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst, BinaryInst, BranchInst, CallInst, CastInst, GEPInst, ICmpInst,
    ICmpPredicate, Instruction, LoadInst, Opcode, PhiInst, ReturnInst,
    SelectInst, StoreInst, SwitchInst, UnreachableInst,
)
from .types import IntType, PointerType, Type, I1, I8, I32, I64
from .values import Constant, ConstantInt, Value


class IRBuilder:
    """Builds instructions at a current insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block
        self._insert_index: Optional[int] = None

    # ------------------------------------------------------------ position
    def set_insert_point(self, block: BasicBlock,
                         index: Optional[int] = None) -> None:
        """Insert at the end of ``block`` or before position ``index``."""
        self.block = block
        self._insert_index = index

    def set_insert_before(self, inst: Instruction) -> None:
        assert inst.parent is not None
        self.block = inst.parent
        self._insert_index = inst.parent.instructions.index(inst)

    @property
    def function(self) -> Function:
        assert self.block is not None and self.block.parent is not None
        return self.block.parent

    def _insert(self, inst: Instruction, name: str = "") -> Instruction:
        assert self.block is not None, "no insertion point set"
        if name and not inst.name:
            inst.name = name
        elif not inst.name and not inst.type.is_void:
            inst.name = self.function.next_name()
        if self._insert_index is None:
            self.block.append_instruction(inst)
        else:
            self.block.insert_instruction(self._insert_index, inst)
            self._insert_index += 1
        return inst

    # ------------------------------------------------------------ constants
    @staticmethod
    def const_int(ty: IntType, value: int) -> ConstantInt:
        return ConstantInt(ty, value)

    @staticmethod
    def true() -> ConstantInt:
        return ConstantInt(I1, 1)

    @staticmethod
    def false() -> ConstantInt:
        return ConstantInt(I1, 0)

    # ------------------------------------------------------------ arithmetic
    def _binary(self, opcode: Opcode, lhs: Value, rhs: Value,
                name: str = "") -> Value:
        folded = _fold_binary(opcode, lhs, rhs)
        if folded is not None:
            return folded
        return self._insert(BinaryInst(opcode, lhs, rhs), name)

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.ADD, lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SUB, lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.MUL, lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SDIV, lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.UDIV, lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SREM, lhs, rhs, name)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.UREM, lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.AND, lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.OR, lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.XOR, lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SHL, lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.LSHR, lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.ASHR, lhs, rhs, name)

    def neg(self, value: Value, name: str = "") -> Value:
        ity = value.type
        assert isinstance(ity, IntType)
        return self.sub(ConstantInt(ity, 0), value, name)

    def not_(self, value: Value, name: str = "") -> Value:
        ity = value.type
        assert isinstance(ity, IntType)
        return self.xor(value, ConstantInt(ity, ity.mask), name)

    # ------------------------------------------------------------ comparison
    def icmp(self, predicate: ICmpPredicate, lhs: Value, rhs: Value,
             name: str = "") -> Value:
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            return ConstantInt(I1, 1 if _eval_icmp(predicate, lhs, rhs) else 0)
        return self._insert(ICmpInst(predicate, lhs, rhs), name)

    def icmp_eq(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.icmp(ICmpPredicate.EQ, lhs, rhs, name)

    def icmp_ne(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.icmp(ICmpPredicate.NE, lhs, rhs, name)

    def select(self, condition: Value, true_value: Value, false_value: Value,
               name: str = "") -> Value:
        if isinstance(condition, ConstantInt):
            return true_value if condition.value else false_value
        return self._insert(SelectInst(condition, true_value, false_value), name)

    # ------------------------------------------------------------ casts
    def zext(self, value: Value, to_type: IntType, name: str = "") -> Value:
        if value.type == to_type:
            return value
        if isinstance(value, ConstantInt):
            return ConstantInt(to_type, value.value)
        return self._insert(CastInst(Opcode.ZEXT, value, to_type), name)

    def sext(self, value: Value, to_type: IntType, name: str = "") -> Value:
        if value.type == to_type:
            return value
        if isinstance(value, ConstantInt):
            return ConstantInt(to_type, value.signed_value)
        return self._insert(CastInst(Opcode.SEXT, value, to_type), name)

    def trunc(self, value: Value, to_type: IntType, name: str = "") -> Value:
        if value.type == to_type:
            return value
        if isinstance(value, ConstantInt):
            return ConstantInt(to_type, value.value)
        return self._insert(CastInst(Opcode.TRUNC, value, to_type), name)

    def ptrtoint(self, value: Value, to_type: IntType = I64, name: str = "") -> Value:
        return self._insert(CastInst(Opcode.PTRTOINT, value, to_type), name)

    def inttoptr(self, value: Value, to_type: PointerType, name: str = "") -> Value:
        return self._insert(CastInst(Opcode.INTTOPTR, value, to_type), name)

    def bitcast(self, value: Value, to_type: Type, name: str = "") -> Value:
        if value.type == to_type:
            return value
        return self._insert(CastInst(Opcode.BITCAST, value, to_type), name)

    def int_cast(self, value: Value, to_type: IntType, signed: bool,
                 name: str = "") -> Value:
        """Resize an integer value to ``to_type`` using the natural cast."""
        from_type = value.type
        assert isinstance(from_type, IntType)
        if from_type.width == to_type.width:
            return value
        if from_type.width > to_type.width:
            return self.trunc(value, to_type, name)
        if signed:
            return self.sext(value, to_type, name)
        return self.zext(value, to_type, name)

    # ------------------------------------------------------------ memory
    def alloca(self, allocated_type: Type, name: str = "") -> AllocaInst:
        inst = self._insert(AllocaInst(allocated_type), name)
        assert isinstance(inst, AllocaInst)
        return inst

    def load(self, pointer: Value, name: str = "") -> Value:
        return self._insert(LoadInst(pointer), name)

    def store(self, value: Value, pointer: Value) -> StoreInst:
        inst = self._insert(StoreInst(value, pointer))
        assert isinstance(inst, StoreInst)
        return inst

    def gep(self, base: Value, indices: Sequence[Value], result_pointee: Type,
            name: str = "") -> Value:
        return self._insert(GEPInst(base, indices, result_pointee), name)

    # ------------------------------------------------------------ calls
    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Value:
        return self._insert(CallInst(callee, args, callee.return_type), name)

    def call_indirect(self, callee: Value, args: Sequence[Value],
                      return_type: Type, name: str = "") -> Value:
        return self._insert(CallInst(callee, args, return_type), name)

    # ------------------------------------------------------------ control
    def br(self, target: BasicBlock) -> BranchInst:
        inst = self._insert(BranchInst(target))
        assert isinstance(inst, BranchInst)
        return inst

    def cond_br(self, condition: Value, true_target: BasicBlock,
                false_target: BasicBlock) -> BranchInst:
        inst = self._insert(BranchInst(true_target, condition, false_target))
        assert isinstance(inst, BranchInst)
        return inst

    def switch(self, value: Value, default: BasicBlock,
               cases: Sequence[Tuple[Constant, BasicBlock]] = ()) -> SwitchInst:
        inst = self._insert(SwitchInst(value, default, cases))
        assert isinstance(inst, SwitchInst)
        return inst

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        inst = self._insert(ReturnInst(value))
        assert isinstance(inst, ReturnInst)
        return inst

    def unreachable(self) -> UnreachableInst:
        inst = self._insert(UnreachableInst())
        assert isinstance(inst, UnreachableInst)
        return inst

    def phi(self, ty: Type, name: str = "") -> PhiInst:
        inst = self._insert(PhiInst(ty), name)
        assert isinstance(inst, PhiInst)
        return inst


# --------------------------------------------------------------------------
# Constant folding helpers (shared with the SCCP/instcombine passes)
# --------------------------------------------------------------------------
def _truncdiv(a: int, b: int) -> int:
    """C-style signed division: truncate toward zero.

    Not ``int(a / b)`` — float division is only exact below 2**53, so it
    silently mis-rounds 64-bit ``long`` quotients; not ``a // b`` either,
    which floors toward negative infinity.
    """
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def eval_binary(opcode: Opcode, ty: IntType, lhs: int, rhs: int) -> Optional[int]:
    """Evaluate a binary opcode over two unsigned ``ty`` values.

    Returns ``None`` for division/remainder by zero, which the IR treats as an
    error detected at run time.
    """
    mask = ty.mask

    def signed(v: int) -> int:
        return v - (1 << ty.width) if v & ty.sign_bit else v

    if opcode is Opcode.ADD:
        return (lhs + rhs) & mask
    if opcode is Opcode.SUB:
        return (lhs - rhs) & mask
    if opcode is Opcode.MUL:
        return (lhs * rhs) & mask
    if opcode is Opcode.AND:
        return lhs & rhs
    if opcode is Opcode.OR:
        return lhs | rhs
    if opcode is Opcode.XOR:
        return lhs ^ rhs
    if opcode is Opcode.SHL:
        shift = rhs % ty.width
        return (lhs << shift) & mask
    if opcode is Opcode.LSHR:
        shift = rhs % ty.width
        return lhs >> shift
    if opcode is Opcode.ASHR:
        shift = rhs % ty.width
        return (signed(lhs) >> shift) & mask
    if opcode is Opcode.UDIV:
        if rhs == 0:
            return None
        return (lhs // rhs) & mask
    if opcode is Opcode.UREM:
        if rhs == 0:
            return None
        return (lhs % rhs) & mask
    if opcode is Opcode.SDIV:
        if rhs == 0:
            return None
        return _truncdiv(signed(lhs), signed(rhs)) & mask
    if opcode is Opcode.SREM:
        if rhs == 0:
            return None
        slhs, srhs = signed(lhs), signed(rhs)
        return (slhs - _truncdiv(slhs, srhs) * srhs) & mask
    raise ValueError(f"not a binary opcode: {opcode}")


def eval_icmp(predicate: ICmpPredicate, ty: IntType, lhs: int, rhs: int) -> bool:
    """Evaluate an icmp predicate over two unsigned ``ty`` values."""

    def signed(v: int) -> int:
        return v - (1 << ty.width) if v & ty.sign_bit else v

    if predicate is ICmpPredicate.EQ:
        return lhs == rhs
    if predicate is ICmpPredicate.NE:
        return lhs != rhs
    if predicate is ICmpPredicate.ULT:
        return lhs < rhs
    if predicate is ICmpPredicate.ULE:
        return lhs <= rhs
    if predicate is ICmpPredicate.UGT:
        return lhs > rhs
    if predicate is ICmpPredicate.UGE:
        return lhs >= rhs
    if predicate is ICmpPredicate.SLT:
        return signed(lhs) < signed(rhs)
    if predicate is ICmpPredicate.SLE:
        return signed(lhs) <= signed(rhs)
    if predicate is ICmpPredicate.SGT:
        return signed(lhs) > signed(rhs)
    if predicate is ICmpPredicate.SGE:
        return signed(lhs) >= signed(rhs)
    raise ValueError(f"unknown predicate {predicate}")


def _fold_binary(opcode: Opcode, lhs: Value, rhs: Value) -> Optional[Value]:
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        ty = lhs.type
        assert isinstance(ty, IntType)
        result = eval_binary(opcode, ty, lhs.value, rhs.value)
        if result is not None:
            return ConstantInt(ty, result)
    return None


def _eval_icmp(predicate: ICmpPredicate, lhs: ConstantInt,
               rhs: ConstantInt) -> bool:
    ty = lhs.type
    assert isinstance(ty, IntType)
    return eval_icmp(predicate, ty, lhs.value, rhs.value)
