"""Structural verifier for the repro IR.

Every optimization pass is expected to leave the module in a state this
verifier accepts; the pass manager can run it after every pass when built in
"checked" mode (the default in tests).
"""

from __future__ import annotations

from typing import List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    BranchInst, CallInst, ICmpInst, Instruction, LoadInst, Opcode, PhiInst,
    ReturnInst, SelectInst, StoreInst, SwitchInst,
)
from .module import Module
from .types import IntType, PointerType, I1
from .values import Argument, Constant, Value


class VerificationError(Exception):
    """Raised when a module violates a structural IR invariant."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("\n".join(errors))
        self.errors = errors


def verify_module(module: Module) -> None:
    """Raise :class:`VerificationError` if the module is structurally invalid."""
    errors: List[str] = []
    for function in module.defined_functions():
        errors.extend(_verify_function(function))
    if errors:
        raise VerificationError(errors)


def verify_function(function: Function) -> None:
    errors = _verify_function(function)
    if errors:
        raise VerificationError(errors)


def _verify_function(function: Function) -> List[str]:
    errors: List[str] = []
    where = f"function @{function.name}"

    if not function.blocks:
        return errors

    block_set = set(id(b) for b in function.blocks)
    defined: set = set(id(arg) for arg in function.arguments)

    # Pass 1: every block has exactly one terminator, at the end.
    for block in function.blocks:
        if block.parent is not function:
            errors.append(f"{where}: block {block.name} has wrong parent")
        term = block.terminator
        if term is None:
            errors.append(f"{where}: block {block.name} has no terminator")
        for i, inst in enumerate(block.instructions):
            if inst.parent is not block:
                errors.append(
                    f"{where}: instruction in {block.name} has wrong parent")
            if inst.is_terminator and i != len(block.instructions) - 1:
                errors.append(
                    f"{where}: terminator in the middle of block {block.name}")
            if isinstance(inst, PhiInst) and i > 0 and \
                    not isinstance(block.instructions[i - 1], PhiInst):
                errors.append(
                    f"{where}: phi not at the start of block {block.name}")
            if not inst.type.is_void:
                defined.add(id(inst))

    # Pass 2: branch targets are blocks of this function; phi nodes agree
    # with predecessors; operand types are sane.
    for block in function.blocks:
        preds = block.predecessors()
        for inst in block.instructions:
            errors.extend(_verify_instruction(function, block, inst, block_set))
            if isinstance(inst, PhiInst):
                incoming_ids = set(id(b) for b in inst.incoming_blocks)
                pred_ids = set(id(p) for p in preds)
                if incoming_ids != pred_ids:
                    incoming_names = sorted(b.name for b in inst.incoming_blocks)
                    pred_names = sorted(p.name for p in preds)
                    errors.append(
                        f"{where}: phi %{inst.name} in {block.name} has incoming "
                        f"{incoming_names} but predecessors are {pred_names}")

    # Pass 3: uses of instruction results are defined somewhere in the
    # function (full dominance checking is done only for non-phi uses within
    # a single block to keep the verifier fast).
    for block in function.blocks:
        seen_here: set = set()
        for inst in block.instructions:
            for op in inst.operands:
                if isinstance(op, Instruction):
                    if id(op) not in defined:
                        errors.append(
                            f"{where}: %{inst.name or inst.opcode.value} in "
                            f"{block.name} uses undefined value %{op.name}")
                    elif (op.parent is block and not isinstance(inst, PhiInst)
                          and id(op) not in seen_here
                          and op in block.instructions):
                        errors.append(
                            f"{where}: use of %{op.name} before its definition "
                            f"in block {block.name}")
                elif isinstance(op, Argument):
                    if op not in function.arguments:
                        errors.append(
                            f"{where}: use of foreign argument %{op.name}")
            if not inst.type.is_void:
                seen_here.add(id(inst))
    return errors


def verify_ssa_dominance(module: Module) -> None:
    """Full SSA dominance check: every use of an instruction result must be
    dominated by the defining instruction, and a phi's incoming value must
    dominate the matching predecessor's exit.

    The per-pass structural verifier skips this on purpose (it needs a
    dominator tree per function, which is too slow to rebuild after every
    pass on every function).  The differential fuzzer's oracle runs it on
    each compiled module, and regression tests call it directly — a broken
    jump-threading edge redirect once survived the structural checks and
    only surfaced as a compile-time hang two passes later.
    """
    # Late import: repro.analysis imports repro.ir at module load time.
    from ..analysis.dominators import DominatorTree

    errors: List[str] = []
    for function in module.defined_functions():
        if not function.blocks:
            continue
        dom = DominatorTree(function)
        reachable = set(id(b) for b in dom.rpo)
        where = f"function @{function.name}"
        for block in function.blocks:
            if id(block) not in reachable:
                continue  # unreachable code has no dominance obligations
            position = {id(inst): i
                        for i, inst in enumerate(block.instructions)}
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    for value, pred in inst.incoming():
                        if not isinstance(value, Instruction):
                            continue
                        def_block = value.parent
                        if def_block is None or id(pred) not in reachable or \
                                not dom.dominates(def_block, pred):
                            errors.append(
                                f"{where}: phi %{inst.name} in {block.name} "
                                f"takes %{value.name} from edge {pred.name}, "
                                f"which its definition does not dominate")
                    continue
                for op in inst.operands:
                    if not isinstance(op, Instruction) or op.type.is_void:
                        continue
                    def_block = op.parent
                    if def_block is block:
                        if position.get(id(op), -1) >= position[id(inst)]:
                            errors.append(
                                f"{where}: %{inst.name or inst.opcode.value} "
                                f"in {block.name} uses %{op.name} before its "
                                f"definition")
                    elif def_block is None or \
                            not dom.dominates(def_block, block):
                        errors.append(
                            f"{where}: %{inst.name or inst.opcode.value} in "
                            f"{block.name} uses %{op.name} defined in "
                            f"non-dominating block "
                            f"{def_block.name if def_block else '<detached>'}")
    if errors:
        raise VerificationError(errors)


def _verify_instruction(function: Function, block: BasicBlock,
                        inst: Instruction, block_set: set) -> List[str]:
    errors: List[str] = []
    where = f"@{function.name}:{block.name}"

    if isinstance(inst, BranchInst):
        if inst.is_conditional and inst.condition.type != I1:
            errors.append(f"{where}: branch condition is not i1")
        for target in inst.successors():
            if id(target) not in block_set:
                errors.append(f"{where}: branch to foreign block {target.name}")
    elif isinstance(inst, SwitchInst):
        for target in inst.successors():
            if id(target) not in block_set:
                errors.append(f"{where}: switch to foreign block {target.name}")
    elif isinstance(inst, ReturnInst):
        if inst.value is None:
            if not function.return_type.is_void:
                errors.append(f"{where}: ret void in non-void function")
        elif inst.value.type != function.return_type:
            errors.append(
                f"{where}: ret type {inst.value.type} != {function.return_type}")
    elif isinstance(inst, StoreInst):
        ptr_type = inst.pointer.type
        if not isinstance(ptr_type, PointerType):
            errors.append(f"{where}: store through non-pointer")
        elif ptr_type.pointee != inst.value.type:
            errors.append(
                f"{where}: store of {inst.value.type} through {ptr_type}")
    elif isinstance(inst, LoadInst):
        if not isinstance(inst.pointer.type, PointerType):
            errors.append(f"{where}: load from non-pointer")
    elif isinstance(inst, ICmpInst):
        if inst.lhs.type != inst.rhs.type:
            errors.append(
                f"{where}: icmp operand types differ "
                f"({inst.lhs.type} vs {inst.rhs.type})")
    elif isinstance(inst, SelectInst):
        if inst.condition.type != I1:
            errors.append(f"{where}: select condition is not i1")
        if inst.true_value.type != inst.false_value.type:
            errors.append(f"{where}: select arm types differ")
    elif inst.is_binary:
        if inst.operands[0].type != inst.operands[1].type:
            errors.append(
                f"{where}: binary operand types differ "
                f"({inst.operands[0].type} vs {inst.operands[1].type})")
        if not isinstance(inst.type, IntType):
            errors.append(f"{where}: binary result is not an integer")
    elif isinstance(inst, CallInst):
        callee = inst.callee
        if isinstance(callee, Function):
            expected = len(callee.function_type.param_types)
            if not callee.function_type.is_vararg and len(inst.args) != expected:
                errors.append(
                    f"{where}: call to @{callee.name} with {len(inst.args)} "
                    f"args, expected {expected}")
    return errors
