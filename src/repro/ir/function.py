"""Functions: a list of basic blocks plus a signature."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType, Type
from .values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from .module import Module


class Function(Value):
    """A function definition (with blocks) or declaration (without).

    The value itself denotes the function's address, so calls use it as an
    operand directly.
    """

    def __init__(self, name: str, function_type: FunctionType,
                 param_names: Optional[List[str]] = None,
                 parent: Optional["Module"] = None) -> None:
        super().__init__(function_type, name)
        self.function_type = function_type
        self.parent = parent
        self.blocks: List[BasicBlock] = []
        self.arguments: List[Argument] = []
        #: Function-level attributes, e.g. ``{"inline_hint": True}`` or
        #: ``{"no_inline": True}``; consulted by the inliner's cost model.
        self.attributes: Dict[str, object] = {}
        #: Module-level metadata preserved for verification tools.
        self.metadata: Dict[str, object] = {}
        #: Modification epoch: bumped by every structural mutation (block or
        #: instruction insertion/removal, operand rewrites).  The analysis
        #: manager keys its per-function caches on this counter, so a cached
        #: analysis is reused only while the function is untouched.
        self._ir_epoch = 0
        self._next_name_id = 0
        names = param_names or [f"arg{i}" for i in range(len(function_type.param_types))]
        for i, (ty, pname) in enumerate(zip(function_type.param_types, names)):
            self.arguments.append(Argument(ty, pname, i))

    # ------------------------------------------------------------ structure
    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction in the function."""
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    # ------------------------------------------------------------- mutation
    @property
    def ir_epoch(self) -> int:
        """The current modification epoch (see :attr:`_ir_epoch`)."""
        return self._ir_epoch

    def bump_ir_epoch(self) -> None:
        """Record that this function's IR changed (invalidates cached
        analyses keyed on the old epoch)."""
        self._ir_epoch += 1
        parent = self.parent
        if parent is not None:
            parent.bump_ir_epoch()

    def append_block(self, block: BasicBlock) -> BasicBlock:
        block.parent = self
        if not block.name:
            block.name = self.next_name("bb")
        self.blocks.append(block)
        self.bump_ir_epoch()
        return block

    def insert_block_after(self, anchor: BasicBlock, block: BasicBlock) -> BasicBlock:
        block.parent = self
        if not block.name:
            block.name = self.next_name("bb")
        self.blocks.insert(self.blocks.index(anchor) + 1, block)
        self.bump_ir_epoch()
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None
        self.bump_ir_epoch()

    def next_name(self, prefix: str = "t") -> str:
        """Generate a fresh local name unique within this function."""
        self._next_name_id += 1
        return f"{prefix}{self._next_name_id}"

    def rename_locals(self) -> None:
        """Give every block and instruction a unique, dense name.

        Used by the printer so that textual IR is deterministic and by the
        parser round-trip tests.
        """
        taken: Dict[str, int] = {}

        def unique(base: str) -> str:
            if base not in taken:
                taken[base] = 0
                return base
            taken[base] += 1
            return f"{base}.{taken[base]}"

        for arg in self.arguments:
            arg.name = unique(arg.name or "arg")
        counter = 0
        for block in self.blocks:
            block.name = unique(block.name or f"bb{counter}")
            counter += 1
            for inst in block.instructions:
                if not inst.type.is_void:
                    inst.name = unique(inst.name or f"v{counter}")
                    counter += 1

    # ------------------------------------------------------------- queries
    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"function {self.name} has no block '{name}'")

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declaration" if self.is_declaration else f"{len(self.blocks)} blocks"
        return f"<Function {self.name} ({kind})>"
