"""Type system for the repro IR.

The IR is typed in the style of LLVM: integer types of arbitrary bit width,
pointers, fixed-size arrays, structs, functions and ``void``.  Types are
immutable value objects; two structurally identical types compare equal and
hash equally, so they can be freely used as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Type:
    """Base class of all IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_aggregate(self) -> bool:
        return self.is_array or self.is_struct

    @property
    def is_first_class(self) -> bool:
        """True for types that an SSA value may have."""
        return not self.is_void and not self.is_function

    def size_in_bytes(self) -> int:
        """Size of a value of this type in the IR's flat byte memory model."""
        raise NotImplementedError(f"type {self} has no size")


@dataclass(frozen=True)
class VoidType(Type):
    """The type of instructions that produce no value."""

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """An integer type of a fixed bit width (i1, i8, i16, i32, i64)."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.width > 128:
            raise ValueError(f"unsupported integer width {self.width}")

    def __str__(self) -> str:
        return f"i{self.width}"

    def size_in_bytes(self) -> int:
        return max(1, (self.width + 7) // 8)

    @property
    def mask(self) -> int:
        """Bit mask covering the full width (e.g. 0xFF for i8)."""
        return (1 << self.width) - 1

    @property
    def sign_bit(self) -> int:
        return 1 << (self.width - 1)

    @property
    def min_signed(self) -> int:
        return -(1 << (self.width - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.width - 1)) - 1

    @property
    def max_unsigned(self) -> int:
        return self.mask


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to a value of ``pointee`` type.

    Pointers are 64-bit in the memory model.
    """

    pointee: Type

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def size_in_bytes(self) -> int:
        return 8


@dataclass(frozen=True)
class ArrayType(Type):
    """Fixed-size array of ``count`` elements of ``element`` type."""

    element: Type
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("array count must be non-negative")

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def size_in_bytes(self) -> int:
        return self.count * self.element.size_in_bytes()


@dataclass(frozen=True)
class StructType(Type):
    """A struct with named fields laid out sequentially (no padding)."""

    name: str
    fields: Tuple[Type, ...]
    field_names: Tuple[str, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.fields)
        return f"%{self.name} = {{ {inner} }}" if self.name else f"{{ {inner} }}"

    def short_str(self) -> str:
        if self.name:
            return f"%struct.{self.name}"
        inner = ", ".join(str(f) for f in self.fields)
        return f"{{ {inner} }}"

    def size_in_bytes(self) -> int:
        return sum(f.size_in_bytes() for f in self.fields)

    def field_offset(self, index: int) -> int:
        """Byte offset of field ``index`` from the start of the struct."""
        if index < 0 or index >= len(self.fields):
            raise IndexError(f"struct {self.name} has no field {index}")
        return sum(f.size_in_bytes() for f in self.fields[:index])

    def field_index(self, name: str) -> int:
        """Index of the field called ``name``."""
        try:
            return self.field_names.index(name)
        except ValueError as exc:
            raise KeyError(f"struct {self.name} has no field '{name}'") from exc


@dataclass(frozen=True)
class FunctionType(Type):
    """Type of a function: return type plus parameter types."""

    return_type: Type
    param_types: Tuple[Type, ...]
    is_vararg: bool = False

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        if self.is_vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type} ({params})"


# Common singletons used throughout the code base.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)


def int_type(width: int) -> IntType:
    """Return the canonical integer type of ``width`` bits."""
    if width == 1:
        return I1
    if width == 8:
        return I8
    if width == 16:
        return I16
    if width == 32:
        return I32
    if width == 64:
        return I64
    return IntType(width)


def pointer_to(ty: Type) -> PointerType:
    """Return a pointer type to ``ty``."""
    return PointerType(ty)
