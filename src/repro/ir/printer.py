"""Textual rendering of IR modules, functions and instructions.

The syntax intentionally resembles LLVM assembly so that readers familiar
with the paper's tooling can follow dumps easily.
"""

from __future__ import annotations

from typing import List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst, BinaryInst, BranchInst, CallInst, CastInst, GEPInst, ICmpInst,
    Instruction, LoadInst, Opcode, PhiInst, ReturnInst, SelectInst, StoreInst,
    SwitchInst, UnreachableInst,
)
from .module import Module
from .values import ConstantArray, GlobalVariable, Value


def print_module(module: Module) -> str:
    """Render a whole module as text."""
    lines: List[str] = [f"; module {module.name}"]
    if module.metadata:
        lines.append(f"; metadata: {module.metadata}")
    for gv in module.globals.values():
        lines.append(_print_global(gv))
    if module.globals:
        lines.append("")
    for function in module.functions.values():
        lines.append(print_function(function))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _print_global(gv: GlobalVariable) -> str:
    kind = "constant" if gv.is_constant else "global"
    init = f" {gv.initializer.ref()}" if gv.initializer is not None else ""
    return f"@{gv.name} = {kind} {gv.value_type}{init}"


def print_function(function: Function) -> str:
    """Render a function definition or declaration."""
    params = ", ".join(f"{arg.type} %{arg.name}" for arg in function.arguments)
    signature = f"{function.return_type} @{function.name}({params})"
    if function.is_declaration:
        return f"declare {signature}"
    lines = [f"define {signature} {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {print_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def _ref(value: Value) -> str:
    if isinstance(value, BasicBlock):
        return f"label %{value.name}"
    return f"{value.type} {value.ref()}"


def print_instruction(inst: Instruction) -> str:
    """Render one instruction."""
    text = _print_instruction_body(inst)
    if inst.metadata:
        annotations = ", ".join(f"!{key} {value!r}" for key, value in
                                sorted(inst.metadata.items()))
        text = f"{text}  ; {annotations}"
    return text


def _print_instruction_body(inst: Instruction) -> str:
    name = f"%{inst.name} = " if not inst.type.is_void else ""
    if isinstance(inst, BinaryInst):
        return (f"{name}{inst.opcode.value} {inst.type} "
                f"{inst.lhs.ref()}, {inst.rhs.ref()}")
    if isinstance(inst, ICmpInst):
        return (f"{name}icmp {inst.predicate.value} {inst.lhs.type} "
                f"{inst.lhs.ref()}, {inst.rhs.ref()}")
    if isinstance(inst, SelectInst):
        return (f"{name}select i1 {inst.condition.ref()}, "
                f"{_ref(inst.true_value)}, {_ref(inst.false_value)}")
    if isinstance(inst, CastInst):
        return (f"{name}{inst.opcode.value} {inst.value.type} "
                f"{inst.value.ref()} to {inst.type}")
    if isinstance(inst, AllocaInst):
        return f"{name}alloca {inst.allocated_type}"
    if isinstance(inst, LoadInst):
        return f"{name}load {inst.type}, {_ref(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {_ref(inst.value)}, {_ref(inst.pointer)}"
    if isinstance(inst, GEPInst):
        indices = ", ".join(_ref(i) for i in inst.indices)
        return f"{name}getelementptr {_ref(inst.base)}, {indices}"
    if isinstance(inst, CallInst):
        args = ", ".join(_ref(a) for a in inst.args)
        return f"{name}call {inst.type} {inst.callee.ref()}({args})"
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            return (f"br i1 {inst.condition.ref()}, label %{inst.true_target.name}, "
                    f"label %{inst.false_target.name}")
        return f"br label %{inst.true_target.name}"
    if isinstance(inst, SwitchInst):
        cases = " ".join(f"{const.ref()}: label %{block.name}"
                         for const, block in inst.cases())
        return (f"switch {_ref(inst.value)}, label %{inst.default.name} "
                f"[{cases}]")
    if isinstance(inst, ReturnInst):
        if inst.value is None:
            return "ret void"
        return f"ret {_ref(inst.value)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, PhiInst):
        incoming = ", ".join(f"[ {value.ref()}, %{block.name} ]"
                             for value, block in inst.incoming())
        return f"{name}phi {inst.type} {incoming}"
    raise NotImplementedError(f"cannot print {inst!r}")
