"""Instruction set of the repro IR.

The instruction set mirrors the subset of LLVM IR that the paper's
transformations operate on: integer arithmetic, comparisons, select, memory
(alloca/load/store/getelementptr), calls, control flow (br/switch/ret/
unreachable) and phi nodes, plus integer casts.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .types import IntType, PointerType, Type, VOID, I1, I64
from .values import Constant, User, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from .basicblock import BasicBlock
    from .function import Function


class Opcode(enum.Enum):
    """Opcodes of all IR instructions."""

    # Arithmetic / bitwise
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    # Comparison and selection
    ICMP = "icmp"
    SELECT = "select"
    # Memory
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    GEP = "getelementptr"
    # Casts
    ZEXT = "zext"
    SEXT = "sext"
    TRUNC = "trunc"
    PTRTOINT = "ptrtoint"
    INTTOPTR = "inttoptr"
    BITCAST = "bitcast"
    # Calls and control flow
    CALL = "call"
    BR = "br"
    SWITCH = "switch"
    RET = "ret"
    UNREACHABLE = "unreachable"
    PHI = "phi"


BINARY_OPCODES = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.UDIV,
    Opcode.SREM, Opcode.UREM, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.LSHR, Opcode.ASHR,
}

CAST_OPCODES = {
    Opcode.ZEXT, Opcode.SEXT, Opcode.TRUNC,
    Opcode.PTRTOINT, Opcode.INTTOPTR, Opcode.BITCAST,
}

COMMUTATIVE_OPCODES = {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR}


class ICmpPredicate(enum.Enum):
    """Comparison predicates for :class:`ICmpInst`."""

    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"

    @property
    def is_signed(self) -> bool:
        return self in (ICmpPredicate.SLT, ICmpPredicate.SLE,
                        ICmpPredicate.SGT, ICmpPredicate.SGE)

    @property
    def is_equality(self) -> bool:
        return self in (ICmpPredicate.EQ, ICmpPredicate.NE)

    def inverse(self) -> "ICmpPredicate":
        """The predicate whose result is the logical negation of this one."""
        table = {
            ICmpPredicate.EQ: ICmpPredicate.NE,
            ICmpPredicate.NE: ICmpPredicate.EQ,
            ICmpPredicate.SLT: ICmpPredicate.SGE,
            ICmpPredicate.SLE: ICmpPredicate.SGT,
            ICmpPredicate.SGT: ICmpPredicate.SLE,
            ICmpPredicate.SGE: ICmpPredicate.SLT,
            ICmpPredicate.ULT: ICmpPredicate.UGE,
            ICmpPredicate.ULE: ICmpPredicate.UGT,
            ICmpPredicate.UGT: ICmpPredicate.ULE,
            ICmpPredicate.UGE: ICmpPredicate.ULT,
        }
        return table[self]

    def swapped(self) -> "ICmpPredicate":
        """The predicate obtained by swapping the operands."""
        table = {
            ICmpPredicate.EQ: ICmpPredicate.EQ,
            ICmpPredicate.NE: ICmpPredicate.NE,
            ICmpPredicate.SLT: ICmpPredicate.SGT,
            ICmpPredicate.SLE: ICmpPredicate.SGE,
            ICmpPredicate.SGT: ICmpPredicate.SLT,
            ICmpPredicate.SGE: ICmpPredicate.SLE,
            ICmpPredicate.ULT: ICmpPredicate.UGT,
            ICmpPredicate.ULE: ICmpPredicate.UGE,
            ICmpPredicate.UGT: ICmpPredicate.ULT,
            ICmpPredicate.UGE: ICmpPredicate.ULE,
        }
        return table[self]


class Instruction(User):
    """Base class of all IR instructions."""

    opcode: Opcode

    def __init__(self, opcode: Opcode, ty: Type,
                 operands: Iterable[Value] = (), name: str = "") -> None:
        super().__init__(ty, operands, name)
        self.opcode = opcode
        self.parent: Optional["BasicBlock"] = None
        #: Free-form metadata preserved across passes (the paper's "program
        #: annotations"): value ranges, trip counts, alias sets, source types.
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------ properties
    @property
    def is_terminator(self) -> bool:
        return self.opcode in (Opcode.BR, Opcode.RET, Opcode.SWITCH,
                               Opcode.UNREACHABLE)

    @property
    def is_binary(self) -> bool:
        return self.opcode in BINARY_OPCODES

    @property
    def is_cast(self) -> bool:
        return self.opcode in CAST_OPCODES

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPCODES

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction may write memory or affect control flow."""
        if self.opcode in (Opcode.STORE, Opcode.RET, Opcode.BR, Opcode.SWITCH,
                           Opcode.UNREACHABLE):
            return True
        if self.opcode is Opcode.CALL:
            return True
        return False

    @property
    def may_read_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.CALL)

    @property
    def may_write_memory(self) -> bool:
        return self.opcode in (Opcode.STORE, Opcode.CALL)

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    # ------------------------------------------------------------ list hooks
    def set_operand(self, index: int, value: Value) -> None:
        super().set_operand(index, value)
        # Operand rewrites can redirect CFG edges (branch targets), so they
        # advance the containing function's modification epoch.
        block = self.parent
        if block is not None:
            block.bump_ir_epoch()

    def erase_from_parent(self) -> None:
        """Unlink from the containing block and drop all operand uses."""
        if self.parent is not None:
            self.parent.remove_instruction(self)
        self.drop_all_references()

    def remove_from_parent(self) -> None:
        """Unlink from the containing block but keep operands."""
        if self.parent is not None:
            self.parent.remove_instruction(self)

    def clone(self) -> "Instruction":
        """Shallow clone: same opcode/type/operands, no parent."""
        new = self.__class__.__new__(self.__class__)
        Instruction.__init__(new, self.opcode, self.type, list(self.operands),
                             self.name)
        for attr, value in self.__dict__.items():
            if attr in ("operands", "uses", "parent", "metadata"):
                continue
            setattr(new, attr, value)
        new.metadata = dict(self.metadata)
        new.parent = None
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.opcode.value} {self.ref()}>"


# --------------------------------------------------------------------------
# Arithmetic and logic
# --------------------------------------------------------------------------
class BinaryInst(Instruction):
    """A two-operand arithmetic or bitwise instruction."""

    def __init__(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"{opcode} is not a binary opcode")
        super().__init__(opcode, lhs.type, (lhs, rhs), name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmpInst(Instruction):
    """Integer (or pointer) comparison producing an ``i1``."""

    def __init__(self, predicate: ICmpPredicate, lhs: Value, rhs: Value,
                 name: str = "") -> None:
        super().__init__(Opcode.ICMP, I1, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def clone(self) -> "ICmpInst":
        new = ICmpInst(self.predicate, self.lhs, self.rhs, self.name)
        new.metadata = dict(self.metadata)
        return new


class SelectInst(Instruction):
    """``select cond, true_value, false_value`` — a branch-free conditional."""

    def __init__(self, condition: Value, true_value: Value, false_value: Value,
                 name: str = "") -> None:
        super().__init__(Opcode.SELECT, true_value.type,
                         (condition, true_value, false_value), name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


# --------------------------------------------------------------------------
# Casts
# --------------------------------------------------------------------------
class CastInst(Instruction):
    """Integer/pointer conversion (zext, sext, trunc, ptrtoint, inttoptr,
    bitcast)."""

    def __init__(self, opcode: Opcode, value: Value, to_type: Type,
                 name: str = "") -> None:
        if opcode not in CAST_OPCODES:
            raise ValueError(f"{opcode} is not a cast opcode")
        super().__init__(opcode, to_type, (value,), name)

    @property
    def value(self) -> Value:
        return self.operands[0]

    def clone(self) -> "CastInst":
        new = CastInst(self.opcode, self.value, self.type, self.name)
        new.metadata = dict(self.metadata)
        return new


# --------------------------------------------------------------------------
# Memory
# --------------------------------------------------------------------------
class AllocaInst(Instruction):
    """Stack allocation of one value of ``allocated_type``."""

    def __init__(self, allocated_type: Type, name: str = "") -> None:
        super().__init__(Opcode.ALLOCA, PointerType(allocated_type), (), name)
        self.allocated_type = allocated_type

    def clone(self) -> "AllocaInst":
        new = AllocaInst(self.allocated_type, self.name)
        new.metadata = dict(self.metadata)
        return new


class LoadInst(Instruction):
    """Load a value of the pointee type from a pointer."""

    def __init__(self, pointer: Value, name: str = "") -> None:
        ptr_type = pointer.type
        if not isinstance(ptr_type, PointerType):
            raise TypeError(f"load requires a pointer operand, got {ptr_type}")
        super().__init__(Opcode.LOAD, ptr_type.pointee, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    """Store ``value`` through ``pointer``.  Produces no result."""

    def __init__(self, value: Value, pointer: Value) -> None:
        super().__init__(Opcode.STORE, VOID, (value, pointer))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GEPInst(Instruction):
    """``getelementptr`` — pointer arithmetic over arrays and structs.

    The result is ``base + sum(index_i * scale_i)`` in the flat byte memory
    model; the result type records the pointee for type checking.
    """

    def __init__(self, base: Value, indices: Sequence[Value],
                 result_pointee: Type, name: str = "") -> None:
        if not isinstance(base.type, PointerType):
            raise TypeError(f"gep requires a pointer base, got {base.type}")
        super().__init__(Opcode.GEP, PointerType(result_pointee),
                         (base, *indices), name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return list(self.operands[1:])

    def clone(self) -> "GEPInst":
        ptr_type = self.type
        assert isinstance(ptr_type, PointerType)
        new = GEPInst(self.base, self.indices, ptr_type.pointee, self.name)
        new.metadata = dict(self.metadata)
        return new


# --------------------------------------------------------------------------
# Calls
# --------------------------------------------------------------------------
class CallInst(Instruction):
    """Direct call to a function.  The callee is operand 0."""

    def __init__(self, callee: Value, args: Sequence[Value],
                 return_type: Type, name: str = "") -> None:
        super().__init__(Opcode.CALL, return_type, (callee, *args), name)

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return list(self.operands[1:])

    def clone(self) -> "CallInst":
        new = CallInst(self.callee, self.args, self.type, self.name)
        new.metadata = dict(self.metadata)
        return new


# --------------------------------------------------------------------------
# Control flow
# --------------------------------------------------------------------------
class BranchInst(Instruction):
    """Conditional or unconditional branch."""

    def __init__(self, target: "BasicBlock",
                 condition: Optional[Value] = None,
                 false_target: Optional["BasicBlock"] = None) -> None:
        if condition is None:
            super().__init__(Opcode.BR, VOID, (target,))
        else:
            if false_target is None:
                raise ValueError("conditional branch needs a false target")
            super().__init__(Opcode.BR, VOID, (condition, target, false_target))

    @property
    def is_conditional(self) -> bool:
        return len(self.operands) == 3

    @property
    def condition(self) -> Value:
        if not self.is_conditional:
            raise ValueError("unconditional branch has no condition")
        return self.operands[0]

    @property
    def true_target(self) -> "BasicBlock":
        return self.operands[1] if self.is_conditional else self.operands[0]

    @property
    def false_target(self) -> "BasicBlock":
        if not self.is_conditional:
            raise ValueError("unconditional branch has no false target")
        return self.operands[2]

    def successors(self) -> List["BasicBlock"]:
        if self.is_conditional:
            return [self.operands[1], self.operands[2]]
        return [self.operands[0]]


class SwitchInst(Instruction):
    """``switch value, default [case0: block0, ...]``."""

    def __init__(self, value: Value, default: "BasicBlock",
                 cases: Sequence[Tuple[Constant, "BasicBlock"]] = ()) -> None:
        operands: List[Value] = [value, default]
        for const, block in cases:
            operands.append(const)
            operands.append(block)
        super().__init__(Opcode.SWITCH, VOID, operands)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def default(self) -> "BasicBlock":
        return self.operands[1]

    def cases(self) -> List[Tuple[Constant, "BasicBlock"]]:
        result = []
        for i in range(2, len(self.operands), 2):
            result.append((self.operands[i], self.operands[i + 1]))
        return result

    def successors(self) -> List["BasicBlock"]:
        return [self.default] + [block for _, block in self.cases()]


class ReturnInst(Instruction):
    """Return from the current function, optionally with a value."""

    def __init__(self, value: Optional[Value] = None) -> None:
        operands = (value,) if value is not None else ()
        super().__init__(Opcode.RET, VOID, operands)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class UnreachableInst(Instruction):
    """Marks a point that must never be reached (e.g. after a failed check)."""

    def __init__(self) -> None:
        super().__init__(Opcode.UNREACHABLE, VOID, ())

    def successors(self) -> List["BasicBlock"]:
        return []


class PhiInst(Instruction):
    """SSA phi node: selects a value based on the predecessor block."""

    def __init__(self, ty: Type, name: str = "") -> None:
        super().__init__(Opcode.PHI, ty, (), name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.append_operand(value)
        self.incoming_blocks.append(block)
        if self.parent is not None:
            self.parent.bump_ir_epoch()

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_value_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise KeyError(f"phi {self.ref()} has no incoming value for {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        """Remove the incoming entry for ``block`` (if present)."""
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                op = self.operands[i]
                op.remove_use(self, i)
                del self.operands[i]
                del self.incoming_blocks[i]
                # Re-register remaining uses with shifted indices.
                for j in range(i, len(self.operands)):
                    self.operands[j].remove_use(self, j + 1)
                    self.operands[j].add_use(self, j)
                if self.parent is not None:
                    self.parent.bump_ir_epoch()
                return

    def clone(self) -> "PhiInst":
        new = PhiInst(self.type, self.name)
        for value, block in self.incoming():
            new.add_incoming(value, block)
        new.metadata = dict(self.metadata)
        return new
