"""Value hierarchy of the repro IR.

Every operand of an instruction is a :class:`Value`.  Values carry a type and
an optional name, and track their uses so that transformations can rewrite
the use-def graph (``replace_all_uses_with``).  Concrete subclasses are
constants, function arguments, global variables, basic blocks (as branch
targets), functions, and instructions (defined in :mod:`repro.ir.instructions`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TYPE_CHECKING

from .types import ArrayType, IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from .instructions import Instruction


class Use:
    """A single use of a value: ``user.operands[index] is value``."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int) -> None:
        self.user = user
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Use({self.user!r}, {self.index})"


class Value:
    """Base class for everything that can appear as an operand."""

    def __init__(self, ty: Type, name: str = "") -> None:
        self.type = ty
        self.name = name
        self.uses: List[Use] = []

    # ------------------------------------------------------------------ uses
    def add_use(self, user: "User", index: int) -> None:
        self.uses.append(Use(user, index))

    def remove_use(self, user: "User", index: int) -> None:
        for i, use in enumerate(self.uses):
            if use.user is user and use.index == index:
                del self.uses[i]
                return

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def users(self) -> List["User"]:
        """Distinct users of this value, in first-use order."""
        seen: List[User] = []
        for use in self.uses:
            if use.user not in seen:
                seen.append(use.user)
        return seen

    def replace_all_uses_with(self, new_value: "Value") -> None:
        """Rewrite every use of ``self`` to use ``new_value`` instead."""
        if new_value is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, new_value)

    # ------------------------------------------------------------- rendering
    def ref(self) -> str:
        """How this value is referenced as an operand (e.g. ``%x`` or ``42``)."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class User(Value):
    """A value that uses other values as operands."""

    def __init__(self, ty: Type, operands: Iterable[Value] = (), name: str = "") -> None:
        super().__init__(ty, name)
        self.operands: List[Value] = []
        for op in operands:
            self.append_operand(op)

    def append_operand(self, value: Value) -> None:
        index = len(self.operands)
        self.operands.append(value)
        value.add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        old.remove_use(self, index)
        self.operands[index] = value
        value.add_use(self, index)

    def drop_all_references(self) -> None:
        """Remove this user from the use lists of all its operands."""
        for index, op in enumerate(self.operands):
            op.remove_use(self, index)
        self.operands = []


# --------------------------------------------------------------------------
# Constants
# --------------------------------------------------------------------------
class Constant(Value):
    """Base class for compile-time constants."""

    def ref(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class ConstantInt(Constant):
    """An integer constant, stored as the unsigned two's-complement value."""

    def __init__(self, ty: IntType, value: int) -> None:
        super().__init__(ty)
        self.value = value & ty.mask

    @property
    def signed_value(self) -> int:
        """The value interpreted as a signed integer."""
        ity = self.type
        assert isinstance(ity, IntType)
        if self.value & ity.sign_bit:
            return self.value - (1 << ity.width)
        return self.value

    @property
    def is_zero(self) -> bool:
        return self.value == 0

    @property
    def is_one(self) -> bool:
        return self.value == 1

    @property
    def is_all_ones(self) -> bool:
        ity = self.type
        assert isinstance(ity, IntType)
        return self.value == ity.mask

    def ref(self) -> str:
        return str(self.signed_value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConstantInt {self.type} {self.signed_value}>"


class UndefValue(Constant):
    """An undefined value of a given type."""

    def ref(self) -> str:
        return "undef"


class ConstantArray(Constant):
    """A constant array, used mainly for string literals."""

    def __init__(self, element_type: IntType, values: Iterable[int]) -> None:
        vals = [v & element_type.mask for v in values]
        super().__init__(ArrayType(element_type, len(vals)))
        self.values = vals

    @classmethod
    def from_string(cls, text: str, null_terminate: bool = True) -> "ConstantArray":
        data = list(text.encode("utf-8"))
        if null_terminate:
            data.append(0)
        return cls(IntType(8), data)

    def as_bytes(self) -> bytes:
        return bytes(v & 0xFF for v in self.values)

    def ref(self) -> str:
        return "c" + _quote_bytes(self.values)


def _quote_bytes(values: Iterable[int]) -> str:
    parts = []
    for v in values:
        ch = v & 0xFF
        if 0x20 <= ch <= 0x7E and ch not in (0x22, 0x5C):
            parts.append(chr(ch))
        else:
            parts.append(f"\\{ch:02x}")
    return '"' + "".join(parts) + '"'


# --------------------------------------------------------------------------
# Globals and arguments
# --------------------------------------------------------------------------
class GlobalVariable(Value):
    """A module-level variable.  Its value is the *address*; the type is a
    pointer to the stored type."""

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[Constant] = None,
        is_constant: bool = False,
    ) -> None:
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant

    def ref(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: Type, name: str, index: int) -> None:
        super().__init__(ty, name)
        self.index = index
