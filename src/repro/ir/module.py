"""Modules: the top-level IR container (functions + globals)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .function import Function
from .types import FunctionType, Type
from .values import Constant, GlobalVariable


class Module:
    """A translation unit: named functions and global variables."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        #: Module-level metadata (e.g. which optimization level produced it).
        self.metadata: Dict[str, object] = {}
        #: Modification epoch: advanced whenever a function is added/removed
        #: or any contained function mutates.  Module-level analyses (the
        #: call graph) are cached against this counter.
        self._ir_epoch = 0

    @property
    def ir_epoch(self) -> int:
        return self._ir_epoch

    def bump_ir_epoch(self) -> None:
        self._ir_epoch += 1

    # ----------------------------------------------------------- functions
    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function '{function.name}'")
        function.parent = self
        self.functions[function.name] = function
        self.bump_ir_epoch()
        return function

    def create_function(self, name: str, function_type: FunctionType,
                        param_names: Optional[List[str]] = None) -> Function:
        return self.add_function(Function(name, function_type, param_names, self))

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError as exc:
            raise KeyError(f"module {self.name} has no function '{name}'") from exc

    def get_function_or_none(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def remove_function(self, function: Function) -> None:
        del self.functions[function.name]
        function.parent = None
        self.bump_ir_epoch()

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def declared_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_declaration]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    # ------------------------------------------------------------- globals
    def add_global(self, name: str, value_type: Type,
                   initializer: Optional[Constant] = None,
                   is_constant: bool = False) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global '{name}'")
        gv = GlobalVariable(name, value_type, initializer, is_constant)
        self.globals[name] = gv
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError as exc:
            raise KeyError(f"module {self.name} has no global '{name}'") from exc

    def unique_global_name(self, base: str) -> str:
        """Return a global name derived from ``base`` that is not yet taken."""
        if base not in self.globals and base not in self.functions:
            return base
        i = 1
        while f"{base}.{i}" in self.globals or f"{base}.{i}" in self.functions:
            i += 1
        return f"{base}.{i}"

    # ------------------------------------------------------------- metrics
    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.defined_functions())

    def block_count(self) -> int:
        return sum(len(f.blocks) for f in self.defined_functions())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
