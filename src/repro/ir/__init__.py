"""repro.ir — an SSA, typed, LLVM-like intermediate representation.

This package is the substrate that everything else builds on: the MiniC
front end lowers to it, the optimization passes transform it, and both the
concrete interpreter and the symbolic executor consume it.
"""

from .types import (
    ArrayType, FunctionType, IntType, PointerType, StructType, Type, VoidType,
    I1, I8, I16, I32, I64, VOID, int_type, pointer_to,
)
from .values import (
    Argument, Constant, ConstantArray, ConstantInt, GlobalVariable, UndefValue,
    Use, User, Value,
)
from .instructions import (
    AllocaInst, BinaryInst, BranchInst, CallInst, CastInst, GEPInst, ICmpInst,
    ICmpPredicate, Instruction, LoadInst, Opcode, PhiInst, ReturnInst,
    SelectInst, StoreInst, SwitchInst, UnreachableInst,
    BINARY_OPCODES, CAST_OPCODES, COMMUTATIVE_OPCODES,
)
from .basicblock import BasicBlock
from .function import Function
from .module import Module
from .builder import IRBuilder, eval_binary, eval_icmp
from .printer import print_function, print_instruction, print_module
from .verifier import (
    VerificationError, verify_function, verify_module, verify_ssa_dominance,
)

__all__ = [
    "ArrayType", "FunctionType", "IntType", "PointerType", "StructType",
    "Type", "VoidType", "I1", "I8", "I16", "I32", "I64", "VOID",
    "int_type", "pointer_to",
    "Argument", "Constant", "ConstantArray", "ConstantInt", "GlobalVariable",
    "UndefValue", "Use", "User", "Value",
    "AllocaInst", "BinaryInst", "BranchInst", "CallInst", "CastInst",
    "GEPInst", "ICmpInst", "ICmpPredicate", "Instruction", "LoadInst",
    "Opcode", "PhiInst", "ReturnInst", "SelectInst", "StoreInst",
    "SwitchInst", "UnreachableInst",
    "BINARY_OPCODES", "CAST_OPCODES", "COMMUTATIVE_OPCODES",
    "BasicBlock", "Function", "Module", "IRBuilder",
    "eval_binary", "eval_icmp",
    "print_function", "print_instruction", "print_module",
    "VerificationError", "verify_function", "verify_module",
    "verify_ssa_dominance",
]
