"""repro.pipelines — optimization levels, pipelines, and the compiler driver."""

from .levels import (
    CLEANUP, LEVEL_MAX_ITERATIONS, LEVEL_PIPELINES, OSYMBEX, OptLevel,
    build_pipeline, build_pipeline_from_spec, build_pipeline_from_text,
    describe_levels, level_spec, level_spec_string, parse_opt_level,
    pipeline_description, with_entry_points, with_runtime_checks,
)
from .compiler import (
    CompilationResult, CompileOptions, compile_at_all_levels, compile_source,
    link_sources,
)
from .session import (
    CompilerSession, PristineAnalysisExchange, SessionStats,
    TRANSFERABLE_ANALYSES,
)

__all__ = [
    "CLEANUP", "LEVEL_MAX_ITERATIONS", "LEVEL_PIPELINES",
    "OSYMBEX", "OptLevel",
    "build_pipeline", "build_pipeline_from_spec", "build_pipeline_from_text",
    "describe_levels", "level_spec", "level_spec_string", "parse_opt_level",
    "pipeline_description", "with_entry_points", "with_runtime_checks",
    "CompilationResult", "CompileOptions", "compile_at_all_levels",
    "compile_source", "link_sources",
    "CompilerSession", "PristineAnalysisExchange", "SessionStats",
    "TRANSFERABLE_ANALYSES",
]
