"""repro.pipelines — optimization levels, pipelines, and the compiler driver."""

from .levels import OSYMBEX, OptLevel, build_pipeline, pipeline_description
from .compiler import (
    CompilationResult, CompileOptions, compile_at_all_levels, compile_source,
    link_sources,
)

__all__ = [
    "OSYMBEX", "OptLevel", "build_pipeline", "pipeline_description",
    "CompilationResult", "CompileOptions", "compile_at_all_levels",
    "compile_source", "link_sources",
]
