"""The compiler driver: MiniC source -> optimized IR module.

This is the public entry point a user of the library calls.  It mirrors the
paper's Figure 3 build chain: the same source can be built in a debug
configuration (``-O0``), a release configuration (``-O3``) or a verification
configuration (``-OVERIFY``), and the -OVERIFY configuration additionally
links the verification-optimized C library.

Since the session redesign, :func:`compile_source` and
:func:`compile_at_all_levels` are thin wrappers over
:class:`repro.pipelines.session.CompilerSession` — a one-shot session for a
single compile, a shared one for a level sweep (which is what lets the sweep
reuse front-end work and translated analyses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis import AnalysisManagerStats
from ..ir import Module
from ..passes import PassRunRecord, TransformStats
from ..vlibc import libc_source
from .levels import OptLevel


@dataclass
class CompileOptions:
    """Options accepted by :func:`compile_source`."""

    level: OptLevel = OptLevel.O0
    #: Link the C library (most workloads need it; tiny kernels may not).
    link_libc: bool = True
    #: Override which libc variant is linked.  By default -OVERIFY links the
    #: verification-optimized variant and every other level links the
    #: execution-optimized one, exactly as §3 ("Library-level changes")
    #: prescribes.
    verification_libc: Optional[bool] = None
    #: Functions that must survive dead-function elimination.
    entry_points: Set[str] = field(default_factory=lambda: {"main"})
    #: Run the IR verifier after every pass (slow; used in tests).
    verify_after_each_pass: bool = False
    #: Let -OVERIFY insert runtime checks (ablation knob).
    enable_runtime_checks: bool = True
    module_name: str = "program"


@dataclass
class CompilationResult:
    """What the driver returns: the module plus compilation statistics."""

    module: Module
    level: OptLevel
    compile_seconds: float
    stats: TransformStats
    instruction_count: int
    source_size: int
    #: One record per pass execution (name, changed, duration, cache
    #: hits/misses) — the per-pass timing the harness reports.
    pass_history: List[PassRunRecord] = field(default_factory=list)
    #: Aggregate analysis-cache behaviour of the whole pipeline run.
    analysis_stats: Optional[AnalysisManagerStats] = None
    #: The pipeline that ran, in the registry's textual syntax.
    pipeline_text: str = ""

    def table3_row(self) -> Dict[str, int]:
        return self.stats.table3_row()

    @property
    def analysis_cache_hit_rate(self) -> float:
        return self.analysis_stats.hit_rate if self.analysis_stats else 0.0


def link_sources(program_source: str, options: CompileOptions) -> str:
    """Combine the program with the selected C library variant.

    Linking is textual (a single translation unit), which mirrors how the
    KLEE tool chain links its special uClibc before analysis.
    """
    if not options.link_libc:
        return program_source
    use_verification_libc = options.verification_libc
    if use_verification_libc is None:
        use_verification_libc = options.level.is_verification_oriented
    return libc_source(use_verification_libc) + "\n" + program_source


def compile_source(program_source: str,
                   options: Optional[CompileOptions] = None,
                   level: Optional[OptLevel] = None,
                   session: Optional["CompilerSession"] = None
                   ) -> CompilationResult:
    """Compile MiniC ``program_source`` at the requested optimization level.

    ``level`` is a convenience shortcut; when both ``options`` and ``level``
    are given, ``level`` wins (the caller's ``options`` object is never
    mutated).  Pass a :class:`~repro.pipelines.session.CompilerSession` to
    share front-end work and analysis caches across calls; without one, a
    one-shot session is used.
    """
    from .session import CompilerSession

    driver = session or CompilerSession()
    return driver.compile(program_source, options=options, level=level)


def compile_at_all_levels(program_source: str,
                          levels: Optional[List[OptLevel]] = None,
                          session: Optional["CompilerSession"] = None,
                          **option_kwargs) -> Dict[OptLevel, CompilationResult]:
    """Compile the same source at several levels (the shape of Table 1/3).

    All levels run through one shared session, so the source is parsed once
    and CFG-shaped analyses of the freshly lowered modules are translated
    across levels instead of recomputed.
    """
    from .session import CompilerSession

    levels = levels or [OptLevel.O0, OptLevel.O2, OptLevel.O3,
                        OptLevel.OVERIFY]
    driver = session or CompilerSession()
    results: Dict[OptLevel, CompilationResult] = {}
    for level in levels:
        options = CompileOptions(level=level, **option_kwargs)
        results[level] = driver.compile(program_source, options)
    return results
