"""A stateful compilation session sharing work across pipeline runs.

The paper's workflow compiles the *same* source several times — once per
build configuration (Table 1/3 sweep all levels, the ablation harness
toggles single knobs).  The free-function driver
(:func:`repro.pipelines.compiler.compile_source`) re-parses and re-analyses
the source and recomputes every IR analysis from scratch on each call.
:class:`CompilerSession` is the stateful driver that removes that repeated
work:

* **Front-end cache** — the linked source is parsed and semantically
  analysed once; every compile lowers a fresh module from the cached,
  analysed translation unit (lowering is deterministic and side-effect
  free on the unit, which the test suite pins down).
* **Pristine analysis exchange** — once a source is compiled a second
  time, the session lowers one extra *reference* module that is never
  mutated.  Freshly lowered working modules are structurally identical to
  it (same functions, same blocks, same epochs), so CFG-shaped analyses
  (CFG, dominator tree, loop info) computed on the reference can be
  *translated* onto a working function in linear time instead of being
  recomputed — the ROADMAP's "share the cache across the per-level
  pipelines" item.  A transfer is only attempted while the working
  function is still at its birth epoch; the first pass that mutates it
  closes the window and the normal per-pipeline cache takes over.
* **Module-keyed analysis-manager pool** — every module the session
  compiles keeps its :class:`~repro.analysis.AnalysisManager`, so
  follow-up pipeline runs over a result module reuse its warm cache.

``compile_source`` / ``compile_at_all_levels`` are thin wrappers over a
one-shot session, and the experiment harness routes all per-workload
compiles through one session.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..analysis import (
    AnalysisManager, AnalysisManagerStats, AnalysisTransferSource, CFG,
    CFG_ANALYSIS, DOMTREE_ANALYSIS, DominatorTree, LOOPS_ANALYSIS, LoopInfo,
)
from ..frontend import analyze, lower, parse
from ..ir import BasicBlock, Function, Module, verify_module
from ..passes import format_pipeline
from .levels import OptLevel, build_pipeline
from .compiler import CompilationResult, CompileOptions, link_sources

#: Analyses the exchange can translate across sibling modules.  Value
#: ranges are deliberately excluded: they are value-keyed, so translating
#: them needs an instruction-level map; they are recomputed instead (their
#: CFG dependency still transfers).
TRANSFERABLE_ANALYSES = (CFG_ANALYSIS, DOMTREE_ANALYSIS, LOOPS_ANALYSIS)


class _SiblingLink:
    """One working function paired with its pristine reference twin."""

    __slots__ = ("function", "reference", "birth_epoch", "_block_map")

    def __init__(self, function: Function, reference: Function) -> None:
        self.function = function
        self.reference = reference
        self.birth_epoch = function.ir_epoch
        self._block_map: Optional[Dict[int, BasicBlock]] = None

    def block_map(self) -> Optional[Dict[int, BasicBlock]]:
        """``id(reference block) -> working block``, or ``None`` when the
        twins turn out not to correspond (defensive; lowering determinism
        makes this the never-taken path)."""
        if self._block_map is None:
            if len(self.reference.blocks) != len(self.function.blocks):
                self._block_map = {}
            else:
                mapping: Dict[int, BasicBlock] = {}
                for ref_block, work_block in zip(self.reference.blocks,
                                                 self.function.blocks):
                    if ref_block.name != work_block.name:
                        mapping = {}
                        break
                    mapping[id(ref_block)] = work_block
                self._block_map = mapping
        return self._block_map or None


class PristineAnalysisExchange(AnalysisTransferSource):
    """Serves analysis-cache misses on freshly lowered modules by
    translating the pristine reference module's analyses (see module
    docstring)."""

    def __init__(self, reference_module: Module) -> None:
        self.reference_module = reference_module
        #: Cache of analyses over the (immutable) reference module.
        self.manager = AnalysisManager()
        self._reference_functions: Dict[str, Function] = {
            fn.name: fn for fn in reference_module.defined_functions()}
        self._links: Dict[int, _SiblingLink] = {}

    def adopt(self, module: Module) -> List[int]:
        """Register every function of a freshly lowered ``module`` that has
        a structural twin in the reference.  Returns a token for
        :meth:`release`."""
        token: List[int] = []
        for function in module.defined_functions():
            reference = self._reference_functions.get(function.name)
            if reference is None or \
                    reference.ir_epoch != function.ir_epoch:
                continue
            self._links[id(function)] = _SiblingLink(function, reference)
            token.append(id(function))
        return token

    def release(self, token: List[int]) -> None:
        """Forget the links registered by one :meth:`adopt` call (links pin
        their functions, so dropping them also lets dead IR go)."""
        for key in token:
            self._links.pop(key, None)

    def lookup(self, name: str, function: Function,
               manager: AnalysisManager) -> Optional[object]:
        if name not in TRANSFERABLE_ANALYSES:
            return None
        link = self._links.get(id(function))
        if link is None or link.function is not function:
            return None
        if function.ir_epoch != link.birth_epoch:
            return None  # mutated since lowering: transfer window closed
        block_map = link.block_map()
        if block_map is None:
            return None
        reference = link.reference
        if name == CFG_ANALYSIS:
            return CFG.remapped(self.manager.cfg(reference), block_map,
                                function)
        if name == DOMTREE_ANALYSIS:
            return DominatorTree.remapped(
                self.manager.dominator_tree(reference), block_map, function,
                cfg=manager.cfg(function))
        return LoopInfo.remapped(
            self.manager.loop_info(reference), block_map, function,
            domtree=manager.dominator_tree(function),
            cfg=manager.cfg(function))


class _FrontEndEntry:
    """Cached front-end state for one linked source."""

    __slots__ = ("unit", "exchange")

    def __init__(self, unit: object) -> None:
        self.unit = unit
        self.exchange: Optional[PristineAnalysisExchange] = None


@dataclass
class SessionStats:
    """What a session saved (and spent) so far."""

    compiles: int = 0
    #: Front-end cache behaviour: a parse is one full parse+sema run.
    frontend_parses: int = 0
    frontend_reuses: int = 0
    #: Lowered working modules (one per compile).
    lowerings: int = 0
    #: Extra pristine reference modules lowered for the analysis exchange.
    reference_lowerings: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "compiles": self.compiles,
            "frontend_parses": self.frontend_parses,
            "frontend_reuses": self.frontend_reuses,
            "lowerings": self.lowerings,
            "reference_lowerings": self.reference_lowerings,
        }


class CompilerSession:
    """A stateful compiler driver: repeated compiles share front-end work
    and analysis caches (see module docstring).

    Parameters
    ----------
    default_options:
        Options used when :meth:`compile` is called without any; a copy is
        taken per compile, so the instance handed in is never mutated.
    """

    def __init__(self, default_options: Optional[CompileOptions] = None
                 ) -> None:
        self.default_options = default_options or CompileOptions()
        self.stats = SessionStats()
        self._frontend: Dict[str, _FrontEndEntry] = {}
        #: id(module) -> (module, its analysis manager): the module-keyed
        #: pool that keeps per-module caches warm for follow-up runs.
        self._pool: Dict[int, Tuple[Module, AnalysisManager]] = {}
        self._compile_stats: List[AnalysisManagerStats] = []

    # ------------------------------------------------------------- caches
    def manager_for(self, module: Module) -> AnalysisManager:
        """The pooled analysis manager for ``module`` (created on first
        use).  Drivers running extra pipelines over a compiled module reuse
        its warm cache through this."""
        entry = self._pool.get(id(module))
        if entry is not None and entry[0] is module:
            return entry[1]
        manager = AnalysisManager()
        self._register_manager(module, manager)
        return manager

    def _register_manager(self, module: Module,
                          manager: AnalysisManager) -> None:
        self._pool[id(module)] = (module, manager)
        self._compile_stats.append(manager.stats)

    @property
    def analysis_stats(self) -> AnalysisManagerStats:
        """Aggregate analysis-cache behaviour across every compile of this
        session, including the pristine reference caches."""
        total = AnalysisManagerStats()
        for stats in self._compile_stats:
            total.merge(stats)
        for entry in self._frontend.values():
            if entry.exchange is not None:
                total.merge(entry.exchange.manager.stats)
        return total

    def _frontend_entry(self, full_source: str) -> _FrontEndEntry:
        entry = self._frontend.get(full_source)
        if entry is None:
            unit = parse(full_source)
            analyze(unit)
            entry = _FrontEndEntry(unit)
            self._frontend[full_source] = entry
            self.stats.frontend_parses += 1
        else:
            self.stats.frontend_reuses += 1
            if entry.exchange is None:
                # Second compile of this source: from now on it pays to keep
                # a pristine reference module whose analyses every further
                # compile can translate instead of recompute.
                reference = lower(entry.unit, "reference")
                entry.exchange = PristineAnalysisExchange(reference)
                self.stats.reference_lowerings += 1
        return entry

    # ------------------------------------------------------------ compile
    def compile(self, program_source: str,
                options: Optional[CompileOptions] = None,
                level: Optional[OptLevel] = None) -> CompilationResult:
        """Compile ``program_source`` at the requested level.

        ``level`` is a convenience shortcut; when both ``options`` and
        ``level`` are given, ``level`` wins.  The caller's options object is
        never mutated.
        """
        base = options or self.default_options
        options = replace(base) if level is None else replace(base,
                                                              level=level)
        start = time.perf_counter()
        full_source = link_sources(program_source, options)
        entry = self._frontend_entry(full_source)

        module = lower(entry.unit, options.module_name)
        module.metadata["opt_level"] = str(options.level)
        self.stats.lowerings += 1

        manager = AnalysisManager(transfer_source=entry.exchange)
        self._register_manager(module, manager)
        token: List[int] = []
        if entry.exchange is not None:
            token = entry.exchange.adopt(module)

        pipeline = build_pipeline(
            options.level,
            entry_points=options.entry_points,
            verify_after_each=options.verify_after_each_pass,
            enable_checks=options.enable_runtime_checks,
            analyses=manager,
        )
        try:
            pipeline.run_until_fixpoint(module)
        finally:
            if entry.exchange is not None:
                entry.exchange.release(token)
        verify_module(module)
        self.stats.compiles += 1
        elapsed = time.perf_counter() - start

        return CompilationResult(
            module=module,
            level=options.level,
            compile_seconds=elapsed,
            stats=pipeline.stats,
            instruction_count=module.instruction_count(),
            source_size=len(program_source),
            pass_history=list(pipeline.history),
            analysis_stats=manager.stats,
            pipeline_text=(format_pipeline(pipeline.spec)
                           if pipeline.spec is not None else ""),
        )

    def compile_and_verify(self, program_source: str,
                           options: Optional[CompileOptions] = None,
                           level: Optional[OptLevel] = None,
                           backend: object = "symex",
                           request: Optional[object] = None) -> Tuple[
                               CompilationResult, object]:
        """Compile ``program_source`` and hand the result to a verification
        backend — the one compile-then-verify plumbing path the CLI, the
        verification service, and tests share.

        ``backend`` is a spec string resolved through
        :func:`repro.verification.make_backend` (so ``"symex<store=...>"``
        reaches the persistent knowledge store) or a prebuilt
        :class:`~repro.verification.VerificationBackend` — the service
        passes one with injected shared solver caches.  Returns
        ``(compilation_result, verification_outcome)``.
        """
        # Imported here so the session stays usable without pulling the
        # execution engines in (backends register themselves on import).
        from ..verification import VerificationRequest, make_backend

        result = self.compile(program_source, options=options, level=level)
        if isinstance(backend, str):
            backend = make_backend(backend)
        if request is None:
            request = VerificationRequest()
        outcome = backend.verify(result.module, request)
        return result, outcome

    def compile_and_validate(self, program_source: str,
                             levels: Optional[List[OptLevel]] = None,
                             options: Optional[CompileOptions] = None,
                             relcheck_config: Optional[object] = None,
                             store: Optional[object] = None) -> Tuple[
                                 Dict[OptLevel, CompilationResult], object]:
        """Compile at two levels and translation-validate the pair.

        The cross-level counterpart of :meth:`compile_and_verify`: the
        same front end feeds both compilations, then the relcheck
        product driver (:mod:`repro.relcheck`) proves the optimized
        module path-equivalent to the reference.  Default pair: the
        paper's (-O0, -OVERIFY).  ``relcheck_config`` is a
        :class:`~repro.relcheck.RelcheckConfig`; ``store`` an optional
        :class:`~repro.service.store.SolverKnowledgeStore` for warm
        reruns.  Returns ``({level: compilation_result}, report)``.
        """
        # Imported lazily so sessions stay usable without the execution
        # engines (mirrors compile_and_verify).
        from ..relcheck import relcheck_modules

        levels = levels or [OptLevel.O0, OptLevel.OVERIFY]
        if len(levels) != 2:
            raise ValueError("compile_and_validate needs exactly two "
                             f"levels, got {len(levels)}")
        results = self.compile_at_levels(program_source, levels=levels,
                                         options=options)
        report = relcheck_modules(results[levels[0]].module,
                                  results[levels[1]].module,
                                  config=relcheck_config,
                                  pair=(str(levels[0]), str(levels[1])),
                                  store=store)
        return results, report

    def compile_at_levels(self, program_source: str,
                          levels: Optional[List[OptLevel]] = None,
                          options: Optional[CompileOptions] = None
                          ) -> Dict[OptLevel, CompilationResult]:
        """Compile the same source at several levels (Table 1/3 shape),
        sharing the front end and the pristine analysis exchange."""
        levels = levels or [OptLevel.O0, OptLevel.O2, OptLevel.O3,
                            OptLevel.OVERIFY]
        return {level: self.compile(program_source, options=options,
                                    level=level)
                for level in levels}
