"""Optimization levels as data: named textual pipeline specs.

This module is the concrete realization of the paper's proposal: the same
pass library is assembled into CPU-oriented pipelines (``-O1``/``-O2``/
``-O3``) and into the verification-oriented ``-OVERIFY`` pipeline, which

1. selects passes suitable for verification and inhibits harmful ones
   (no CPU-specific scheduling; if-conversion and unswitching always on),
2. re-tunes cost parameters (branches are expensive: huge if-conversion and
   inlining thresholds, aggressive unrolling),
3. preserves extra metadata (the annotation pass), and
4. inserts runtime checks so that all failures become crashes.

Since the registry redesign each level is a *pipeline string* in
:data:`LEVEL_PIPELINES` — the same syntax :func:`repro.passes.parse_pipeline`
accepts from users — so a new pipeline shape is an edit to a table (or a
string passed to ``python -m repro --passes``), not to library code.  The
driver-level knobs (``entry_points``, ``enable_checks``) are spec
transforms over the parsed :class:`~repro.passes.PipelineSpec`.

The fourth element of the paper's design — linking a verification-optimized
C library — is handled by the driver in :mod:`repro.pipelines.compiler`,
which selects the library variant from :mod:`repro.vlibc`.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Set

from ..passes import (
    AnalysisManager, PassManager, PipelineSpec, build_passes, format_pipeline,
    parse_pipeline,
)


class OptLevel(enum.Enum):
    """The optimization levels the paper's Table 1 and Table 3 compare."""

    O0 = "-O0"
    O1 = "-O1"
    O2 = "-O2"
    O3 = "-O3"
    OVERIFY = "-OVERIFY"

    @property
    def is_verification_oriented(self) -> bool:
        return self is OptLevel.OVERIFY

    def __str__(self) -> str:
        return self.value


#: The prototype's name for the symbolic-execution flavour of -OVERIFY.
OSYMBEX = OptLevel.OVERIFY


def parse_opt_level(name: str) -> OptLevel:
    """Resolve a level from its flag spelling (``-O2``, ``O2``, ``overify``)."""
    text = name.strip().lstrip("-").upper()
    for level in OptLevel:
        if level.value.lstrip("-") == text:
            return level
    known = ", ".join(str(level) for level in OptLevel)
    raise ValueError(f"unknown optimization level '{name}'; known: {known}")


#: The scalar cleanup bundle run between the structural passes.
CLEANUP = "constprop,instcombine,dce,simplifycfg"

#: The shared scalarization prefix of every optimizing level.
_SCALARIZE = f"simplifycfg,mem2reg,sroa,mem2reg,{CLEANUP}"

#: Re-promote and clean up after the inliner has merged bodies.
_POST_INLINE = f"simplifycfg,mem2reg,{CLEANUP}"

#: Every level's pipeline, as data.  The strings are canonical: they render
#: back to themselves through ``format_pipeline(parse_pipeline(s))``.
LEVEL_PIPELINES: Dict[OptLevel, str] = {
    # -O0 only removes blocks the front end itself made unreachable
    # (they would otherwise confuse the dominance-based analyses).
    OptLevel.O0: "simplifycfg",

    OptLevel.O1: f"simplifycfg,mem2reg,sccp,{CLEANUP}",

    # -O2 runs the full scalar stack: SCCP prunes provably-untaken edges
    # the constprop/simplifycfg pair cannot reach, load elimination feeds
    # stored flags back into branch conditions, and the algebraic pass
    # canonicalizes/shrinks the compare chains so that even the modest
    # CPU-budget if-conversion (clang/gcc form selects for cheap diamonds
    # at -O2 too) can flatten the short-circuit residue left by inlining.
    OptLevel.O2: (
        f"{_SCALARIZE},"
        "inline<threshold=40>,"
        f"{_POST_INLINE},"
        "sccp,gvn,load-elim,jump-threading,licm,"
        f"{CLEANUP},"
        "algebraic-simplify,"
        "ifconvert<spec=4>,"
        f"{CLEANUP},"
        "gvn,dce,globaldce"
    ),

    # A CPU-oriented build limits the code growth of unswitching and keeps
    # the same modest speculation budget as -O2 (branches are cheap on a
    # CPU; what -O3 adds is loop restructuring, not speculation).
    OptLevel.O3: (
        f"{_SCALARIZE},"
        "inline<threshold=45,loops>,"
        f"{_POST_INLINE},"
        "sccp,gvn,load-elim,jump-threading,licm,"
        "loop-unswitch<size=40>,"
        f"{CLEANUP},"
        "loop-unroll<trips=4,size=128>,"
        f"{CLEANUP},"
        "algebraic-simplify,"
        "ifconvert<spec=4>,"
        f"{CLEANUP},"
        "gvn,dce,globaldce"
    ),

    # -OVERIFY re-tunes every cost model for a path-exploring verifier:
    # branches are far more expensive than on a CPU, so inline almost
    # everything, convert every convertible branch *before* duplicating
    # loops (Listing 2: loops whose bodies become branch-free do not need
    # to be unswitched at all), duplicate and unroll loops freely, then
    # insert runtime checks and export annotations.
    OptLevel.OVERIFY: (
        f"{_SCALARIZE},"
        "inline<threshold=5000,loops,const-bonus=100>,"
        f"{_POST_INLINE},"
        "sccp,gvn,load-elim,jump-threading,licm,"
        "algebraic-simplify,"
        "ifconvert<spec=64>,"
        f"{CLEANUP},"
        "gvn,"
        "ifconvert<spec=64>,"
        f"{CLEANUP},"
        "loop-unswitch<size=400,max=16>,"
        f"{CLEANUP},"
        "loop-unroll<trips=64,size=4096>,"
        f"{CLEANUP},"
        "ifconvert<spec=64>,"
        f"{CLEANUP},"
        "gvn,dce,globaldce,"
        "runtime-checks,simplifycfg,"
        "annotate"
    ),
}

#: How many times the whole pipeline is repeated looking for a fixpoint.
#: -OVERIFY gets an extra round: its huge thresholds keep exposing work.
LEVEL_MAX_ITERATIONS: Dict[OptLevel, int] = {
    level: (3 if level is OptLevel.OVERIFY else 2) for level in OptLevel}


def level_spec_string(level: OptLevel) -> str:
    """The textual pipeline spec for ``level``."""
    return LEVEL_PIPELINES[level]


def level_spec(level: OptLevel) -> PipelineSpec:
    """The parsed pipeline spec for ``level``."""
    return parse_pipeline(LEVEL_PIPELINES[level])


# --------------------------------------------------------------- transforms

def with_entry_points(spec: PipelineSpec,
                      entry_points: Iterable[str]) -> PipelineSpec:
    """Point every dead-function-elimination pass at ``entry_points``
    (the functions that must survive)."""
    roots = tuple(sorted(entry_points))
    return spec.map_passes(
        lambda p: p.with_param("roots", roots) if p.name == "globaldce" else p)


def with_runtime_checks(spec: PipelineSpec, enabled: bool) -> PipelineSpec:
    """Enable/disable the runtime-check stage (Table 2's "Generate runtime
    checks" ablation row).  Disabling removes the ``runtime-checks`` pass
    and the ``simplifycfg`` cleanup that follows it."""
    if enabled:
        return spec
    rebuilt = []
    passes = list(spec.passes)
    index = 0
    while index < len(passes):
        if passes[index].name == "runtime-checks":
            index += 1
            if index < len(passes) and passes[index].name == "simplifycfg":
                index += 1
            continue
        rebuilt.append(passes[index])
        index += 1
    return PipelineSpec(tuple(rebuilt))


# ----------------------------------------------------------------- builders

def build_pipeline_from_spec(spec: PipelineSpec,
                             verify_after_each: bool = False,
                             max_iterations: int = 2,
                             analyses: Optional[AnalysisManager] = None
                             ) -> PassManager:
    """Build a :class:`PassManager` running exactly the passes in ``spec``.

    The manager remembers the spec (``manager.spec``) so drivers can report
    the pipeline in its textual form.
    """
    manager = PassManager(verify_after_each=verify_after_each,
                          max_iterations=max_iterations,
                          analyses=analyses)
    manager.extend(build_passes(spec))
    manager.spec = spec
    return manager


def build_pipeline_from_text(text: str,
                             verify_after_each: bool = False,
                             max_iterations: int = 2,
                             analyses: Optional[AnalysisManager] = None
                             ) -> PassManager:
    """Build a pipeline straight from its textual form (the CLI's
    ``--passes`` path)."""
    return build_pipeline_from_spec(parse_pipeline(text),
                                    verify_after_each=verify_after_each,
                                    max_iterations=max_iterations,
                                    analyses=analyses)


def build_pipeline(level: OptLevel, entry_points: Optional[Set[str]] = None,
                   verify_after_each: bool = False,
                   enable_checks: bool = True,
                   analyses: Optional[AnalysisManager] = None) -> PassManager:
    """Build the pass pipeline for ``level``.

    Parameters
    ----------
    entry_points:
        Functions that must survive dead-function elimination (defaults to
        ``{"main"}`` plus whatever the workload declares as its entry).
    verify_after_each:
        Run the IR verifier after every pass (used by the test suite).
    enable_checks:
        Whether -OVERIFY inserts runtime checks (Table 2's "Generate runtime
        checks" row); the ablation benchmarks toggle this.
    analyses:
        Analysis manager shared by every pass in the pipeline (one is
        created when omitted); passing one in lets a driver keep analysis
        caches warm across several pipelines over the same module.
    """
    spec = with_runtime_checks(level_spec(level), enable_checks)
    spec = with_entry_points(spec, entry_points or {"main"})
    return build_pipeline_from_spec(
        spec, verify_after_each=verify_after_each,
        max_iterations=LEVEL_MAX_ITERATIONS[level], analyses=analyses)


def pipeline_description(level: OptLevel) -> List[str]:
    """Names of the passes in the pipeline for ``level`` (for documentation
    and the build-chain example)."""
    return level_spec(level).pass_names()


def describe_levels() -> Dict[OptLevel, str]:
    """Every level's canonical pipeline string (documentation helper)."""
    return {level: format_pipeline(level_spec(level)) for level in OptLevel}
