"""Optimization levels and their pass pipelines.

This module is the concrete realization of the paper's proposal: the same
pass library is assembled into CPU-oriented pipelines (``-O1``/``-O2``/
``-O3``) and into the verification-oriented ``-OVERIFY`` pipeline, which

1. selects passes suitable for verification and inhibits harmful ones
   (no CPU-specific scheduling; if-conversion and unswitching always on),
2. re-tunes cost parameters (branches are expensive: huge if-conversion and
   inlining thresholds, aggressive unrolling),
3. preserves extra metadata (the annotation pass), and
4. inserts runtime checks so that all failures become crashes.

The fourth element of the paper's design — linking a verification-optimized
C library — is handled by the driver in :mod:`repro.pipelines.compiler`,
which selects the library variant from :mod:`repro.vlibc`.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Set

from ..passes import (
    AnalysisManager, AnnotateForVerification, ConstantPropagation,
    DeadCodeElimination, GlobalDCE, GlobalValueNumbering, IfConversion,
    IfConversionParams, InlineParams, Inliner, InsertRuntimeChecks,
    InstCombine, JumpThreading, LoopInvariantCodeMotion, LoopUnrolling,
    LoopUnswitching, Pass, PassManager, PromoteMemoryToRegisters,
    ScalarReplacementOfAggregates, SimplifyCFG, UnrollParams, UnswitchParams,
)


class OptLevel(enum.Enum):
    """The optimization levels the paper's Table 1 and Table 3 compare."""

    O0 = "-O0"
    O1 = "-O1"
    O2 = "-O2"
    O3 = "-O3"
    OVERIFY = "-OVERIFY"

    @property
    def is_verification_oriented(self) -> bool:
        return self is OptLevel.OVERIFY

    def __str__(self) -> str:
        return self.value


#: The prototype's name for the symbolic-execution flavour of -OVERIFY.
OSYMBEX = OptLevel.OVERIFY


def _cleanup_passes() -> List[Pass]:
    """The scalar cleanup bundle run between the structural passes."""
    return [
        ConstantPropagation(),
        InstCombine(),
        DeadCodeElimination(),
        SimplifyCFG(),
    ]


def build_pipeline(level: OptLevel, entry_points: Optional[Set[str]] = None,
                   verify_after_each: bool = False,
                   enable_checks: bool = True,
                   analyses: Optional[AnalysisManager] = None) -> PassManager:
    """Build the pass pipeline for ``level``.

    Parameters
    ----------
    entry_points:
        Functions that must survive dead-function elimination (defaults to
        ``{"main"}`` plus whatever the workload declares as its entry).
    verify_after_each:
        Run the IR verifier after every pass (used by the test suite).
    enable_checks:
        Whether -OVERIFY inserts runtime checks (Table 2's "Generate runtime
        checks" row); the ablation benchmarks toggle this.
    analyses:
        Analysis manager shared by every pass in the pipeline (one is
        created when omitted); passing one in lets a driver keep analysis
        caches warm across several pipelines over the same module.
    """
    roots = entry_points or {"main"}
    manager = PassManager(verify_after_each=verify_after_each,
                          max_iterations=3 if level is OptLevel.OVERIFY else 2,
                          analyses=analyses)

    if level is OptLevel.O0:
        # -O0 only removes blocks the front end itself made unreachable
        # (they would otherwise confuse the dominance-based analyses).
        manager.add(SimplifyCFG())
        return manager

    if level is OptLevel.O1:
        manager.extend([
            SimplifyCFG(),
            PromoteMemoryToRegisters(),
            *_cleanup_passes(),
        ])
        return manager

    if level is OptLevel.O2:
        manager.extend([
            SimplifyCFG(),
            PromoteMemoryToRegisters(),
            ScalarReplacementOfAggregates(),
            PromoteMemoryToRegisters(),
            *_cleanup_passes(),
            Inliner(InlineParams(threshold=40, allow_loops=False)),
            SimplifyCFG(),
            PromoteMemoryToRegisters(),
            *_cleanup_passes(),
            GlobalValueNumbering(),
            JumpThreading(),
            LoopInvariantCodeMotion(),
            *_cleanup_passes(),
            GlobalDCE(roots),
        ])
        return manager

    if level is OptLevel.O3:
        manager.extend([
            SimplifyCFG(),
            PromoteMemoryToRegisters(),
            ScalarReplacementOfAggregates(),
            PromoteMemoryToRegisters(),
            *_cleanup_passes(),
            Inliner(InlineParams(threshold=45, allow_loops=True)),
            SimplifyCFG(),
            PromoteMemoryToRegisters(),
            *_cleanup_passes(),
            GlobalValueNumbering(),
            JumpThreading(),
            LoopInvariantCodeMotion(),
            # A CPU-oriented build limits the code growth of unswitching.
            LoopUnswitching(UnswitchParams(max_loop_size=40)),
            *_cleanup_passes(),
            LoopUnrolling(UnrollParams(max_trip_count=4,
                                       max_unrolled_size=128)),
            *_cleanup_passes(),
            IfConversion(IfConversionParams(max_speculated_instructions=3)),
            *_cleanup_passes(),
            GlobalValueNumbering(),
            DeadCodeElimination(),
            GlobalDCE(roots),
        ])
        return manager

    # ----------------------------------------------------------- -OVERIFY
    assert level is OptLevel.OVERIFY
    manager.extend([
        SimplifyCFG(),
        PromoteMemoryToRegisters(),
        ScalarReplacementOfAggregates(),
        PromoteMemoryToRegisters(),
        *_cleanup_passes(),
        # (2) adjusted cost values: branches are far more expensive than on a
        # CPU, so inline almost everything and duplicate loops freely.
        Inliner(InlineParams(threshold=5000, allow_loops=True,
                             constant_arg_bonus=100)),
        SimplifyCFG(),
        PromoteMemoryToRegisters(),
        *_cleanup_passes(),
        GlobalValueNumbering(),
        JumpThreading(),
        LoopInvariantCodeMotion(),
        # (1) passes suited to verification: convert every convertible branch
        # *before* duplicating loops, so that loops whose bodies become
        # branch-free do not need to be unswitched at all (Listing 2).
        IfConversion(IfConversionParams(max_speculated_instructions=64,
                                        speculate_safe_loads=True)),
        *_cleanup_passes(),
        GlobalValueNumbering(),
        IfConversion(IfConversionParams(max_speculated_instructions=64,
                                        speculate_safe_loads=True)),
        *_cleanup_passes(),
        LoopUnswitching(UnswitchParams(max_loop_size=400,
                                       max_unswitches_per_function=16)),
        *_cleanup_passes(),
        LoopUnrolling(UnrollParams(max_trip_count=64,
                                   max_unrolled_size=4096)),
        *_cleanup_passes(),
        IfConversion(IfConversionParams(max_speculated_instructions=64,
                                        speculate_safe_loads=True)),
        *_cleanup_passes(),
        GlobalValueNumbering(),
        DeadCodeElimination(),
        GlobalDCE(roots),
    ])
    if enable_checks:
        # (4 in §3's list) runtime checks make every failure a crash.
        manager.add(InsertRuntimeChecks())
        manager.add(SimplifyCFG())
    # (3) preserve metadata for the verification tool.
    manager.add(AnnotateForVerification())
    return manager


def pipeline_description(level: OptLevel) -> List[str]:
    """Names of the passes in the pipeline for ``level`` (for documentation
    and the build-chain example)."""
    return [p.name for p in build_pipeline(level).passes]
