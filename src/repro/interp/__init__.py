"""repro.interp — concrete execution of IR modules."""

from .errors import ErrorKind, ProgramError
from .memory import Memory, MemoryObject, NULL_GUARD_SIZE
from .interpreter import (
    ExecutionResult, ExecutionStats, Interpreter, run_module,
)
from .backend import InterpBackend

__all__ = [
    "ErrorKind", "ProgramError",
    "Memory", "MemoryObject", "NULL_GUARD_SIZE",
    "ExecutionResult", "ExecutionStats", "Interpreter", "run_module",
    "InterpBackend",
]
